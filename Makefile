PYTHON ?= python

.PHONY: test lint bench bench-smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.smoke BENCH_sampling.json
