PYTHON ?= python

# Optional: make bench-smoke PROFILE=smoke.collapsed writes collapsed
# stacks (flamegraph format) for the run alongside the JSON.
PROFILE ?=

.PHONY: test lint bench bench-smoke chaos-smoke recovery-smoke \
	updates-smoke serve-smoke serve-chaos-smoke check-bench \
	check-links

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.smoke BENCH_sampling.json \
		$(if $(PROFILE),--profile $(PROFILE))
	$(PYTHON) tools/check_bench.py BENCH_sampling.json

chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.chaos BENCH_chaos.json

recovery-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.recovery BENCH_recovery.json
	$(PYTHON) tools/check_bench.py BENCH_recovery.json

updates-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.updates BENCH_updates.json
	$(PYTHON) tools/check_bench.py BENCH_updates.json

serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.server BENCH_server.json
	$(PYTHON) tools/check_bench.py BENCH_server.json

serve-chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.server_chaos \
		BENCH_server_chaos.json
	$(PYTHON) tools/check_bench.py BENCH_server_chaos.json

check-bench:
	$(PYTHON) tools/check_bench.py BENCH_sampling.json \
		BENCH_recovery.json BENCH_updates.json BENCH_server.json \
		BENCH_server_chaos.json

check-links:
	$(PYTHON) tools/check_links.py
