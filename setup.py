"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so the package can
be installed in environments whose tooling predates PEP 660 editable
installs (``python setup.py develop`` / ``pip install -e .`` with old
setuptools and no ``wheel`` package).
"""

from setuptools import setup

setup()
