"""Selectivity sweep: method costs as q varies at fixed k.

Section 3.1 analyses exactly this axis: SampleFirst costs O(kN/q) —
"this could be good for very large q, say, a query that covers a large
constant fraction of P.  However, for most queries, this cost can be
extremely large."  The sweep fixes k and shrinks the query box,
exposing the SampleFirst blow-up and the index samplers' indifference.
"""

import random

import pytest

from repro.core.records import STRange
from repro.core.sampling.base import take
from repro.index.cost import CostCounter, DEFAULT_COST_MODEL

K = 128
# Fraction of each axis covered by the query box.
AXIS_FRACTIONS = [0.9, 0.5, 0.2, 0.05]
METHODS = ["sample-first", "random-path", "rs-tree", "ls-tree",
           "query-first"]


def box_for(osm_dataset, axis_fraction):
    lo, hi = osm_dataset.bounds.lo, osm_dataset.bounds.hi
    cx, cy = (lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2
    hx = (hi[0] - lo[0]) * axis_fraction / 2
    hy = (hi[1] - lo[1]) * axis_fraction / 2
    return STRange(cx - hx, cy - hy, cx + hx, cy + hy).to_rect(
        osm_dataset.dims)


@pytest.mark.parametrize("axis_fraction", AXIS_FRACTIONS,
                         ids=[f"box{f:g}" for f in AXIS_FRACTIONS])
@pytest.mark.parametrize("method", METHODS)
def test_selectivity_sweep(benchmark, osm_dataset, method,
                           axis_fraction):
    query = box_for(osm_dataset, axis_fraction)
    q = osm_dataset.tree.range_count(query)
    if q < K:
        pytest.skip("query too selective for k at this substrate size")
    sampler = osm_dataset.samplers[method]
    tallies = CostCounter()

    def draw():
        cost = CostCounter()
        got = take(sampler.sample_stream(query, random.Random(3),
                                         cost=cost), K)
        assert len(got) == K
        tallies.node_reads = cost.node_reads
        tallies.random_reads = cost.random_reads
        tallies.sequential_reads = cost.sequential_reads
        tallies.rejections = cost.rejections
        return got

    benchmark(draw)
    benchmark.extra_info["q"] = q
    benchmark.extra_info["selectivity"] = q / len(osm_dataset)
    benchmark.extra_info["rejections"] = tallies.rejections
    benchmark.extra_info["simulated_s"] = \
        DEFAULT_COST_MODEL.simulated_seconds(tallies)


def test_sample_first_blows_up_when_selective(osm_dataset):
    """The O(kN/q) claim: shrinking q by ~50x inflates SampleFirst's
    rejections roughly proportionally, while the RS-tree barely moves."""
    def cost_of(method, axis_fraction):
        query = box_for(osm_dataset, axis_fraction)
        cost = CostCounter()
        take(osm_dataset.samplers[method].sample_stream(
            query, random.Random(4), cost=cost), K)
        return DEFAULT_COST_MODEL.simulated_seconds(cost)

    sf_broad = cost_of("sample-first", 0.9)
    sf_narrow = cost_of("sample-first", 0.1)
    rs_broad = cost_of("rs-tree", 0.9)
    rs_narrow = cost_of("rs-tree", 0.1)
    assert sf_narrow > 5 * sf_broad
    assert rs_narrow < 5 * rs_broad + 1.0
