"""Raw sampler throughput: samples per second, in memory.

Complements Figure 3(a)'s I/O-model comparison with pure CPU throughput
at a moderate k — what an interactive UI actually feels.  Also measures
index construction, the one-off cost each method pays.
"""

import random

import pytest

from repro.core.sampling.base import take
from repro.core.sampling.ls_tree import LSTree
from repro.index.hilbert_rtree import HilbertRTree

METHODS = ["query-first", "sample-first", "random-path", "ls-tree",
           "rs-tree"]
K = 256


@pytest.mark.parametrize("method", METHODS)
def test_sampler_throughput(benchmark, osm_dataset, osm_query, method):
    sampler = osm_dataset.samplers[method]
    seeds = iter(range(100_000))

    def draw():
        return take(sampler.sample_stream(
            osm_query, random.Random(next(seeds))), K)

    got = benchmark(draw)
    assert len(got) == K
    benchmark.extra_info["k"] = K


@pytest.mark.parametrize("method", METHODS)
def test_repeated_query_throughput(benchmark, osm_dataset, osm_query,
                                   method):
    """The dashboard workload: the *same* range queried over and over
    (pan back, refresh, re-estimate).  This is the case the canonical-set
    cache and Fenwick source selection target — the per-stream setup cost
    (root walk, residual scan) amortises across repeats."""
    sampler = osm_dataset.samplers[method]
    seeds = iter(range(100_000))
    repeats = 8

    def draw_many():
        got = []
        for _ in range(repeats):
            got.extend(take(sampler.sample_stream(
                osm_query, random.Random(next(seeds))), K))
        return got

    got = benchmark(draw_many)
    assert len(got) == repeats * K
    benchmark.extra_info["k"] = K
    benchmark.extra_info["repeats"] = repeats
    if hasattr(sampler, "tree"):
        benchmark.extra_info["canonical_cache_hits"] = getattr(
            sampler.tree, "canon_hits", 0)


def test_build_hilbert_rtree(benchmark, osm_dataset):
    items = [(rid, r.key(osm_dataset.dims))
             for rid, r in osm_dataset.records.items()]

    def build():
        tree = HilbertRTree(osm_dataset.dims, osm_dataset.bounds)
        tree.bulk_load(items)
        return tree

    tree = benchmark(build)
    assert len(tree) == len(items)


def test_build_ls_forest(benchmark, osm_dataset):
    items = [(rid, r.key(osm_dataset.dims))
             for rid, r in osm_dataset.records.items()]

    def build():
        forest = LSTree(osm_dataset.dims, rng=random.Random(1))
        forest.bulk_load(items)
        return forest

    forest = benchmark(build)
    assert len(forest) == len(items)
    benchmark.extra_info["levels"] = forest.num_levels
    benchmark.extra_info["space_blowup"] = \
        forest.total_entries() / len(items)
