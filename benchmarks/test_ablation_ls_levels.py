"""Ablation: LS-tree survival probability p.

The paper samples each level with probability 1/2.  Smaller p means
fewer, smaller levels (less space, coarser sample-size granularity —
more over-reporting per level); larger p means more levels (more space,
finer granularity).  The sweep measures space blowup and the cost of
drawing a fixed k.
"""

import random

import pytest

from repro.core.sampling.base import take
from repro.core.sampling.ls_tree import LSTree, LSTreeSampler
from repro.index.cost import CostCounter, DEFAULT_COST_MODEL

PROBS = [0.25, 0.5, 0.75]
K = 512


@pytest.fixture(scope="module")
def items(osm_dataset):
    return [(rid, r.key(osm_dataset.dims))
            for rid, r in osm_dataset.records.items()]


@pytest.mark.parametrize("p", PROBS)
def test_ls_probability_sweep(benchmark, items, osm_query, p):
    forest = LSTree(2, rng=random.Random(1), p=p)
    forest.bulk_load(items)
    sampler = LSTreeSampler(forest)
    tallies = CostCounter()

    def draw():
        cost = CostCounter()
        got = take(sampler.sample_stream(osm_query, random.Random(2),
                                         cost=cost), K)
        assert len(got) == K
        tallies.node_reads = cost.node_reads
        tallies.random_reads = cost.random_reads
        tallies.sequential_reads = cost.sequential_reads
        return got

    benchmark(draw)
    benchmark.extra_info["levels"] = forest.num_levels
    benchmark.extra_info["space_blowup"] = \
        forest.total_entries() / len(items)
    benchmark.extra_info["node_reads"] = tallies.node_reads
    benchmark.extra_info["simulated_s"] = \
        DEFAULT_COST_MODEL.simulated_seconds(tallies)


def test_space_grows_with_p(items):
    """The space/granularity tradeoff, asserted: expected blowup is
    1/(1-p)."""
    blowups = {}
    for p in (0.25, 0.75):
        forest = LSTree(2, rng=random.Random(3), p=p)
        forest.bulk_load(items)
        blowups[p] = forest.total_entries() / len(items)
    assert blowups[0.25] == pytest.approx(1 / 0.75, rel=0.05)
    assert blowups[0.75] == pytest.approx(1 / 0.25, rel=0.05)
    assert blowups[0.75] > blowups[0.25]
