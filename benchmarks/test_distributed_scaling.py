"""Ablation: worker scaling of the distributed sampler.

STORM "builds on a cluster of commodity machines to achieve its
scalability".  The sweep draws a fixed k through the distributed RS-tree
with 1..8 workers and reports the simulated per-query time (network +
slowest worker); more workers should shrink it until coordination
overhead flattens the curve.
"""

import random

import pytest

from repro.core.records import Record, STRange
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler

WORKER_COUNTS = [1, 2, 4, 8]
K = 512
N = 30_000


@pytest.fixture(scope="module")
def records():
    rng = random.Random(81)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.random()})
            for i in range(N)]


QUERY = STRange(20, 20, 80, 80, 100, 900)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_distributed_scaling(benchmark, records, workers):
    index = DistributedSTIndex(records, n_workers=workers, seed=8,
                               rs_buffer_size=32)
    sampler = DistributedSampler(index, batch_size=32)

    seeds = iter(range(10_000))

    def draw():
        got = sampler.sample(QUERY, K, random.Random(next(seeds)))
        assert len(got) == K
        return got

    benchmark(draw)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["simulated_s"] = sampler.last_query_seconds()
    benchmark.extra_info["network_msgs"] = \
        index.cluster.network.messages


def test_scaling_shape(records):
    """Simulated time decreases from 1 to 4 workers for a fixed k."""
    times = {}
    for workers in (1, 4):
        index = DistributedSTIndex(records, n_workers=workers, seed=9,
                                   rs_buffer_size=32)
        sampler = DistributedSampler(index, batch_size=32)
        sampler.sample(QUERY, K, random.Random(82))
        times[workers] = sampler.last_query_seconds()
    assert times[4] < times[1]
