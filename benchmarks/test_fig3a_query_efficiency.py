"""Figure 3(a): time to produce k online samples, per method.

The paper fixes one range query and varies k/q from 0 to 10% for
RandomPath, RS-tree, RangeReport (QueryFirst) and LS-tree.  Each
benchmark row here is one (method, k/q) cell; ``extra_info`` carries the
device-independent tallies (simulated disk seconds, node reads) that the
EXPERIMENTS.md shape comparison uses.

Expected shape: LS/RS ≪ RandomPath and RangeReport at small k/q;
RandomPath grows linearly in k; RangeReport is flat.
"""

import random

import pytest

from repro.core.sampling.base import take
from repro.index.cost import CostCounter, DEFAULT_COST_MODEL

METHODS = ["random-path", "rs-tree", "query-first", "ls-tree"]
FRACTIONS = [0.01, 0.05, 0.10]


@pytest.mark.parametrize("fraction", FRACTIONS,
                         ids=[f"{f:.0%}" for f in FRACTIONS])
@pytest.mark.parametrize("method", METHODS)
def test_fig3a(benchmark, osm_dataset, osm_query, method, fraction):
    sampler = osm_dataset.samplers[method]
    q = osm_dataset.tree.range_count(osm_query)
    k = max(1, int(q * fraction))
    tallies = CostCounter()

    def draw():
        cost = CostCounter()
        got = take(sampler.sample_stream(
            osm_query, random.Random(7), cost=cost), k)
        assert len(got) == k
        tallies.node_reads = cost.node_reads
        tallies.random_reads = cost.random_reads
        tallies.sequential_reads = cost.sequential_reads
        tallies.leaf_entries_scanned = cost.leaf_entries_scanned
        return got

    benchmark(draw)
    benchmark.extra_info["q"] = q
    benchmark.extra_info["k"] = k
    benchmark.extra_info["node_reads"] = tallies.node_reads
    benchmark.extra_info["simulated_s"] = \
        DEFAULT_COST_MODEL.simulated_seconds(tallies)


def test_fig3a_shape(osm_dataset, osm_query):
    """The figure's qualitative claims, asserted: at k/q = 1% the index
    samplers beat both baselines on simulated I/O, and RandomPath's cost
    grows roughly linearly in k."""
    q = osm_dataset.tree.range_count(osm_query)
    k = max(1, q // 100)

    def simulated(method, kk):
        cost = CostCounter()
        take(osm_dataset.samplers[method].sample_stream(
            osm_query, random.Random(11), cost=cost), kk)
        return DEFAULT_COST_MODEL.simulated_seconds(cost)

    ls = simulated("ls-tree", k)
    rs = simulated("rs-tree", k)
    report = simulated("query-first", k)
    path = simulated("random-path", k)
    assert ls < report and ls < path
    assert rs < report and rs < path
    # RandomPath ~ linear in k: 8x the samples ≳ 4x the cost.
    assert simulated("random-path", 8 * k) > 4 * path
    # RangeReport is flat: more samples cost (almost) nothing extra.
    assert simulated("query-first", 8 * k) < 1.2 * report
