"""Demo benchmark (Figure 5): online KDE population density.

Measures the cost of building a progressively refined density map from
online samples of a city-scale twitter window, across grid resolutions —
the "zoom from SLC to the USA" interaction.
"""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.estimators.kde import GridSpec, OnlineKDE
from repro.core.session import OnlineQuerySession, StopCondition
from repro.workloads.twitter import TwitterWorkload

GRIDS = [16, 32]
K = 500


@pytest.fixture(scope="module")
def tweets():
    workload = TwitterWorkload(n=30_000, users=1_500, seed=23)
    dataset = Dataset("tweets", workload.generate(), rs_buffer_size=64)
    return dataset, workload


@pytest.mark.parametrize("grid", GRIDS, ids=[f"{g}x{g}" for g in GRIDS])
def test_kde_usa_window(benchmark, tweets, grid):
    dataset, workload = tweets
    window = workload.usa_range()

    def run():
        spec = GridSpec(window.lon_lo, window.lat_lo, window.lon_hi,
                        window.lat_hi, nx=grid, ny=grid)
        estimator = OnlineKDE(spec)
        session = OnlineQuerySession(
            dataset.samplers["rs-tree"], estimator,
            dataset.to_rect(window), dataset.lookup,
            rng=random.Random(3), report_every=100)
        return session.run_to_stop(StopCondition(max_samples=K))

    final = benchmark(run)
    benchmark.extra_info["cells"] = grid * grid
    benchmark.extra_info["k"] = final.k


def test_kde_refines_with_samples(tweets):
    """More samples → tighter per-cell intervals (the Figure 5 story)."""
    dataset, workload = tweets
    window = workload.slc_range()
    spec = GridSpec(window.lon_lo, window.lat_lo, window.lon_hi,
                    window.lat_hi, nx=16, ny=16)
    estimator = OnlineKDE(spec)
    session = OnlineQuerySession(
        dataset.samplers["rs-tree"], estimator,
        dataset.to_rect(window), dataset.lookup,
        rng=random.Random(4), report_every=50)
    widths = []
    for point in session.run(StopCondition(max_samples=800)):
        lo, hi = estimator.cell_intervals()
        widths.append(float((hi - lo).mean()))
    assert len(widths) >= 4
    assert widths[-1] < widths[0]
