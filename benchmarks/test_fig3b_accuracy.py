"""Figure 3(b): relative error of online avg(altitude) vs time.

The paper plots the relative error of an online spatio-temporal AVG
estimate shrinking as query execution time grows, for the RS-tree and
LS-tree.  Each benchmark row measures the wall time for the online
estimate to provably reach a 2% relative-error bound; the shape test
asserts the error trajectory is decreasing and ends in single digits.
"""

import random

import pytest

from repro.core.estimators.aggregates import AvgEstimator
from repro.core.records import attribute_getter
from repro.core.session import OnlineQuerySession, StopCondition

METHODS = ["rs-tree", "ls-tree"]


def truth_avg(dataset, query):
    entries = dataset.tree.range_query(query)
    values = [dataset.lookup(e.item_id).attrs["altitude"]
              for e in entries]
    return sum(values) / len(values)


@pytest.mark.parametrize("method", METHODS)
def test_fig3b_time_to_2pct(benchmark, osm_dataset, osm_query, method):
    seeds = iter(range(10_000))

    def run():
        estimator = AvgEstimator(attribute_getter("altitude"))
        session = OnlineQuerySession(
            osm_dataset.samplers[method], estimator, osm_query,
            osm_dataset.lookup, rng=random.Random(next(seeds)),
            report_every=16)
        final = session.run_to_stop(
            StopCondition(target_relative_error=0.02))
        return final

    final = benchmark(run)
    benchmark.extra_info["k_needed"] = final.k
    benchmark.extra_info["q"] = final.estimate.q


@pytest.mark.parametrize("method", METHODS)
def test_fig3b_error_decreases(osm_dataset, osm_query, method):
    """The figure's content: the error trajectory trends downward and
    the online estimate is within a few percent within a small k."""
    truth = truth_avg(osm_dataset, osm_query)
    estimator = AvgEstimator(attribute_getter("altitude"))
    session = OnlineQuerySession(
        osm_dataset.samplers[method], estimator, osm_query,
        osm_dataset.lookup, rng=random.Random(5), report_every=64)
    errors = [abs(p.estimate.value - truth) / abs(truth)
              for p in session.run(StopCondition(max_samples=2048))]
    assert len(errors) >= 8
    early = sum(errors[:3]) / 3
    late = sum(errors[-3:]) / 3
    assert late <= early
    assert late < 0.05
