"""Ablation: RS-tree sample buffer size s.

The design choice DESIGN.md calls out — bigger buffers mean fewer refill
I/Os per sample but more space per node.  The sweep measures time and
node reads to draw a fixed k, plus the space overhead.
"""

import random

import pytest

from repro.core.sampling.base import take
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.index.cost import CostCounter, DEFAULT_COST_MODEL
from repro.index.hilbert_rtree import HilbertRTree

BUFFER_SIZES = [8, 32, 128]
K = 1024


@pytest.fixture(scope="module")
def own_tree(osm_dataset):
    """A private tree copy: buffer experiments must not mutate the
    shared dataset's node buffers."""
    tree = HilbertRTree(osm_dataset.dims, osm_dataset.bounds)
    tree.bulk_load((rid, r.key(osm_dataset.dims))
                   for rid, r in osm_dataset.records.items())
    return tree


@pytest.mark.parametrize("buffer_size", BUFFER_SIZES)
def test_rs_buffer_sweep(benchmark, own_tree, osm_query, buffer_size):
    sampler = RSTreeSampler(own_tree, buffer_size=buffer_size,
                            rng=random.Random(1))
    sampler.prepare()
    tallies = CostCounter()

    def draw():
        cost = CostCounter()
        got = take(sampler.sample_stream(osm_query, random.Random(2),
                                         cost=cost), K)
        assert len(got) == K
        tallies.node_reads = cost.node_reads
        tallies.random_reads = cost.random_reads
        tallies.sequential_reads = cost.sequential_reads
        return got

    benchmark(draw)
    benchmark.extra_info["node_reads"] = tallies.node_reads
    benchmark.extra_info["simulated_s"] = \
        DEFAULT_COST_MODEL.simulated_seconds(tallies)
    benchmark.extra_info["space_entries_per_node"] = buffer_size


def test_bigger_buffers_fewer_refill_reads(own_tree, osm_query):
    """The ablation's expected direction, asserted."""
    reads = {}
    for size in (8, 128):
        sampler = RSTreeSampler(own_tree, buffer_size=size,
                                rng=random.Random(3))
        sampler.prepare()
        cost = CostCounter()
        take(sampler.sample_stream(osm_query, random.Random(4),
                                   cost=cost), K)
        reads[size] = cost.node_reads
    assert reads[128] < reads[8]
