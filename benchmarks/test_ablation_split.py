"""Ablation: insertion heuristics (Guttman quadratic vs R*).

Node quality drives every sampler's canonical-set size.  This compares
dynamically built trees (random-order inserts) on build time, leaf
overlap, range-query reads and the canonical-set size the RS-tree's
sampler would see.
"""

import random

import pytest

from repro.core.geometry import Rect
from repro.index.cost import CostCounter
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

N = 8000
VARIANTS = {
    "guttman": lambda: RTree(2, leaf_capacity=16, branch_capacity=8),
    "rstar": lambda: RStarTree(2, leaf_capacity=16, branch_capacity=8),
}


@pytest.fixture(scope="module")
def points():
    rng = random.Random(181)
    centers = [(rng.uniform(10, 90), rng.uniform(10, 90))
               for _ in range(12)]
    pts = []
    for i in range(N):
        cx, cy = centers[rng.randrange(len(centers))]
        pts.append((i, (rng.gauss(cx, 4.0), rng.gauss(cy, 4.0))))
    rng.shuffle(pts)
    return pts


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_dynamic_build(benchmark, points, variant):
    def build():
        tree = VARIANTS[variant]()
        for pid, pt in points:
            tree.insert(pid, pt)
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    box = Rect((25, 25), (75, 75))
    cost = CostCounter()
    canon = tree.canonical_set(box, cost)
    benchmark.extra_info["canonical_nodes"] = len(canon.nodes)
    benchmark.extra_info["residual_points"] = len(canon.residual)
    benchmark.extra_info["query_reads"] = cost.node_reads


def test_rstar_smaller_canonical_residual(points):
    """Tighter leaves leave fewer boundary residuals for the sampler."""
    residuals = {}
    for name, factory in VARIANTS.items():
        tree = factory()
        for pid, pt in points:
            tree.insert(pid, pt)
        canon = tree.canonical_set(Rect((25, 25), (75, 75)))
        residuals[name] = len(canon.residual)
    assert residuals["rstar"] <= residuals["guttman"]
