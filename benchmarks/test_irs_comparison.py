"""Related-work comparison: IRS (1-d) vs the paper's samplers on 1-d data.

The paper dismisses Hu et al.'s independent range sampling as
one-dimensional and impractical; our simplified static version is
actually very fast in 1-d — the point of this bench is the flip side:
it cannot index 2-d/3-d data or absorb updates, which is the gap STORM
fills.  Timed at fixed k on the same 1-d workload.
"""

import random

import pytest

from repro.core.geometry import Rect
from repro.core.sampling.base import take
from repro.core.sampling.ls_tree import LSTree, LSTreeSampler
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.extensions.irs1d import IRS1D
from repro.index.hilbert_rtree import HilbertRTree

N = 50_000
K = 256
LO, HI = 200_000.0, 700_000.0


@pytest.fixture(scope="module")
def values():
    rng = random.Random(121)
    return [rng.uniform(0, 1_000_000) for _ in range(N)]


@pytest.fixture(scope="module")
def irs(values):
    return IRS1D(enumerate(values))


@pytest.fixture(scope="module")
def rs_1d(values):
    tree = HilbertRTree(1, Rect((0.0,), (1_000_000.0,)))
    tree.bulk_load((i, (v,)) for i, v in enumerate(values))
    sampler = RSTreeSampler(tree, buffer_size=64,
                            rng=random.Random(1))
    sampler.prepare()
    return sampler


@pytest.fixture(scope="module")
def ls_1d(values):
    forest = LSTree(1, rng=random.Random(2))
    forest.bulk_load((i, (v,)) for i, v in enumerate(values))
    return LSTreeSampler(forest)


def test_irs_sampling(benchmark, irs):
    def draw():
        return take(irs.sample_stream(LO, HI, random.Random(3)), K)

    got = benchmark(draw)
    assert len(got) == K
    benchmark.extra_info["q"] = irs.range_count(LO, HI)


def test_rs_tree_1d(benchmark, rs_1d):
    box = Rect((LO,), (HI,))

    def draw():
        return take(rs_1d.sample_stream(box, random.Random(4)), K)

    got = benchmark(draw)
    assert len(got) == K


def test_ls_tree_1d(benchmark, ls_1d):
    box = Rect((LO,), (HI,))

    def draw():
        return take(ls_1d.sample_stream(box, random.Random(5)), K)

    got = benchmark(draw)
    assert len(got) == K


def test_same_answers(irs, rs_1d, values):
    """All structures agree on the range contents."""
    box = Rect((LO,), (HI,))
    want = {i for i, v in enumerate(values) if LO <= v <= HI}
    got_irs = {i for i, _ in irs.sample_stream(LO, HI,
                                               random.Random(6))}
    assert got_irs == want
    assert rs_1d.range_count(box) == len(want)
