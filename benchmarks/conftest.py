"""Shared fixtures for the benchmark suite.

``STORM_BENCH_N`` scales the synthetic OSM substrate (default 50k keeps
the whole suite under a few minutes; the paper-shape tables in
EXPERIMENTS.md use the storm-bench CLI at 100k+).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import build_osm_dataset, fig3a_query

BENCH_N = int(os.environ.get("STORM_BENCH_N", "50000"))


@pytest.fixture(scope="session")
def osm():
    """(dataset, workload): the shared Figure-3 substrate."""
    return build_osm_dataset(n=BENCH_N, seed=17)


@pytest.fixture(scope="session")
def osm_dataset(osm):
    return osm[0]


@pytest.fixture(scope="session")
def osm_query(osm):
    dataset, workload = osm
    return fig3a_query(workload).to_rect(dataset.dims)
