"""Demo benchmark (updates): ad-hoc update cost and post-update
sampling freshness.

Measures insert/delete batch throughput through the update manager (all
index structures maintained: Hilbert R-tree with RS buffers invalidated
along paths, LS forest levels) and the extra sampling cost right after
an update burst (buffer refills).
"""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.records import Record, STRange
from repro.core.sampling.base import take
from repro.updates.manager import UpdateBatch, UpdateManager

BATCH = 200


def fresh_records(start_id, n, seed):
    rng = random.Random(seed)
    return [Record(record_id=start_id + i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.random()})
            for i in range(n)]


@pytest.fixture(scope="module")
def live_dataset():
    return Dataset("live", fresh_records(0, 20_000, seed=41),
                   rs_buffer_size=32)


def test_insert_delete_cycle_throughput(benchmark, live_dataset):
    """One batch of BATCH inserts + BATCH deletes (size stays stable)."""
    manager = UpdateManager(live_dataset)
    state = {"next_id": 10_000_000}

    def cycle():
        start = state["next_id"]
        state["next_id"] += BATCH
        inserts = fresh_records(start, BATCH, seed=start)
        manager.apply(UpdateBatch(inserts=inserts))
        manager.apply(UpdateBatch(
            deletes=[r.record_id for r in inserts]))

    benchmark(cycle)
    benchmark.extra_info["ops_per_cycle"] = 2 * BATCH


def test_sampling_after_update_burst(benchmark, live_dataset):
    """Sampling right after updates pays buffer refills — measure it."""
    manager = UpdateManager(live_dataset)
    everything = STRange(0, 0, 100, 100).to_rect(3)
    state = {"next_id": 20_000_000}

    def burst_then_sample():
        start = state["next_id"]
        state["next_id"] += BATCH
        inserts = fresh_records(start, BATCH, seed=start)
        manager.apply(UpdateBatch(inserts=inserts))
        got = take(live_dataset.samplers["rs-tree"].sample_stream(
            everything, random.Random(start)), 256)
        manager.apply(UpdateBatch(
            deletes=[r.record_id for r in inserts]))
        return got

    benchmark(burst_then_sample)


def test_updates_keep_samples_fresh(live_dataset):
    """Correctness under the benchmark's own churn: a fresh insert is
    immediately sampleable, a delete never reappears."""
    manager = UpdateManager(live_dataset)
    marker = Record(record_id=99_999_999, lon=50.0, lat=50.0, t=500.0)
    manager.insert(marker)
    window = STRange(49.9, 49.9, 50.1, 50.1, 499, 501).to_rect(3)
    rng = random.Random(9)
    got = {e.item_id for e in
           live_dataset.samplers["rs-tree"].sample_stream(window, rng)}
    assert marker.record_id in got
    manager.delete(marker.record_id)
    got = {e.item_id for e in
           live_dataset.samplers["rs-tree"].sample_stream(window, rng)}
    assert marker.record_id not in got
