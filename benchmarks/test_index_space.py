"""Space accounting: the paper's O(N) space claims, measured.

* LS-tree: "since their sizes form a geometric series, the total size
  is still O(N)" — expected 2N entries at p = 1/2.
* RS-tree: one R-tree plus an s-entry buffer per node — ~N(1 + s/B)
  entries.

Also times index construction, the one-off cost of each scheme.
"""

import random

import pytest

from repro.core.sampling.ls_tree import LSTree
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.index.hilbert_rtree import HilbertRTree
from repro.index.rtree import RTree


@pytest.fixture(scope="module")
def items(osm_dataset):
    return [(rid, r.key(osm_dataset.dims))
            for rid, r in osm_dataset.records.items()]


def buffered_entries(tree) -> int:
    total = 0
    stack = [tree.root] if tree.root is not None else []
    while stack:
        node = stack.pop()
        if node.sample_buffer is not None:
            total += len(node.sample_buffer)
        if not node.is_leaf:
            stack.extend(node.children or [])
    return total


def test_ls_space_is_linear(benchmark, items):
    def build():
        forest = LSTree(2, rng=random.Random(1))
        forest.bulk_load(items)
        return forest

    forest = benchmark(build)
    blowup = forest.total_entries() / len(items)
    benchmark.extra_info["entries_blowup"] = blowup
    benchmark.extra_info["levels"] = forest.num_levels
    assert blowup == pytest.approx(2.0, rel=0.1)


def test_rs_space_is_linear(benchmark, items, osm_dataset):
    def build():
        tree = HilbertRTree(2, osm_dataset.bounds)
        tree.bulk_load(items)
        sampler = RSTreeSampler(tree, buffer_size=64,
                                rng=random.Random(2))
        sampler.prepare()
        return tree

    tree = benchmark(build)
    extra = buffered_entries(tree) / len(items)
    benchmark.extra_info["buffer_blowup"] = extra
    benchmark.extra_info["nodes"] = tree.node_count()
    # One 64-entry buffer per ~64-entry leaf plus internal nodes: the
    # buffered copies stay a small constant multiple of N.
    assert extra < 2.5


def test_plain_rtree_space(benchmark, items):
    def build():
        tree = RTree(2)
        tree.bulk_load(items)
        return tree

    tree = benchmark(build)
    benchmark.extra_info["nodes"] = tree.node_count()
    # Fanout-64 leaves: node count is a small fraction of N.
    assert tree.node_count() < len(items) / 16
