"""Ablation: optimizer choice vs forced methods across selectivities.

The optimizer's value claim: its per-query choice tracks the best forced
method.  The sweep runs queries from very selective (tiny boxes) to very
broad, measuring the simulated cost of the optimizer's pick against the
best and worst forced picks.
"""

import random

import pytest

from repro.core.records import STRange
from repro.core.sampling.base import take
from repro.index.cost import CostCounter, DEFAULT_COST_MODEL

# (name, selectivity box half-width as fraction of domain, expected k)
SCENARIOS = [
    ("selective", 0.03, 32),
    ("medium", 0.15, 256),
    ("broad", 0.45, 256),
]


def scenario_query(osm_dataset, half_fraction):
    lo = osm_dataset.bounds.lo
    hi = osm_dataset.bounds.hi
    cx = (lo[0] + hi[0]) / 2
    cy = (lo[1] + hi[1]) / 2
    hw_x = (hi[0] - lo[0]) * half_fraction
    hw_y = (hi[1] - lo[1]) * half_fraction
    return STRange(cx - hw_x, cy - hw_y, cx + hw_x, cy + hw_y).to_rect(
        osm_dataset.dims)


def simulated_cost(osm_dataset, method, query, k):
    cost = CostCounter()
    take(osm_dataset.samplers[method].sample_stream(
        query, random.Random(5), cost=cost), k)
    return DEFAULT_COST_MODEL.simulated_seconds(cost)


@pytest.mark.parametrize("name,half,k", SCENARIOS,
                         ids=[s[0] for s in SCENARIOS])
def test_optimizer_choice(benchmark, osm_dataset, name, half, k):
    query = scenario_query(osm_dataset, half)

    def choose_and_run():
        plan = osm_dataset.optimizer.choose(query, expected_k=k)
        cost = CostCounter()
        kk = min(k, plan.q)
        take(plan.sampler.sample_stream(query, random.Random(6),
                                        cost=cost), kk)
        return plan, DEFAULT_COST_MODEL.simulated_seconds(cost)

    plan, chosen_cost = benchmark(choose_and_run)
    benchmark.extra_info["chosen"] = plan.method
    benchmark.extra_info["q"] = plan.q
    benchmark.extra_info["simulated_s"] = chosen_cost


@pytest.mark.parametrize("name,half,k", SCENARIOS,
                         ids=[s[0] for s in SCENARIOS])
def test_optimizer_tracks_best_method(osm_dataset, name, half, k):
    """The ablation's claim: the optimizer's pick is never far from the
    best forced method, and always far from the worst."""
    query = scenario_query(osm_dataset, half)
    q = osm_dataset.tree.range_count(query)
    if q == 0:
        pytest.skip("degenerate scenario for this substrate size")
    k = min(k, q)
    costs = {m: simulated_cost(osm_dataset, m, query, k)
             for m in osm_dataset.samplers}
    plan = osm_dataset.optimizer.choose(query, expected_k=k)
    best = min(costs.values())
    worst = max(costs.values())
    chosen = costs[plan.method]
    assert chosen <= best * 25 + 1e-6, (
        f"optimizer picked {plan.method} ({chosen:.4g}s) but best was "
        f"{min(costs, key=costs.get)} ({best:.4g}s)")
    if worst > 20 * best:
        assert chosen < worst / 2
