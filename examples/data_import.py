"""Data-import demo: the connector walkthrough from the paper.

"We will walk through the steps for importing a new data source from a
plain text file and a MySQL database respectively."  This script builds
a CSV file, a SQL database and a Cassandra-style key-value store, runs
schema discovery + import on each, and queries the imported datasets —
including one source that is merely *indexed* in place.

Run:  python examples/data_import.py
"""

import random
import sqlite3
import tempfile
from pathlib import Path

from repro import STRange, StopCondition, StormEngine
from repro.connector import (CSVSource, Importer, KeyValueSource,
                             KeyValueStore, SQLSource)


def make_csv(path: Path) -> None:
    rng = random.Random(41)
    lines = ["lon,lat,timestamp,species,count"]
    for _ in range(3_000):
        lines.append(f"{rng.uniform(-120, -70):.4f},"
                     f"{rng.uniform(28, 48):.4f},"
                     f"{rng.uniform(0, 10**6):.0f},"
                     f"{rng.choice(['elk', 'moose', 'bison'])},"
                     f"{rng.randint(1, 40)}")
    path.write_text("\n".join(lines) + "\n")


def make_sql(path: Path) -> None:
    rng = random.Random(42)
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE sensors (longitude REAL, latitude REAL, "
                 "ts REAL, pm25 REAL)")
    conn.executemany(
        "INSERT INTO sensors VALUES (?, ?, ?, ?)",
        [(rng.uniform(-120, -70), rng.uniform(28, 48),
          rng.uniform(0, 10**6), rng.gauss(35, 12))
         for _ in range(2_000)])
    conn.commit()
    conn.close()


def make_kv() -> KeyValueStore:
    rng = random.Random(43)
    kv = KeyValueStore(partitions=8)
    for i in range(1_500):
        kv.put("readings", f"r{i}",
               {"lon": rng.uniform(-120, -70),
                "lat": rng.uniform(28, 48),
                "t": rng.uniform(0, 10**6),
                "noise_db": round(rng.gauss(60, 8), 1)})
    return kv


def main() -> None:
    print("== Data connector: import from CSV / SQL / key-value ==")
    engine = StormEngine(seed=6)
    importer = Importer(engine)
    window = STRange(-110, 33, -85, 45, 0, 10**6)
    stop = StopCondition(max_samples=400)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        csv_path = tmp_path / "wildlife.csv"
        make_csv(csv_path)
        dataset, report = importer.run(CSVSource(str(csv_path)),
                                       "wildlife")
        print(f"\n{report.summary()}")
        print(f"  discovered schema: "
              f"{ {n: str(t) for n, t in report.schema.fields} }")
        print(f"  detected mapping: lon={report.mapping.lon_field} "
              f"lat={report.mapping.lat_field} "
              f"time={report.mapping.time_field}")
        point = engine.avg("wildlife", "count", window, stop=stop,
                           rng=random.Random(1))
        print(f"  AVG(count) in window: {point.estimate.value:.2f} "
              f"± {point.estimate.interval.half_width:.2f}")

        sql_path = tmp_path / "air.db"
        make_sql(sql_path)
        dataset, report = importer.run(
            SQLSource(str(sql_path), table="sensors"), "air")
        print(f"\n{report.summary()}")
        point = engine.avg("air", "pm25", window, stop=stop,
                           rng=random.Random(2))
        print(f"  AVG(pm25) in window: {point.estimate.value:.2f} "
              f"± {point.estimate.interval.half_width:.2f}")

        # Index-in-place: STORM indexes but does not copy the data.
        kv = make_kv()
        dataset, report = importer.run(KeyValueSource(kv, "readings"),
                                       "noise", mode="index")
        print(f"\n{report.summary()}")
        print(f"  storage engine collections: "
              f"{importer.store.list_collections()} "
              f"(no 'noise' — index mode leaves data at the source)")
        point = engine.avg("noise", "noise_db", window, stop=stop,
                           rng=random.Random(3))
        print(f"  AVG(noise_db) in window: {point.estimate.value:.2f} "
              f"± {point.estimate.interval.half_width:.2f}")

        print("\ncatalog after the imports:")
        for name in importer.catalog.names():
            info = importer.catalog.get(name)
            print(f"  {info.name:<10} {info.mode:<7} {info.source:<28} "
                  f"{info.record_count} records")


if __name__ == "__main__":
    main()
