"""Online GROUP BY: per-borough electricity usage at a glance.

Extends the quickstart with the group-by online aggregation operator
(the classic companion of online aggregation, cited by the paper):
per-group means, shares and scaled counts, each with its own interval,
all from a single shared sample stream — plus the same query through
the keyword language.

Run:  python examples/groupby_exploration.py
"""

import random

from repro import STRange, StopCondition, StormEngine
from repro.query import QueryExecutor
from repro.viz import render_groups
from repro.workloads import ElectricityWorkload


def main() -> None:
    print("== Online GROUP BY: usage by borough ==")
    workload = ElectricityWorkload(units=4_000, readings_per_unit=10,
                                   seed=31)
    engine = StormEngine(seed=8)
    engine.create_dataset("electricity", workload.generate())
    nyc = STRange(-74.3, 40.45, -73.6, 40.95)

    print("\nafter 200 samples:")
    point = engine.group_by("electricity", "borough", nyc,
                            attribute="kwh",
                            stop=StopCondition(max_samples=200),
                            rng=random.Random(21))
    print(render_groups(point.estimate.value))

    print("\nafter 3000 samples (same query, left running):")
    point = engine.group_by("electricity", "borough", nyc,
                            attribute="kwh",
                            stop=StopCondition(max_samples=3000),
                            rng=random.Random(21))
    print(render_groups(point.estimate.value))

    print("\nthe same through the query language:")
    executor = QueryExecutor(engine, rng=random.Random(22))
    result = executor.execute(
        "ESTIMATE AVG(kwh) FROM electricity "
        "WHERE REGION(-74.3, 40.45, -73.6, 40.95) "
        "GROUP BY borough SAMPLES 1000")
    for g in result.value:
        print(f"  {str(g.key):<14} mean={g.mean:7.1f} kWh "
              f"± {g.mean_interval.half_width:5.1f}  "
              f"share={g.share:5.1%} "
              f"(~{g.estimated_count:,.0f} readings)")
    print("\nmanhattan should lead — its seeded base usage is highest")


if __name__ == "__main__":
    main()
