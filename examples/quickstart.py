"""Quickstart: the paper's introduction example, end to end.

A user explores electricity usage in NYC over the first quarter: draw an
area on the map, pick January 5 - March 5, and ask for the average usage
per unit.  STORM answers *online*: within the first samples it reports
"~973 kWh ± 25 at 95% confidence", and the interval tightens the longer
you wait — so the user can re-query a different area/time immediately
instead of waiting for an exact scan.

Run:  python examples/quickstart.py
"""

import random

from repro import (AvgEstimator, STRange, StopCondition, StormEngine,
                   attribute_getter)
from repro.workloads import ElectricityWorkload

DAY = 86_400.0


def main() -> None:
    print("== STORM quickstart: NYC electricity usage ==")
    workload = ElectricityWorkload(units=4_000, readings_per_unit=12,
                                   seed=31)
    engine = StormEngine(seed=1)
    print("importing and indexing the meter readings ...")
    dataset = engine.create_dataset("electricity", workload.generate())
    print(f"indexed {len(dataset)} readings "
          f"(Hilbert R-tree height {dataset.tree.height}, "
          f"LS forest {dataset.forest.num_levels} levels)\n")

    # --- Query 1: a Manhattan-ish box, Jan 5 - Mar 5 -------------------
    window = workload.first_quarter_range()
    print("query 1: AVG(kwh) over lower Manhattan, Jan 5 - Mar 5")
    estimator_session = dataset.session(
        window, AvgEstimator(attribute_getter("kwh")),
        rng=random.Random(7), report_every=50)
    for point in estimator_session.run(StopCondition(max_samples=1200)):
        ci = point.estimate.interval
        print(f"  after {point.k:>5} samples "
              f"({point.elapsed * 1000:7.1f} ms): "
              f"{point.estimate.value:7.1f} kWh "
              f"± {ci.half_width:6.1f} @95%")
        if ci.relative_half_width() < 0.01:
            print("  good enough — the user moves on "
                  "(1% relative error reached)")
            break

    # --- Query 2: the user adjusts area and time without waiting --------
    window2 = STRange(-73.99, 40.60, -73.90, 40.70,
                      14 * DAY, 71 * DAY)  # Brooklyn, Jan 15 - Mar 12
    print("\nquery 2: the user pans to Brooklyn and shifts the dates")
    point = engine.avg("electricity", "kwh", window2,
                       stop=StopCondition(target_relative_error=0.02),
                       rng=random.Random(8))
    est = point.estimate
    print(f"  {est.value:.1f} kWh ± {est.interval.half_width:.1f} "
          f"after only {est.k} of {est.q} readings "
          f"({point.reason})")

    # --- Exact ground truth, for the skeptical ---------------------------
    exact = engine.avg("electricity", "kwh", window2,
                       stop=StopCondition(max_samples=10**9),
                       rng=random.Random(9))
    print(f"  exact answer (full scan): {exact.estimate.value:.1f} kWh "
          f"— the online interval "
          f"{'contained' if est.interval.contains(exact.estimate.value) else 'missed'}"
          f" it")


if __name__ == "__main__":
    main()
