"""Distributed demo: STORM on a (simulated) cluster of machines.

The paper's STORM runs on a cluster with a DFS underneath.  This example
shards a dataset across simulated workers with the Hilbert-range
partitioner, draws globally uniform samples through the distributed
RS-tree, and shows the simulated per-query time shrinking as workers are
added (network + slowest-worker model).

Run:  python examples/distributed_cluster.py
"""

import random

from repro import STRange
from repro.distributed import DistributedSampler, DistributedSTIndex
from repro.workloads import OSMWorkload


def main() -> None:
    print("== Distributed STORM: sharded sampling on a cluster ==")
    workload = OSMWorkload(n=60_000, seed=17)
    records = workload.generate()
    lon_lo, lat_lo, lon_hi, lat_hi = workload.dense_query_box(0.3)
    query = STRange(lon_lo, lat_lo, lon_hi, lat_hi)

    print(f"{len(records)} points; query covers a central box\n")
    print(f"{'workers':>8} {'q':>8} {'k':>6} {'sim time':>10} "
          f"{'net msgs':>9} {'balance':>8}")
    for workers in (1, 2, 4, 8):
        index = DistributedSTIndex(records, n_workers=workers, seed=8,
                                   rs_buffer_size=32)
        sampler = DistributedSampler(index, batch_size=32)
        q = index.range_count(query)
        index.cluster.reset_costs()
        samples = sampler.sample(query, 512, random.Random(9))
        assert len(samples) == 512
        sizes = [len(w) for w in index.cluster.workers]
        balance = max(sizes) / (sum(sizes) / len(sizes))
        print(f"{workers:>8} {q:>8} {len(samples):>6} "
              f"{sampler.last_query_seconds():>9.4f}s "
              f"{index.cluster.network.messages:>9} "
              f"{balance:>8.3f}")

    print("\nper-worker spatial coherence (each shard's bounding box is "
          "compact, thanks to Hilbert-range partitioning):")
    index = DistributedSTIndex(records, n_workers=4, seed=8)
    for worker in index.cluster.workers:
        mbr = worker.tree.root.mbr
        print(f"  worker {worker.worker_id}: {len(worker)} points, "
              f"lon [{mbr.lo[0]:7.2f}, {mbr.hi[0]:7.2f}] "
              f"lat [{mbr.lo[1]:6.2f}, {mbr.hi[1]:6.2f}]")


if __name__ == "__main__":
    main()
