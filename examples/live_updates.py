"""Updates demo: ad-hoc data updates with fresh online samples.

"The twitter data set in STORM is constantly updated with new tweets
using the twitter API ... STORM has successfully incorporated their
impacts to analytical results by issuing analytical queries with time
range that narrows down to the most recent time history."

This script streams new tweets into an indexed dataset through the
update manager, repeatedly querying the most recent five minutes — the
counts and samples always reflect exactly what has arrived.

Run:  python examples/live_updates.py
"""

import random

from repro import Record, STRange, StopCondition, StormEngine
from repro.storage.document_store import DocumentStore
from repro.updates import UpdateManager
from repro.workloads import TwitterWorkload


def main() -> None:
    print("== Live updates: sampling stays fresh under churn ==")
    workload = TwitterWorkload(n=20_000, users=1_000, seed=23)
    records = workload.generate()
    engine = StormEngine(seed=7)
    dataset = engine.create_dataset("tweets", records)
    store = DocumentStore()
    store.collection("tweets").insert_many(
        r.to_document() for r in records)
    manager = UpdateManager(dataset, store=store, collection="tweets")
    now = workload.time_span
    rng = random.Random(51)

    print(f"indexed {len(dataset)} historical tweets; streaming new "
          f"ones ...\n")
    next_id = len(records)
    for minute in range(1, 6):
        # One simulated minute of fresh tweets around NYC.
        fresh = []
        for _ in range(120):
            fresh.append(Record(
                record_id=next_id,
                lon=rng.gauss(-74.0, 0.2), lat=rng.gauss(40.7, 0.2),
                t=now + minute * 60.0 + rng.random() * 60.0,
                attrs={"user": f"user{rng.randrange(1000)}",
                       "text": "breaking news " + str(next_id)}))
            next_id += 1
        result = manager.insert_stream(fresh, batch_size=64)
        applied = sum(r.inserted for r in result)

        # The demo query: narrow the time range to the last 5 minutes.
        recent = STRange(-180, -90, 180, 90,
                         now, now + minute * 60.0 + 60.0)
        point = engine.count("tweets", recent,
                             stop=StopCondition(max_samples=100),
                             rng=random.Random(minute))
        print(f"minute {minute}: applied {applied} inserts "
              f"({sum(r.throughput() for r in result) / len(result):,.0f}"
              f" ops/s); COUNT(last {minute} min) = "
              f"{point.estimate.value} (exact from index counts)")

        # And a sample from the freshest window only.
        sampler = dataset.samplers["rs-tree"]
        got = [e.item_id for e in
               sampler.sample_stream(dataset.to_rect(recent),
                                     random.Random(100 + minute))][:5]
        texts = [dataset.lookup(i).attrs["text"] for i in got]
        print(f"          sample of fresh tweets: {texts[:3]}")

    # Deletes are symmetric: retract the last minute.
    doomed = list(range(next_id - 120, next_id))
    from repro.updates import UpdateBatch
    manager.apply(UpdateBatch(deletes=doomed))
    recent = STRange(-180, -90, 180, 90, now, now + 10 * 60.0)
    q = dataset.tree.range_count(dataset.to_rect(recent))
    print(f"\nafter retracting the last minute: {q} recent tweets "
          f"remain in the index, {store.collection('tweets').count()}"
          f" documents in the store (consistent: "
          f"{q + len(records) - 480 == len(dataset) - 480})")
    manager.flush()
    print("flushed to the simulated DFS")


if __name__ == "__main__":
    main()
