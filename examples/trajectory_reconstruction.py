"""Figure 6(a) demo: online approximate trajectory reconstruction.

Build an online, approximate trajectory for a given twitter user over a
time range using the location/timestamp of their sampled tweets.  The
polyline sharpens as more samples arrive; we print the reconstruction at
a few sample counts and its discrepancy against the exact trajectory.

Run:  python examples/trajectory_reconstruction.py
"""

import random

from repro import StopCondition, StormEngine, TrajectoryEstimator
from repro.core.estimators.trajectory import Trajectory
from repro.core.session import OnlineQuerySession
from repro.viz import render_trajectory
from repro.workloads import TwitterWorkload


def busiest_user(records):
    counts: dict[str, int] = {}
    for r in records:
        counts[r.attrs["user"]] = counts.get(r.attrs["user"], 0) + 1
    return max(counts, key=counts.get)


def main() -> None:
    print("== Online approximate trajectory construction ==")
    workload = TwitterWorkload(n=40_000, users=300, seed=23)
    records = workload.generate()
    engine = StormEngine(seed=5)
    dataset = engine.create_dataset("tweets", records)

    user = busiest_user(records)
    user_tweets = sorted((r for r in records if r.attrs["user"] == user),
                         key=lambda r: r.t)
    truth = Trajectory([(r.t, r.lon, r.lat) for r in user_tweets])
    print(f"user {user!r} tweeted {len(user_tweets)} times; "
          f"reconstructing from online samples of the whole region\n")

    window = workload.usa_range()
    estimator = TrajectoryEstimator(key_field="user", key_value=user)
    session = OnlineQuerySession(
        dataset.samplers["rs-tree"], estimator,
        dataset.to_rect(window), dataset.lookup,
        rng=random.Random(19), report_every=500)

    shown = set()
    for point in session.run(StopCondition(max_samples=20_000)):
        matched = estimator.matched
        for checkpoint in (5, 20, 60):
            if matched >= checkpoint and checkpoint not in shown \
                    and matched >= 2:
                shown.add(checkpoint)
                traj = estimator.trajectory()
                err = traj.discrepancy(truth)
                print(render_trajectory(
                    traj, width=56, height=12,
                    title=f"after {matched} of the user's tweets "
                          f"sampled (mean error "
                          f"{err:.3f} deg):"))
                print()
        if len(shown) == 3:
            break

    final = estimator.trajectory()
    print(f"final reconstruction: {len(final)} vertices, "
          f"discrepancy {final.discrepancy(truth):.4f} deg, "
          f"temporal resolution {final.mean_gap() / 3600:.1f} h/vertex")


if __name__ == "__main__":
    main()
