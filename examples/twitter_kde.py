"""Figure 5 demo: interactive online KDE population density.

Estimates population density from geo-tweets with the online KDE
estimator — first zoomed into Salt Lake City, then zoomed out to the
whole USA — rendering the density map as ASCII art at increasing sample
counts so the progressive refinement is visible (cells still fuzzy at
the current sample size are marked '?').

Run:  python examples/twitter_kde.py
"""

import random

from repro import GridSpec, OnlineKDE, StopCondition, StormEngine
from repro.core.session import OnlineQuerySession
from repro.viz import render_density_with_ci
from repro.workloads import TwitterWorkload


def progressive_kde(dataset, window, title, checkpoints=(100, 800)):
    spec = GridSpec(window.lon_lo, window.lat_lo, window.lon_hi,
                    window.lat_hi, nx=48, ny=16)
    estimator = OnlineKDE(spec)
    session = OnlineQuerySession(
        dataset.samplers["rs-tree"], estimator,
        dataset.to_rect(window), dataset.lookup,
        rng=random.Random(13), report_every=20)
    reached = set()
    for point in session.run(StopCondition(max_samples=max(checkpoints))):
        for checkpoint in checkpoints:
            if point.k >= checkpoint and checkpoint not in reached:
                reached.add(checkpoint)
                lo, hi = estimator.cell_intervals()
                print(render_density_with_ci(
                    point.estimate.value, lo, hi,
                    title=f"{title} - k={point.k} samples "
                          f"('?' = still uncertain)"))
                print()


def main() -> None:
    print("== Twitter: online population density (KDE) ==")
    workload = TwitterWorkload(n=40_000, users=2_000, seed=23)
    engine = StormEngine(seed=3)
    dataset = engine.create_dataset("tweets", workload.generate())
    print(f"indexed {len(dataset)} geo-tweets\n")

    progressive_kde(dataset, workload.slc_range(),
                    "Salt Lake City, last 30 days")
    progressive_kde(dataset, workload.usa_range(),
                    "zoomed out: continental USA")

    print("the density peaks line up with the seeded city clusters "
          "(NYC, LA, Chicago, ...)")


if __name__ == "__main__":
    main()
