"""Figure 6(b) demo: spatio-temporal short-text understanding.

"There was a highly anomalous heavy snow in the Atlanta area in the days
between February 10 and February 13, 2014.  To see how the citizens of
Atlanta reacted, we used a spatio-temporal window on downtown Atlanta
during that period" — the online short-text estimator surfaces *snow,
ice, outage, shit, hell, why* from samples alone, and the paper's
cross-source check (confirm the weather in MesoWest) is reproduced too.

Run:  python examples/atlanta_snowstorm.py
"""

import random

from repro import ShortTextEstimator, StopCondition, StormEngine
from repro.core.session import OnlineQuerySession
from repro.workloads import TwitterWorkload


def main() -> None:
    print("== Atlanta snowstorm: online short-text understanding ==")
    workload = TwitterWorkload(n=40_000, users=2_000, seed=23)
    engine = StormEngine(seed=4)
    dataset = engine.create_dataset("tweets", workload.generate())
    window = workload.snowstorm_range()
    print(f"indexed {len(dataset)} tweets; querying downtown Atlanta, "
          f"storm days\n")

    estimator = ShortTextEstimator(
        background=workload.background_frequencies())
    session = OnlineQuerySession(
        dataset.samplers["rs-tree"], estimator,
        dataset.to_rect(window), dataset.lookup,
        rng=random.Random(17), report_every=50)

    for point in session.run(StopCondition(max_samples=400)):
        if point.k in (50, 400) or point.done:
            print(f"top terms by lift after {point.k} sampled tweets:")
            for stat in estimator.top_terms(8, by_lift=True):
                bar = "#" * min(40, int(stat.frequency * 60))
                print(f"  {stat.term:<10} {stat.frequency:6.1%} "
                      f"[{stat.interval.lo:5.1%}, "
                      f"{stat.interval.hi:5.1%}]  {bar}")
            print()
        if point.done:
            break

    storm_terms = {s.term for s in estimator.top_terms(8, by_lift=True)}
    found = storm_terms & {"snow", "ice", "outage", "shit", "hell",
                           "why", "stuck", "cold", "storm", "power"}
    print(f"storm vocabulary surfaced: {sorted(found)}")

    # The paper's cross-source confirmation: check the weather.
    print("\ncross-check against the MesoWest feed (same window):")
    from repro.workloads import MesoWestWorkload
    mesowest = MesoWestWorkload(stations=800,
                                measurements_per_station=40, seed=29)
    engine.create_dataset("mesowest", mesowest.generate())
    from repro import STRange
    atlanta_weather = STRange(window.lon_lo - 2.0, window.lat_lo - 2.0,
                              window.lon_hi + 2.0, window.lat_hi + 2.0)
    point = engine.avg("mesowest", "temperature", atlanta_weather,
                       stop=StopCondition(max_samples=500),
                       rng=random.Random(18))
    est = point.estimate
    print(f"  avg temperature around Atlanta: {est.value:.1f} C "
          f"over {est.q} readings (k={est.k})")


if __name__ == "__main__":
    main()
