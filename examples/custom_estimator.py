"""Customized analytics: build your own online estimator.

The paper's fourth demo component: "we will show how to program a
customized analytical task using the built-in feature module and spatial
online samples returned from the sampler."

Here we build an estimator STORM does not ship — the *correlation*
between elevation and temperature over a spatio-temporal region (it
should be strongly negative: the lapse rate) — two ways:

1. subclassing :class:`OnlineEstimator` directly, with an exact online
   (Welford-style) correlation accumulator and a Fisher-z interval;
2. wrapping a plain function in :class:`BootstrapEstimator`, the
   zero-math route for one-off analytics.

Both plug into the same sampler/session machinery as the built-ins.

Run:  python examples/custom_estimator.py
"""

import math
import random

from repro import Record, STRange, StopCondition, StormEngine
from repro.core.estimators import (BootstrapEstimator, ConfidenceInterval,
                                   Estimate, OnlineEstimator)
from repro.core.session import OnlineQuerySession
from repro.errors import EstimatorError
from repro.workloads import MesoWestWorkload


class OnlineCorrelation(OnlineEstimator):
    """Pearson correlation of two attributes, online, with Fisher-z CI."""

    def __init__(self, x_attr: str, y_attr: str):
        super().__init__()
        self.x_attr = x_attr
        self.y_attr = y_attr
        self.n = 0
        self.mean_x = self.mean_y = 0.0
        self.m2_x = self.m2_y = self.co = 0.0

    def update(self, record: Record) -> None:
        x = float(record.attrs[self.x_attr])
        y = float(record.attrs[self.y_attr])
        self.n += 1
        dx = x - self.mean_x            # deviation from the old mean
        dy = y - self.mean_y
        self.mean_x += dx / self.n
        self.mean_y += dy / self.n
        self.m2_x += dx * (x - self.mean_x)
        self.m2_y += dy * (y - self.mean_y)
        self.co += dx * (y - self.mean_y)

    def estimate(self, level: float = 0.95) -> Estimate:
        if self.n < 4:
            raise EstimatorError("need >= 4 samples for a correlation")
        denom = math.sqrt(self.m2_x * self.m2_y)
        if denom == 0:
            raise EstimatorError("degenerate attribute variance")
        r = self.co / denom
        # Fisher z-transform interval.
        z = 0.5 * math.log((1 + r) / (1 - r)) if abs(r) < 1 else \
            math.copysign(10.0, r)
        se = 1.0 / math.sqrt(self.n - 3)
        from scipy.stats import norm
        crit = float(norm.ppf((1 + level) / 2))
        lo = math.tanh(z - crit * se)
        hi = math.tanh(z + crit * se)
        return Estimate(value=r, std_error=se,
                        interval=ConfidenceInterval(lo, hi, level),
                        k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.n = 0
        self.mean_x = self.mean_y = 0.0
        self.m2_x = self.m2_y = self.co = 0.0


def correlation_statistic(records) -> float:
    xs = [r.attrs["elevation"] for r in records]
    ys = [r.attrs["temperature"] for r in records]
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    co = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    return co / math.sqrt(vx * vy) if vx > 0 and vy > 0 else 0.0


def main() -> None:
    print("== Customized analytics: elevation/temperature correlation ==")
    workload = MesoWestWorkload(stations=1_200,
                                measurements_per_station=25, seed=29)
    engine = StormEngine(seed=9)
    dataset = engine.create_dataset("mesowest", workload.generate())
    window = STRange(-125, 25, -65, 50)
    print(f"indexed {len(dataset)} measurements\n")

    print("1) hand-rolled OnlineCorrelation (Fisher-z interval):")
    est = OnlineCorrelation("elevation", "temperature")
    session = OnlineQuerySession(
        dataset.samplers["rs-tree"], est, dataset.to_rect(window),
        dataset.lookup, rng=random.Random(23), report_every=100)
    for point in session.run(StopCondition(max_samples=1500)):
        e = point.estimate
        print(f"   k={e.k:>5}: r = {e.value:+.3f} "
              f"[{e.interval.lo:+.3f}, {e.interval.hi:+.3f}]")

    print("\n2) the same statistic through BootstrapEstimator "
          "(no math needed):")
    boot = BootstrapEstimator(correlation_statistic, replicates=200,
                              seed=7)
    session = OnlineQuerySession(
        dataset.samplers["ls-tree"], boot, dataset.to_rect(window),
        dataset.lookup, rng=random.Random(24), report_every=250)
    for point in session.run(StopCondition(max_samples=1000)):
        e = point.estimate
        print(f"   k={e.k:>5}: r = {e.value:+.3f} "
              f"[{e.interval.lo:+.3f}, {e.interval.hi:+.3f}] "
              f"(bootstrap)")

    print("\nnegative and tightening: the -6.5 C/km lapse rate, "
          "recovered from samples alone")


if __name__ == "__main__":
    main()
