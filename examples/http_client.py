"""Query-service demo: the full HTTP API from a stdlib client.

The paper's demo is a map UI polling progressively tightening
estimates; this is the wire-level equivalent.  The script starts a
:class:`~repro.server.http.StormServer` in-process on an ephemeral
port, then speaks plain HTTP to it the way any remote client would:

1. a one-shot query (``POST /v1/query``) — block until the final
   estimate;
2. a progressive stream (``POST /v1/stream``) — NDJSON frames printed
   as the confidence interval tightens;
3. a detached session stream — launch, "disconnect", and poll frames
   by index (``?from=N``), the resume pattern for flaky clients.

Everything here is urllib + json; the full endpoint reference is
docs/service.md.

Run:  PYTHONPATH=src python examples/http_client.py
"""

import json
import time
import urllib.request

from repro.server import QueryService, ServerConfig, StormServer
from repro.workloads import OSMWorkload
from repro import StormEngine

QUERY = ("ESTIMATE AVG(altitude) FROM osm "
         "WHERE REGION(-114, 37, -109, 42) WITHIN ERROR 1% "
         "SAMPLES 20000")


def request(url: str, method: str = "GET", body: dict | None = None):
    req = urllib.request.Request(
        url, method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"X-Storm-Tenant": "demo",
                 "Content-Type": "application/json"})
    return urllib.request.urlopen(req, timeout=60)


def main() -> None:
    print("== The query service over HTTP ==")
    engine = StormEngine(seed=7)
    engine.create_dataset("osm", OSMWorkload(n=50_000,
                                             seed=7).generate())
    service = QueryService(engine, ServerConfig(quantum=64))
    with StormServer(service) as server:
        print(f"serving {server.url} (open access)\n")

        print("-- one-shot: POST /v1/query --")
        with request(server.url + "/v1/query", "POST",
                     {"query": QUERY, "seed": 42}) as resp:
            doc = json.load(resp)
        final = doc["result"]
        est = final["estimate"]
        print(f"{est['value']:.1f} m after k={final['k']} samples "
              f"({doc['progress_frames']} progress frames, "
              f"reason: {final['reason']!r})\n")

        print("-- progressive: POST /v1/stream (NDJSON) --")
        with request(server.url + "/v1/stream", "POST",
                     {"query": QUERY, "seed": 42}) as resp:
            for line in resp:
                frame = json.loads(line)
                est = frame.get("estimate") or {}
                ci = est.get("interval")
                width = (f"±{(ci['hi'] - ci['lo']) / 2:.1f}"
                         if ci else "  (no interval yet)")
                print(f"  [{frame['frame']:>8}] k={frame['k']:>6} "
                      f"avg={est['value']:.1f} {width}")
                if frame["frame"] in ("end", "error"):
                    break
        print()

        print("-- detached: sessions + poll/resume --")
        with request(server.url + "/v1/sessions", "POST",
                     {"name": "demo-session"}) as resp:
            session = json.load(resp)["session"]
        with request(
                server.url + f"/v1/sessions/{session}/streams",
                "POST", {"query": QUERY, "seed": 1}) as resp:
            stream = json.load(resp)["stream"]
        print(f"launched {stream} in {session}; polling ...")
        cursor, polls = 0, 0
        while True:
            polls += 1
            with request(server.url + f"/v1/sessions/{session}"
                         f"/streams/{stream}?from={cursor}") as resp:
                doc = json.load(resp)
            cursor = doc["next"]
            if doc["state"] in ("done", "error", "cancelled"):
                break
            time.sleep(0.05)
        final = doc["frames"][-1] if doc["frames"] else {}
        print(f"{polls} polls, {cursor} frames total; final "
              f"estimate {final.get('estimate', {}).get('value'):.1f}"
              f" (state: {doc['state']})")
        with request(server.url + f"/v1/sessions/{session}",
                     "DELETE") as resp:
            json.load(resp)
        print("session closed; server drains on exit")


if __name__ == "__main__":
    main()
