"""Basic analytics demo: spatio-temporal aggregation on MesoWest data.

Mirrors the paper's first demo component: "the average temperature
reading from a spatio-temporal region" over the atmospheric measurement
network, issued through the keyword query language, with the optimizer's
EXPLAIN output and a comparison of forced sampling methods.

Run:  python examples/mesowest_aggregation.py
"""

import random

from repro import StormEngine
from repro.query import QueryExecutor
from repro.workloads import MesoWestWorkload


def main() -> None:
    print("== MesoWest: online spatio-temporal aggregation ==")
    workload = MesoWestWorkload(stations=1_500,
                                measurements_per_station=30, seed=29)
    engine = StormEngine(seed=2)
    dataset = engine.create_dataset("mesowest", workload.generate())
    print(f"indexed {len(dataset)} measurements from "
          f"{workload.stations} stations\n")
    executor = QueryExecutor(engine, rng=random.Random(5))

    # A mountain-west box, one month of the window.
    where = ("WHERE REGION(-114, 37, -105, 44) "
             "AND TIME(2592000, 5184000)")

    print("the optimizer's view of this query:")
    plan = executor.execute(
        f"EXPLAIN ESTIMATE AVG(temperature) FROM mesowest {where}")
    print("  " + plan.explanation.replace("\n", "\n  ") + "\n")

    print("online AVG(temperature) to 1% relative error:")
    result = executor.execute(
        f"ESTIMATE AVG(temperature) FROM mesowest {where} "
        f"WITHIN ERROR 1% CONFIDENCE 95%")
    print("  " + result.summary() + "\n")

    print("same query, each sampling method forced, SAMPLES 400:")
    for method in ("rs-tree", "ls-tree", "random-path", "query-first"):
        r = executor.execute(
            f"ESTIMATE AVG(temperature) FROM mesowest {where} "
            f"SAMPLES 400 USING {method}")
        est = r.final.estimate
        print(f"  {method:<12} {est.value:6.2f} C "
              f"± {est.interval.half_width:4.2f} "
              f"(k={est.k}, {r.final.elapsed * 1000:6.1f} ms wall)")

    print("\nother aggregates, same window:")
    for task in ("COUNT", "STD(temperature)", "MEDIAN(temperature)",
                 "QUANTILE(wind_speed, 0.9)"):
        r = executor.execute(
            f"ESTIMATE {task} FROM mesowest {where} SAMPLES 500")
        est = r.final.estimate
        ci = (f" [{est.interval.lo:.2f}, {est.interval.hi:.2f}]"
              if est.interval else "")
        print(f"  {task:<28} = {est.value:.2f}{ci}")


if __name__ == "__main__":
    main()
