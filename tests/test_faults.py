"""Fault-injection layer: plans, DFS failover, worker gating, timeouts.

Covers the deterministic fault model itself (logical clock, seeded
coins, serialisation), the DFS replica-walk semantics (who gets
charged, which counters move, when BlockReadError fires), the
coprime placement stride, NetworkModel timeouts and the crash/recover
life cycle of workers.  The end-to-end sampling behavior under faults
lives in test_chaos.py.
"""

import json

import pytest

from repro.core.geometry import Rect
from repro.core.records import Record
from repro.distributed.cluster import NetworkModel, SimulatedCluster
from repro.errors import (BlockReadError, ClusterError, FaultError,
                          NetworkTimeoutError, StorageError, StormError,
                          StreamLostError, WorkerUnavailableError,
                          WriteCrashError)
from repro.faults import CrashWindow, FaultPlan
from repro.obs import Observability
from repro.storage.dfs import SimulatedDFS

BOUNDS = Rect((0, 0, 0), (100, 100, 100))


def records(n, seed=0):
    import random
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 100))
            for i in range(n)]


class TestFaultPlan:
    def test_crash_window_schedule_follows_logical_clock(self):
        plan = FaultPlan().crash("worker:1", at=2, until=4)
        assert not plan.is_down("worker:1")  # tick 0
        plan.tick()
        assert not plan.is_down("worker:1")  # tick 1
        plan.tick()
        assert plan.is_down("worker:1")      # tick 2: window opens
        plan.tick()
        assert plan.is_down("worker:1")      # tick 3
        plan.tick()
        assert not plan.is_down("worker:1")  # tick 4: recovered

    def test_permanent_crash_never_recovers(self):
        plan = FaultPlan().crash("worker:0", at=0)
        for _ in range(100):
            plan.tick()
        assert plan.is_down("worker:0")

    def test_windows_validate(self):
        with pytest.raises(StormError):
            FaultPlan().crash("worker:0", at=-1)
        with pytest.raises(StormError):
            FaultPlan().crash("worker:0", at=5, until=5)
        assert not CrashWindow(3).covers(2)
        assert CrashWindow(3).covers(3)

    def test_error_coins_are_seeded_and_deterministic(self):
        a = FaultPlan(seed=42).error_rate("dfs.read", 0.5)
        b = FaultPlan(seed=42).error_rate("dfs.read", 0.5)
        outcomes_a = [a.should_fail("dfs.read") for _ in range(64)]
        outcomes_b = [b.should_fail("dfs.read") for _ in range(64)]
        assert outcomes_a == outcomes_b
        assert any(outcomes_a) and not all(outcomes_a)

    def test_zero_rate_never_consumes_randomness(self):
        plan = FaultPlan(seed=7).error_rate("dfs.read", 1.0)
        # Ops without a rate must not perturb the seeded sequence.
        for _ in range(10):
            assert not plan.should_fail("worker.fetch_batch")
        assert plan.should_fail("dfs.read")

    def test_rate_resolution_exact_beats_prefix_beats_star(self):
        plan = (FaultPlan().error_rate("*", 0.1)
                .error_rate("worker.*", 0.2)
                .error_rate("worker.fetch_batch", 0.3))
        assert plan.rate_for("worker.fetch_batch") == 0.3
        assert plan.rate_for("worker.open_stream") == 0.2
        assert plan.rate_for("dfs.read") == 0.1
        with pytest.raises(StormError):
            plan.error_rate("dfs.read", 1.5)

    def test_slow_nodes_validate_and_default(self):
        plan = FaultPlan().slow("worker:2", 4.0)
        assert plan.latency_multiplier("worker:2") == 4.0
        assert plan.latency_multiplier("worker:0") == 1.0
        with pytest.raises(StormError):
            plan.slow("worker:0", 0.5)

    def test_round_trips_through_dict_and_json(self, tmp_path):
        plan = (FaultPlan(seed=9)
                .crash("worker:1", at=5, until=10)
                .crash("machine:0", at=0)
                .error_rate("dfs.read", 0.25)
                .slow("worker:3", 2.0))
        spec = plan.to_dict()
        clone = FaultPlan.from_dict(spec)
        assert clone.to_dict() == spec
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(spec))
        loaded = FaultPlan.from_json(str(path))
        assert loaded.to_dict() == spec

    def test_from_json_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(StormError):
            FaultPlan.from_json(str(missing))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(StormError):
            FaultPlan.from_json(str(bad))


class TestFaultErrorHierarchy:
    def test_fault_errors_keep_subsystem_handlers_working(self):
        assert issubclass(BlockReadError, FaultError)
        assert issubclass(BlockReadError, StorageError)
        assert issubclass(WorkerUnavailableError, ClusterError)
        assert issubclass(StreamLostError, ClusterError)
        assert issubclass(NetworkTimeoutError, ClusterError)
        assert issubclass(FaultError, StormError)


class TestDFSFailover:
    def make_dfs(self, **kwargs):
        kwargs.setdefault("machines", 4)
        kwargs.setdefault("replication", 2)
        kwargs.setdefault("block_size", 64)
        dfs = SimulatedDFS(**kwargs)
        dfs.write_file("f", bytes(range(256)))
        return dfs

    def test_no_plan_reads_primary_only(self):
        dfs = self.make_dfs()
        dfs.reset_stats()
        assert dfs.read_file("f") == bytes(range(256))
        assert dfs.failover.attempts == 0
        assert dfs.failover.reads == 0

    def test_down_machine_fails_over_without_charging_it(self):
        dfs = self.make_dfs()
        meta = dfs._files["f"]
        primary = meta.placement[0][0]
        replica = meta.placement[0][1]
        dfs.reset_stats()
        dfs.set_fault_plan(FaultPlan().crash(f"machine:{primary}",
                                             at=0))
        dfs.read_block("f", 0)
        assert dfs.failover.attempts == 1
        assert dfs.failover.reads == 1
        # The dead machine served nothing and must not be charged.
        assert dfs.stats[primary].blocks_read == 0
        assert dfs.stats[replica].blocks_read == 1

    def test_injected_read_error_still_charges_the_live_machine(self):
        dfs = self.make_dfs()
        meta = dfs._files["f"]
        primary = meta.placement[0][0]
        dfs.reset_stats()
        # rate 1.0 on the first coin only: fail primary, let the
        # replica through by dropping the rate after one read.
        plan = FaultPlan(seed=1).error_rate("dfs.read", 1.0)
        dfs.set_fault_plan(plan)
        with pytest.raises(BlockReadError):
            dfs.read_block("f", 0)
        # Every replica was attempted, and each live attempt charged
        # the machine that did the (wasted) device read.
        assert dfs.failover.attempts == 2
        assert dfs.failover.exhausted == 1
        assert dfs.stats[primary].blocks_read == 1

    def test_exhausted_replicas_raise_block_read_error(self):
        dfs = self.make_dfs()
        plan = FaultPlan()
        for m in range(4):
            plan.crash(f"machine:{m}", at=0)
        dfs.set_fault_plan(plan)
        with pytest.raises(StorageError):  # BlockReadError is one
            dfs.read_file("f")
        assert dfs.failover.exhausted >= 1

    def test_failover_counters_flow_to_registry(self):
        obs = Observability()
        dfs = SimulatedDFS(machines=4, replication=2, block_size=64,
                           obs=obs)
        dfs.write_file("f", bytes(128))
        primary = dfs._files["f"].placement[0][0]
        dfs.set_fault_plan(FaultPlan().crash(f"machine:{primary}",
                                             at=0))
        dfs.read_block("f", 0)
        reg = obs.registry
        assert reg.counter("storm.dfs.failover.attempts").value == 1
        assert reg.counter("storm.dfs.failover.reads").value == 1

    def test_cached_blocks_never_touch_a_dead_machine(self):
        dfs = SimulatedDFS(machines=4, replication=1, block_size=64,
                           cache_blocks=8)
        dfs.write_file("f", bytes(64))
        dfs.read_block("f", 0)  # warm the cache
        plan = FaultPlan()
        for m in range(4):
            plan.crash(f"machine:{m}", at=0)
        dfs.set_fault_plan(plan)
        assert dfs.read_block("f", 0) == bytes(64)  # cache hit

    def test_reset_stats_clears_failover_tallies(self):
        dfs = self.make_dfs()
        dfs.set_fault_plan(
            FaultPlan().crash("machine:0", at=0))
        dfs.read_file("f")
        assert dfs.failover.attempts >= 0
        dfs.reset_stats()
        assert dfs.failover.as_dict() == {
            "attempts": 0, "reads": 0, "exhausted": 0}


class TestPlacementStride:
    def test_stride_is_coprime_and_at_least_replication(self):
        for machines in range(1, 24):
            for replication in range(1, min(machines, 5) + 1):
                stride = SimulatedDFS._placement_stride(machines,
                                                        replication)
                if machines == 1:
                    assert stride == 1
                    continue
                import math
                assert math.gcd(stride, machines) == 1

    def test_primaries_stay_balanced(self):
        dfs = SimulatedDFS(machines=4, replication=2, block_size=64)
        for i in range(16):
            dfs.write_file(f"f{i}", bytes(64))
        primaries = [dfs._files[f"f{i}"].placement[0][0]
                     for i in range(16)]
        counts = {m: primaries.count(m) for m in range(4)}
        assert set(counts.values()) == {4}

    def test_one_crash_degrades_scattered_blocks_not_a_run(self):
        # With the old stride of 1, blocks b and b+1 shared a replica
        # window member; the coprime stride >= replication spreads the
        # windows so consecutive blocks never share any machine.
        dfs = SimulatedDFS(machines=5, replication=2, block_size=16)
        dfs.write_file("f", bytes(16 * 10))
        placement = dfs._files["f"].placement
        for a, b in zip(placement, placement[1:]):
            assert not set(a) & set(b)


class TestNetworkTimeouts:
    def test_check_raises_past_the_deadline(self):
        model = NetworkModel(latency_seconds=1e-3,
                             timeout_seconds=1.5e-3)
        assert model.check(1, 0) > 0
        with pytest.raises(NetworkTimeoutError):
            model.check(2, 0)

    def test_slow_node_multiplier_is_what_times_out(self):
        model = NetworkModel(latency_seconds=1e-3,
                             timeout_seconds=5e-3)
        cluster = SimulatedCluster(2, BOUNDS, network=model)
        cluster.set_fault_plan(FaultPlan().slow("worker:1", 10.0))
        cluster.charge_network(1, 0, node="worker:0")  # fine
        with pytest.raises(NetworkTimeoutError):
            cluster.charge_network(1, 0, node="worker:1")
        # Tallied either way: the bytes were put on the wire.
        assert cluster.network.messages == 2


class TestWorkerFaults:
    def make_cluster(self, n=2, faults=None):
        cluster = SimulatedCluster(n, BOUNDS, faults=faults)
        cluster.workers[0].load(records(40, seed=1))
        return cluster

    def test_crash_makes_gated_ops_fail_then_recover(self):
        cluster = self.make_cluster()
        w = cluster.workers[0]
        box = Rect((0, 0, 0), (100, 100, 100))
        assert w.range_count(box) == 40
        cluster.crash_worker(0)
        with pytest.raises(WorkerUnavailableError):
            w.range_count(box)
        cluster.recover_worker(0)
        assert w.range_count(box) == 40
        assert [x.worker_id for x in cluster.live_workers()] == [0, 1]

    def test_crash_loses_stream_handles(self):
        cluster = self.make_cluster()
        w = cluster.workers[0]
        box = Rect((0, 0, 0), (100, 100, 100))
        handle = w.open_stream(box, seed=3)
        assert w.fetch_batch(handle, 4)
        cluster.crash_worker(0)
        cluster.recover_worker(0)
        assert w.open_stream_count() == 0
        with pytest.raises(StreamLostError):
            w.fetch_batch(handle, 4)

    def test_plan_crash_window_drops_streams_on_observation(self):
        plan = FaultPlan().crash("worker:0", at=2)
        cluster = self.make_cluster(faults=plan)
        w = cluster.workers[0]
        box = Rect((0, 0, 0), (100, 100, 100))
        handle = w.open_stream(box, seed=3)  # tick 1
        with pytest.raises(WorkerUnavailableError):
            w.fetch_batch(handle, 4)         # tick 2: window opens
        assert w.open_stream_count() == 0

    def test_injected_error_is_transient_state_survives(self):
        plan = FaultPlan(seed=5).error_rate("worker.fetch_batch", 1.0)
        cluster = self.make_cluster(faults=plan)
        w = cluster.workers[0]
        box = Rect((0, 0, 0), (100, 100, 100))
        handle = w.open_stream(box, seed=3)
        with pytest.raises(WorkerUnavailableError):
            w.fetch_batch(handle, 4)
        plan.error_rate("worker.fetch_batch", 0.0)
        assert len(w.fetch_batch(handle, 4)) == 4  # handle survived

    def test_replica_hosting_serves_counts_and_lookups(self):
        cluster = self.make_cluster()
        shard = records(40, seed=1)
        cluster.workers[1].host_replica(0, shard)
        box = Rect((0, 0, 0), (100, 100, 100))
        assert cluster.workers[1].has_replica(0)
        assert cluster.workers[1].replica_range_count(0, box) == 40
        assert cluster.workers[1].replica_record(0, shard[0].record_id) \
            == shard[0]
        assert cluster.workers[1].replica_record(0, 10**9) is None
        with pytest.raises(ClusterError):
            cluster.workers[1].host_replica(1, shard)

    def test_replica_reads_charge_the_hosting_worker(self):
        cluster = self.make_cluster()
        host = cluster.workers[1]
        host.host_replica(0, records(40, seed=1))
        before = host.cost.snapshot()
        box = Rect((0, 0, 0), (100, 100, 100))
        host.replica_range_count(0, box)
        assert host.cost.delta_from(before).node_reads > 0


class TestWriteFaults:
    def test_validation(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(StormError):
            plan.crash_write("wal/", nth=0)
        with pytest.raises(StormError):
            plan.torn_write("wal/", keep_fraction=1.5)
        with pytest.raises(StormError):
            plan.torn_write("wal/", nth=-1)

    def test_countdown_consumes_only_first_match(self):
        plan = (FaultPlan(seed=1).crash_write("wal/", nth=2))
        assert plan.take_write_fault("store/x") is None
        assert plan.take_write_fault("wal/a") is None  # 1st of 2
        fault = plan.take_write_fault("wal/b")
        assert fault is not None and fault.keep_fraction is None
        # One-shot: the spec is consumed.
        assert plan.take_write_fault("wal/c") is None

    def test_stacked_faults_fire_in_configuration_order(self):
        plan = (FaultPlan(seed=1)
                .crash_write("wal/", nth=1)
                .torn_write("wal/", nth=1, keep_fraction=0.5))
        first = plan.take_write_fault("wal/a")
        second = plan.take_write_fault("wal/b")
        assert first.keep_fraction is None
        assert second.keep_fraction == 0.5

    def test_round_trips_through_dict(self):
        plan = (FaultPlan(seed=4)
                .crash_write("wal/", nth=3)
                .torn_write("store/", nth=1, keep_fraction=0.25))
        spec = plan.to_dict()
        assert spec["write_faults"] == [
            {"match": "wal/", "nth": 3, "keep_fraction": None},
            {"match": "store/", "nth": 1, "keep_fraction": 0.25}]
        assert FaultPlan.from_dict(spec).to_dict() == spec

    def test_crash_write_lands_no_bytes(self):
        dfs = SimulatedDFS()
        dfs.write_file("wal/seg", b"committed")
        dfs.set_fault_plan(FaultPlan(seed=1).crash_write("wal/"))
        with pytest.raises(WriteCrashError):
            dfs.write_file("wal/seg", b"committedMORE")
        assert dfs.read_file("wal/seg") == b"committed"

    def test_torn_write_keeps_a_prefix_of_new_bytes(self):
        dfs = SimulatedDFS()
        dfs.set_fault_plan(
            FaultPlan(seed=1).torn_write("f", keep_fraction=0.5))
        with pytest.raises(WriteCrashError):
            dfs.write_file("f", b"0123456789")
        assert dfs.read_file("f") == b"01234"

    def test_torn_append_never_tears_committed_bytes(self):
        """An append that tears loses only a suffix of the *new*
        bytes — everything previously committed survives."""
        dfs = SimulatedDFS()
        dfs.append_file("wal/seg", b"OLDBYTES")
        dfs.set_fault_plan(
            FaultPlan(seed=1).torn_write("wal/", keep_fraction=0.5))
        with pytest.raises(WriteCrashError):
            dfs.append_file("wal/seg", b"newnewnew")
        data = dfs.read_file("wal/seg")
        assert data.startswith(b"OLDBYTES")
        assert len(data) < len(b"OLDBYTESnewnewnew")

    def test_rename_is_not_fault_gated(self):
        dfs = SimulatedDFS()
        dfs.write_file("store/a.tmp", b"new")
        dfs.set_fault_plan(FaultPlan(seed=1).crash_write("store/"))
        dfs.rename_file("store/a.tmp", "store/a")  # must not raise
        assert dfs.read_file("store/a") == b"new"

    def test_write_crash_counter_flows_to_registry(self):
        obs = Observability()
        dfs = SimulatedDFS(obs=obs)
        dfs.set_fault_plan(FaultPlan(seed=1).crash_write("wal/"))
        with pytest.raises(WriteCrashError):
            dfs.write_file("wal/seg", b"x")
        registry = obs.registry
        assert registry.counter("storm.dfs.write_crashes").value == 1

    def test_write_crash_error_is_both_hierarchies(self):
        assert issubclass(WriteCrashError, FaultError)
        assert issubclass(WriteCrashError, StorageError)
