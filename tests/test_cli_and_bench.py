"""Tests for the storm-query CLI and the bench harness module."""

import pytest

from repro.bench.harness import (Fig3aRunner, Fig3bRunner,
                                 build_osm_dataset, fig3a_query)
from repro.cli import build_engine, main
from repro.errors import StormError


class TestCLI:
    def test_build_engine_defaults(self):
        engine = build_engine(["osm"], n=500, seed=1)
        assert len(engine.dataset("osm")) == 500

    def test_build_engine_unknown_dataset(self):
        with pytest.raises(StormError):
            build_engine(["mystery"], n=10, seed=1)

    def test_one_shot_query(self, capsys):
        rc = main(["--dataset", "osm", "--n", "800", "--query",
                   "ESTIMATE COUNT FROM osm "
                   "WHERE REGION(-125, 25, -65, 50)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "value=800" in out

    def test_one_shot_bad_query(self, capsys):
        rc = main(["--dataset", "osm", "--n", "200", "--query",
                   "SELECT * FROM osm"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_query(self, capsys):
        rc = main(["--n", "500", "--query",
                   "EXPLAIN ESTIMATE AVG(altitude) FROM osm "
                   "WHERE REGION(-110, 30, -90, 45)"])
        assert rc == 0
        assert "chosen" in capsys.readouterr().out

    def test_multiple_datasets(self):
        engine = build_engine(["osm", "electricity"], n=600, seed=2)
        assert set(engine.datasets) == {"osm", "electricity"}

    def test_repl_loop(self, capsys, monkeypatch):
        lines = iter([
            "",                                     # blank: ignored
            "ESTIMATE COUNT FROM osm "
            "WHERE REGION(-125, 25, -65, 50)",
            "NOT A QUERY",                          # error, keeps going
            "quit",
        ])
        monkeypatch.setattr("builtins.input",
                            lambda prompt="": next(lines))
        rc = main(["--dataset", "osm", "--n", "300"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "value=300" in captured.out
        assert "error:" in captured.err

    def test_repl_eof_exits(self, capsys, monkeypatch):
        def raise_eof(prompt=""):
            raise EOFError
        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["--dataset", "osm", "--n", "100"]) == 0


class TestBenchHarness:
    @pytest.fixture(scope="class")
    def substrate(self):
        return build_osm_dataset(n=4000, seed=17)

    def test_fig3a_runner_rows(self, substrate):
        dataset, workload = substrate
        runner = Fig3aRunner(dataset, workload,
                             fractions=(0.01, 0.05),
                             methods=("rs-tree", "query-first"))
        result = runner.run()
        assert len(result.rows) == 4
        assert set(result.series) == {"rs-tree", "query-first"}
        table = result.table()
        assert "rs-tree" in table and "k/q" in table
        chart = result.chart(log_y=True)
        assert "log10" in chart

    def test_fig3a_run_one_draws_k(self, substrate):
        dataset, workload = substrate
        runner = Fig3aRunner(dataset, workload)
        wall, simulated, reads = runner.run_one("ls-tree", 50)
        assert wall > 0 and simulated > 0 and reads > 0

    def test_fig3b_runner(self, substrate):
        dataset, workload = substrate
        runner = Fig3bRunner(dataset, workload, max_samples=512)
        result = runner.run()
        assert set(result.series) == {"rs-tree", "ls-tree"}
        for method, points in result.series.items():
            assert len(points) >= 8
            errors = [err for _, err in points]
            half = len(errors) // 2
            # Error trends down: the late half averages below the early
            # half (individual reports are noisy by construction).
            assert sum(errors[half:]) / (len(errors) - half) \
                <= sum(errors[:half]) / half

    def test_fig3a_query_selectivity(self, substrate):
        dataset, workload = substrate
        rect = fig3a_query(workload, selectivity=0.4).to_rect(2)
        q = dataset.tree.range_count(rect)
        assert 0.1 * len(dataset) < q < 0.9 * len(dataset)

    def test_figures_cli(self, capsys):
        from repro.bench.figures import main as bench_main
        rc = bench_main(["fig3a", "--n", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out
        assert "ls-tree" in out

    def test_buffer_ablation_runner(self, substrate):
        from repro.bench.harness import BufferAblationRunner
        dataset, workload = substrate
        result = BufferAblationRunner(dataset, workload,
                                      sizes=(8, 64), k=128).run()
        assert len(result.rows) == 2
        reads = {row[0]: row[1] for row in result.rows}
        assert reads[64] <= reads[8]

    def test_scaling_runner(self, substrate):
        from repro.bench.harness import ScalingRunner
        dataset, workload = substrate
        result = ScalingRunner(dataset, workload, workers=(1, 4),
                               k=128).run()
        times = {row[0]: row[1] for row in result.rows}
        assert times[4] < times[1]

    def test_bench_cli_all_subcommands(self, capsys):
        from repro.bench.figures import main as bench_main
        rc = bench_main(["buffer", "--n", "2000"])
        assert rc == 0
        assert "buffer ablation" in capsys.readouterr().out
        rc = bench_main(["scaling", "--n", "2000"])
        assert rc == 0
        assert "scaling" in capsys.readouterr().out


class TestRecoverCLI:
    def make_store(self, tmp_path, with_unflushed_batch=True):
        """A persisted store at a real root, crashed pre-flush."""
        import random

        from repro.core.engine import StormEngine
        from repro.core.records import Record
        from repro.storage.dfs import SimulatedDFS
        from repro.storage.document_store import DocumentStore
        from repro.storage.persistence import (DATASET_PREFIX,
                                               save_engine)
        from repro.storage.wal import WriteAheadLog
        from repro.updates.manager import UpdateBatch, UpdateManager

        root = str(tmp_path / "dfs")
        rng = random.Random(3)
        records = [Record(i, lon=rng.uniform(0, 100),
                          lat=rng.uniform(0, 100),
                          t=rng.uniform(0, 100),
                          attrs={"v": 1.0})
                   for i in range(150)]
        dfs = SimulatedDFS(root=root)
        store = DocumentStore(dfs)
        wal = WriteAheadLog(dfs)
        engine = StormEngine(seed=5)
        engine.create_dataset("alpha", records, build_ls=False)
        save_engine(engine, store, wal=wal)
        if with_unflushed_batch:
            manager = UpdateManager(
                engine.dataset("alpha"), store=store,
                collection=DATASET_PREFIX + "alpha", wal=wal)
            manager.apply(UpdateBatch(deletes=[0], inserts=[
                Record(9_000, lon=1.0, lat=1.0, attrs={"v": 2.0})]))
            # No flush: the batch is committed only in the WAL.
        return root

    def test_recover_subcommand_replays_and_reports(self, tmp_path,
                                                    capsys):
        root = self.make_store(tmp_path)
        assert main(["recover", "--store-root", root]) == 0
        out = capsys.readouterr().out
        assert "recovery:" in out
        assert "batches replayed   1" in out
        # Recovery checkpointed: a second run has nothing to do.
        assert main(["recover", "--store-root", root]) == 0
        out = capsys.readouterr().out
        assert "batches replayed   0" in out

    def test_recover_no_checkpoint_leaves_work(self, tmp_path,
                                               capsys):
        root = self.make_store(tmp_path)
        rc = main(["recover", "--store-root", root,
                   "--no-checkpoint"])
        assert rc == 0
        assert "batches replayed   1" in capsys.readouterr().out
        main(["recover", "--store-root", root, "--no-checkpoint"])
        assert "batches replayed   1" in capsys.readouterr().out

    def test_store_root_load_recovers_then_queries(self, tmp_path,
                                                   capsys):
        root = self.make_store(tmp_path)
        rc = main(["--store-root", root, "--query",
                   "ESTIMATE COUNT FROM alpha "
                   "WHERE REGION(0, 0, 100, 100)"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "recovery:" in captured.err
        assert "150" in captured.out  # -1 delete +1 insert

    def test_store_root_no_wal_skips_recovery(self, tmp_path,
                                              capsys):
        root = self.make_store(tmp_path)
        rc = main(["--store-root", root, "--no-wal", "--query",
                   "ESTIMATE COUNT FROM alpha "
                   "WHERE REGION(0, 0, 100, 100)"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "recovery:" not in captured.err

    def test_store_root_and_dataset_are_exclusive(self, tmp_path,
                                                  capsys):
        rc = main(["--store-root", str(tmp_path), "--dataset", "osm"])
        assert rc == 1
        assert "exclusive" in capsys.readouterr().err


class TestRecoveryBench:
    def test_recovery_chaos_smoke(self, tmp_path, capsys):
        import json

        from repro.bench import recovery as bench
        out = tmp_path / "BENCH_recovery.json"
        assert bench.main([str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert {s["scenario"] for s in report["scenarios"]} == {
            "pre-wal-append", "post-append-pre-flush",
            "mid-checkpoint", "torn-final-segment"}
        for scenario in report["scenarios"]:
            assert scenario["state_matches"] is True
        assert report["replay"]["ops_per_second"] > 0
