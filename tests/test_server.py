"""Multi-tenant query service tests.

Covers the PR's acceptance criteria end to end: N concurrent tenants
each receive monotone progressive results whose final estimates match
single-user execution exactly (same seed, same snapshot); streams are
isolated from concurrent ingest; per-tenant quotas and global
admission control reject with 429 (+ Retry-After); graceful shutdown
drains in-flight streams; and — the uniformity claim — a stream
scheduled in quanta among other streams is sample-identical in
distribution to the same stream run alone (chi-square,
``@pytest.mark.stat``).

The HTTP layer is tested over real sockets (ephemeral ports), and the
docs↔routes consistency test fails when ``docs/service.md`` and
:data:`repro.server.http.ROUTES` drift apart.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import random
import threading
import time
import urllib.error
import urllib.request

import pytest
from scipy import stats

from repro.core.engine import Dataset, StormEngine
from repro.core.estimators.base import Estimate
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.session import ProgressPoint
from repro.faults import FaultPlan
from repro.index.cost import CostCounter
from repro.server import (FairScheduler, QueryService, ServerConfig,
                          StormServer, StreamTask, TenantQuota)
from repro.server.http import ROUTES, match_route
from repro.server.protocol import ApiError
from repro.storage.lsm import LSMTree

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"

AVG_Q = ("ESTIMATE AVG(v) FROM pts "
         "WHERE REGION(5, 5, 95, 95) SAMPLES 1200")


def make_records(n, seed=5, start_id=0):
    rng = random.Random(seed)
    return [Record(record_id=start_id + i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10, 2)})
            for i in range(n)]


def make_engine(n=3000, seed=1, lsm=False):
    engine = StormEngine(seed=seed)
    dataset = engine.create_dataset("pts", make_records(n),
                                    dims=2, build_ls=False)
    if lsm:
        dataset.attach_lsm(LSMTree(dataset, memtable_limit=64,
                                   compact_after_runs=999))
    return engine


def true_mean(engine, lo=5.0, hi=95.0):
    dataset = engine.datasets["pts"]
    rect = Rect((lo, lo), (hi, hi))
    vals = [r.attrs["v"] for r in dataset.records.values()
            if rect.contains_point(r.key(2))]
    return sum(vals) / len(vals)


def final_estimate(frames):
    last = frames[-1]
    assert last["frame"] == "end", last
    return last["estimate"]["value"]


# -- routing ------------------------------------------------------------


class TestRouting:
    def test_exact_match(self):
        assert match_route("GET", "/health") == ("/health", {})
        assert match_route("POST", "/v1/query") == ("/v1/query", {})

    def test_params_extracted(self):
        template, params = match_route(
            "GET", "/v1/sessions/s-3/streams/q-9")
        assert template == "/v1/sessions/{session}/streams/{stream}"
        assert params == {"session": "s-3", "stream": "q-9"}

    def test_method_mismatch_is_405(self):
        assert match_route("DELETE", "/v1/query")[0] == "405"

    def test_unknown_path_is_none(self):
        assert match_route("GET", "/v1/nope") is None

    def test_routes_unique(self):
        pairs = [(m, t) for m, t, _ in ROUTES]
        assert len(pairs) == len(set(pairs))


# -- docs <-> routes consistency ----------------------------------------


def test_every_route_documented():
    """docs/service.md documents exactly the shipped API surface."""
    text = (DOCS / "service.md").read_text()
    for method, template, _ in ROUTES:
        assert f"`{method} {template}`" in text, (
            f"{method} {template} is served but not documented in "
            f"docs/service.md")


def test_no_phantom_routes_documented():
    """Endpoints documented as code spans must actually be served."""
    import re
    text = (DOCS / "service.md").read_text()
    served = {(m, t) for m, t, _ in ROUTES}
    for method, template in re.findall(
            r"`(GET|POST|DELETE|PUT|PATCH) (/[^`]*)`", text):
        assert (method, template) in served, (
            f"docs/service.md documents {method} {template} "
            f"but the server does not route it")


# -- concurrent tenants -------------------------------------------------


class TestConcurrentTenants:
    def test_eight_tenants_progressive_monotone(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(
            max_streams=8, quantum=64))
        truth = true_mean(engine)
        try:
            tasks = [svc.submit_stream(f"tenant-{i}", {
                "query": AVG_Q, "seed": 9000 + i})
                for i in range(8)]
            for task in tasks:
                frames = task.drain_frames(timeout=60)
                progress = [f["k"] for f in frames
                            if f["frame"] == "progress"]
                # Strictly tightening progress; the terminal frame
                # repeats the last snapshot's k.
                assert progress == sorted(set(progress))
                assert frames[-1]["frame"] == "end"
                assert frames[-1]["k"] == progress[-1]
                est = frames[-1]["estimate"]
                half = (est["interval"]["hi"]
                        - est["interval"]["lo"]) / 2
                assert abs(est["value"] - truth) < max(4 * half, 0.5)
        finally:
            svc.shutdown()

    def test_scheduled_matches_single_user_exactly(self):
        """Same seed, same snapshot: contention changes *when* a
        stream draws, never *what* — final estimates are identical."""
        quantum = 48
        solo_engine = make_engine()
        solo = QueryService(solo_engine, ServerConfig(
            max_streams=8, quantum=quantum))
        try:
            baseline = final_estimate(solo.submit_stream(
                "only", {"query": AVG_Q, "seed": 777}
            ).drain_frames(timeout=60))
        finally:
            solo.shutdown()

        busy_engine = make_engine()
        busy = QueryService(busy_engine, ServerConfig(
            max_streams=8, quantum=quantum))
        try:
            noise = [busy.submit_stream(f"noise-{i}", {
                "query": AVG_Q, "seed": 100 + i}) for i in range(6)]
            probe = busy.submit_stream(
                "probe", {"query": AVG_Q, "seed": 777})
            contended = final_estimate(
                probe.drain_frames(timeout=60))
            for task in noise:
                task.drain_frames(timeout=60)
        finally:
            busy.shutdown()
        assert contended == pytest.approx(baseline, abs=0.0)


# -- snapshot isolation under ingest ------------------------------------


class TestIngestIsolation:
    def test_stream_isolated_from_concurrent_inserts(self):
        """A stream's pinned snapshot hides every record ingested
        after its first quantum: the final estimate is identical to
        the same-seed run with no ingest at all."""
        quiet_engine = make_engine(lsm=True)
        quiet = QueryService(quiet_engine, ServerConfig(quantum=32))
        try:
            baseline = final_estimate(quiet.submit_stream(
                "t", {"query": AVG_Q, "seed": 4242}
            ).drain_frames(timeout=60))
        finally:
            quiet.shutdown()

        noisy_engine = make_engine(lsm=True)
        dataset = noisy_engine.datasets["pts"]
        noisy = QueryService(noisy_engine, ServerConfig(quantum=32))
        try:
            task = noisy.submit_stream(
                "t", {"query": AVG_Q, "seed": 4242})
            first = task.pop(timeout=30)  # snapshot now pinned
            assert first is not None
            # Skew hard: +1000 everywhere the query looks.
            for rec in make_records(400, seed=99, start_id=50_000):
                rec.attrs["v"] += 1000.0
                dataset.insert(rec)
            frames = [first] + task.drain_frames(timeout=60)
            assert final_estimate(frames) == pytest.approx(
                baseline, abs=0.0)
        finally:
            noisy.shutdown()


# -- quotas, admission, backpressure ------------------------------------


class TestAdmission:
    def test_over_quota_rejected(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(
            max_streams=2, queue_depth=4, quantum=16,
            stream_buffer=2,
            quotas={"bob": TenantQuota(max_concurrent_streams=1)}))
        try:
            held = svc.submit_stream("bob", {"query": AVG_Q})
            with pytest.raises(ApiError) as err:
                svc.submit_stream("bob", {"query": AVG_Q})
            assert err.value.status == 429
            assert err.value.code == "over_quota"
            held.drain_frames(timeout=60)
            # The slot freed: bob may submit again.
            svc.submit_stream("bob", {"query": AVG_Q}
                              ).drain_frames(timeout=60)
        finally:
            svc.shutdown()

    def test_saturation_is_429_with_retry_after(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(
            max_streams=2, queue_depth=1, quantum=16,
            stream_buffer=2))
        try:
            tasks = [svc.submit_stream(f"t{i}", {"query": AVG_Q})
                     for i in range(3)]  # 2 active + 1 queued = full
            with pytest.raises(ApiError) as err:
                svc.submit_stream("late", {"query": AVG_Q})
            assert err.value.status == 429
            assert err.value.code == "saturated"
            assert err.value.retry_after >= 1
            for task in tasks:
                task.drain_frames(timeout=60)
        finally:
            svc.shutdown()

    def test_sample_budget_capped_by_quota(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(
            quantum=32,
            quotas={"small": TenantQuota(max_samples=100)}))
        try:
            frames = svc.submit_stream(
                "small", {"query": AVG_Q}).drain_frames(timeout=60)
            # AVG_Q asks for 1200 samples; the quota caps it at 100
            # (stop conditions fire on report boundaries).
            assert frames[-1]["k"] <= 100 + 32
        finally:
            svc.shutdown()

    def test_backpressure_parks_unread_stream(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(
            max_streams=2, quantum=16, stream_buffer=2))
        try:
            slow = svc.submit_stream("slow", {"query": AVG_Q})
            fast = svc.submit_stream("fast", {"query": AVG_Q})
            fast.drain_frames(timeout=60)  # unblocked neighbour ends
            assert slow.pending() <= 2  # parked at the buffer bound
            assert not slow.terminal
            frames = slow.drain_frames(timeout=60)
            assert frames[-1]["frame"] == "end"
        finally:
            svc.shutdown()


# -- shutdown -----------------------------------------------------------


class TestShutdown:
    def test_graceful_drain_finishes_streams(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(
            quantum=64, drain_seconds=30.0))
        tasks = [svc.submit_stream(f"t{i}", {
            "query": AVG_Q, "seed": i}) for i in range(4)]
        consumed = {}
        threads = [threading.Thread(
            target=lambda t=t: consumed.setdefault(
                t.task_id, t.drain_frames(timeout=60)))
            for t in tasks]
        for thread in threads:
            thread.start()
        assert svc.shutdown(drain=True) is True
        for thread in threads:
            thread.join(timeout=30)
        for task in tasks:
            assert consumed[task.task_id][-1]["frame"] == "end"

    def test_draining_rejects_new_work_503(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(quantum=32))
        svc.draining = True  # what shutdown(drain=True) sets first
        with pytest.raises(ApiError) as err:
            svc.submit_stream("t", {"query": AVG_Q})
        assert err.value.status == 503
        assert err.value.code == "shutting_down"
        svc.shutdown(drain=False)

    def test_hard_stop_cancels_with_terminal_frame(self):
        engine = make_engine()
        svc = QueryService(engine, ServerConfig(quantum=16))
        task = svc.submit_stream(
            "t", {"query": AVG_Q.replace("1200", "200000")})
        assert task.pop(timeout=30) is not None
        svc.shutdown(drain=False)
        frames = task.drain_frames(timeout=10)
        assert frames[-1]["frame"] == "end"
        assert "shutdown" in frames[-1]["reason"]


# -- fault injection ----------------------------------------------------


class TestFaults:
    def test_injected_quantum_fault_becomes_error_frame(self):
        engine = make_engine()
        faults = FaultPlan(seed=3).error_rate("server.quantum", 1.0)
        svc = QueryService(engine, ServerConfig(quantum=16),
                           faults=faults)
        try:
            frames = svc.submit_stream(
                "t", {"query": AVG_Q}).drain_frames(timeout=30)
            assert frames[-1]["frame"] == "error"
            assert "server.quantum" in frames[-1]["message"]
        finally:
            svc.shutdown(drain=False)

    def test_one_tenants_fault_does_not_kill_neighbours(self):
        engine = make_engine()
        faults = FaultPlan(seed=3).error_rate("server.quantum", 0.2)
        svc = QueryService(engine, ServerConfig(quantum=32),
                           faults=faults)
        try:
            tasks = [svc.submit_stream(f"t{i}", {"query": AVG_Q})
                     for i in range(4)]
            outcomes = {t.drain_frames(timeout=60)[-1]["frame"]
                        for t in tasks}
            # With a 20% coin some streams die and the scheduler
            # keeps driving the others to their own terminal frame.
            assert outcomes <= {"end", "error"}
            assert all(t.terminal for t in tasks)
        finally:
            svc.shutdown(drain=False)


# -- scheduling does not bias sampling (chi-square) ---------------------


def _recording_task(dataset, rect, seed, draws, quantum, counts,
                    lock):
    """A stream over the real sampler that tallies drawn ids."""
    def gen():
        rng = random.Random(seed)
        stream = dataset.samplers["rs-tree"].sample_stream(rect, rng)
        est = Estimate(value=0.0, std_error=None, interval=None,
                       k=0, q=None)
        k = 0
        while k < draws:
            batch = list(itertools.islice(stream, quantum))
            if not batch:
                break
            with lock:
                for entry in batch:
                    counts[entry.item_id] = counts.get(
                        entry.item_id, 0) + 1
            k += len(batch)
            yield ProgressPoint(k=k, elapsed=0.0, estimate=est,
                                cost=CostCounter(),
                                done=k >= draws)
    return StreamTask(f"tenant-{seed % 7}", gen)


@pytest.mark.stat
def test_scheduled_draws_stay_uniform():
    """Chi-square: ids drawn by streams interleaved under the fair
    scheduler are uniform over P ∩ Q, exactly as when run alone
    (scheduling changes *when* a stream draws, never *what*)."""
    dataset = Dataset("pts", make_records(400, seed=21), dims=2,
                      build_ls=False, seed=21)
    rect = Rect((10.0, 10.0), (90.0, 90.0))
    in_range = {rid for rid, r in dataset.records.items()
                if rect.contains_point(r.key(2))}
    assert len(in_range) > 150
    counts: dict[int, int] = {}
    lock = threading.Lock()
    scheduler = FairScheduler(max_concurrent=8).start()
    draws, streams = 30, 40
    try:
        tasks = [_recording_task(dataset, rect, 5000 + i, draws, 10,
                                 counts, lock)
                 for i in range(streams)]
        for task in tasks:
            scheduler.submit(task)
        assert scheduler.wait_idle(timeout=120)
    finally:
        scheduler.stop()
    total = sum(counts.values())
    assert total == draws * streams
    expected = total / len(in_range)
    chi2 = sum((counts.get(rid, 0) - expected) ** 2 / expected
               for rid in in_range)
    pvalue = stats.chi2.sf(chi2, df=len(in_range) - 1)
    assert pvalue > 0.001


# -- weighted fairness --------------------------------------------------


def test_weighted_tenant_gets_proportional_quanta():
    """Under saturation a weight-2 stream earns ~2x the quanta of a
    weight-1 stream over the contended window."""
    def endless():
        def gen():
            est = Estimate(value=0.0, std_error=None, interval=None,
                           k=0, q=None)
            for k in itertools.count(1):
                yield ProgressPoint(k=k, elapsed=0.0, estimate=est,
                                    cost=CostCounter(), done=False)
        return gen

    scheduler = FairScheduler(max_concurrent=2).start()
    # detached: frames are retained, never backpressure-parked, so
    # the only thing shaping quanta is the deficit round-robin.
    heavy = StreamTask("heavy", endless(), weight=2.0,
                       detached=True)
    light = StreamTask("light", endless(), weight=1.0,
                       detached=True)
    try:
        scheduler.submit(heavy)
        scheduler.submit(light)
        deadline = time.monotonic() + 20
        while (light.quanta < 200
               and time.monotonic() < deadline):
            time.sleep(0.02)
        ratio = heavy.quanta / max(1, light.quanta)
        assert 1.4 < ratio < 2.6, (heavy.quanta, light.quanta)
    finally:
        heavy.cancel()
        light.cancel()
        scheduler.stop()


# -- HTTP layer over real sockets ---------------------------------------


@pytest.fixture(scope="module")
def server():
    engine = make_engine()
    config = ServerConfig(
        max_streams=8, quantum=64,
        tokens={"tok-a": "alice", "tok-b": "bob"},
        quotas={"bob": TenantQuota(max_concurrent_streams=1,
                                   max_samples=500)})
    service = QueryService(engine, config)
    with StormServer(service) as srv:
        yield srv


def _call(server, method, path, body=None, token="tok-a",
          raw=False):
    req = urllib.request.Request(
        server.url + path, method=method,
        data=json.dumps(body).encode() if body is not None else None)
    if token:
        req.add_header("Authorization", f"Bearer {token}")
    if body is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=60) as resp:
        payload = resp.read()
        if raw:
            return resp.status, payload, dict(resp.headers)
        return resp.status, json.loads(payload)


def _call_error(server, method, path, body=None, token="tok-a"):
    try:
        _call(server, method, path, body, token)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)
    raise AssertionError("expected an HTTP error")


class TestHTTP:
    def test_health_needs_no_token(self, server):
        status, doc = _call(server, "GET", "/health", token=None)
        assert status == 200 and doc["status"] == "ok"
        assert doc["streams"]["max_streams"] == 8

    def test_missing_token_is_401(self, server):
        code, doc, _ = _call_error(server, "GET", "/v1/datasets",
                                   token=None)
        assert code == 401
        assert doc["error"]["code"] == "unauthorized"

    def test_bad_token_is_401(self, server):
        code, doc, _ = _call_error(server, "GET", "/v1/datasets",
                                   token="nope")
        assert code == 401

    def test_unknown_route_is_404(self, server):
        code, doc, _ = _call_error(server, "GET", "/v1/nope")
        assert code == 404
        assert doc["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, server):
        code, doc, _ = _call_error(server, "DELETE", "/v1/query")
        assert code == 405

    def test_datasets_doc(self, server):
        status, doc = _call(server, "GET", "/v1/datasets")
        assert doc["datasets"]["pts"]["records"] == 3000

    def test_one_shot_query(self, server):
        status, doc = _call(server, "POST", "/v1/query", {
            "query": "ESTIMATE COUNT FROM pts "
                     "WHERE REGION(5, 5, 95, 95)"})
        assert status == 200
        assert doc["result"]["frame"] == "end"
        assert doc["result"]["estimate"]["exact"] is True

    def test_explain_runs_inline(self, server):
        status, doc = _call(server, "POST", "/v1/query", {
            "query": "EXPLAIN " + AVG_Q})
        assert status == 200 and "explain" in doc

    def test_bad_query_is_400(self, server):
        code, doc, _ = _call_error(server, "POST", "/v1/query",
                                   {"query": "SELECT nope"})
        assert code == 400
        assert doc["error"]["code"] == "bad_request"

    def test_unknown_dataset_is_404(self, server):
        code, doc, _ = _call_error(
            server, "POST", "/v1/query",
            {"query": "ESTIMATE COUNT FROM ghosts "
                      "WHERE REGION(0, 0, 1, 1)"})
        assert code == 404

    def test_streaming_ndjson(self, server):
        req = urllib.request.Request(
            server.url + "/v1/stream", method="POST",
            data=json.dumps({"query": AVG_Q, "seed": 7}).encode())
        req.add_header("Authorization", "Bearer tok-a")
        with urllib.request.urlopen(req, timeout=60) as resp:
            assert resp.status == 200
            ctype = resp.headers["Content-Type"]
            assert ctype == "application/x-ndjson"
            assert resp.headers["X-Storm-Stream"].startswith("q-")
            frames = [json.loads(line)
                      for line in resp.read().splitlines()]
        ks = [f["k"] for f in frames]
        assert ks == sorted(ks)
        assert frames[-1]["frame"] == "end"
        assert [f["frame"] for f in frames[:-1]] == \
            ["progress"] * (len(frames) - 1)

    def test_session_lifecycle_and_detached_resume(self, server):
        status, doc = _call(server, "POST", "/v1/sessions",
                            {"name": "analysis"})
        assert status == 201
        sid = doc["session"]
        status, doc = _call(
            server, "POST", f"/v1/sessions/{sid}/streams",
            {"query": AVG_Q, "seed": 11})
        assert status == 202
        stream = doc["stream"]
        deadline = time.monotonic() + 60
        seen: list[dict] = []
        cursor = 0
        while time.monotonic() < deadline:
            status, doc = _call(
                server, "GET",
                f"/v1/sessions/{sid}/streams/{stream}"
                f"?from={cursor}")
            seen.extend(doc["frames"])
            cursor = doc["next"]
            if doc["state"] in ("done", "error", "cancelled"):
                break
            time.sleep(0.05)
        assert seen and seen[-1]["frame"] == "end"
        ks = [f["k"] for f in seen]
        assert ks == sorted(ks)
        # Resume from scratch replays the retained frames.
        status, doc = _call(
            server, "GET",
            f"/v1/sessions/{sid}/streams/{stream}?from=0")
        assert doc["frames"] == seen
        status, doc = _call(server, "GET", "/v1/sessions")
        assert sid in [s["session"] for s in doc["sessions"]]
        status, doc = _call(server, "DELETE",
                            f"/v1/sessions/{sid}")
        assert doc == {"closed": sid}

    def test_sessions_do_not_leak_across_tenants(self, server):
        status, doc = _call(server, "POST", "/v1/sessions",
                            {"name": "private"}, token="tok-a")
        sid = doc["session"]
        code, doc, _ = _call_error(
            server, "GET", f"/v1/sessions/{sid}", token="tok-b")
        assert code == 404  # indistinguishable from missing
        status, doc = _call(server, "GET", "/v1/sessions",
                            token="tok-b")
        assert sid not in [s["session"] for s in doc["sessions"]]
        _call(server, "DELETE", f"/v1/sessions/{sid}")

    def test_metrics_have_tenant_labels(self, server):
        _call(server, "POST", "/v1/query", {
            "query": AVG_Q, "seed": 3})
        status, payload, headers = _call(
            server, "GET", "/metrics", token=None, raw=True)
        text = payload.decode()
        assert "storm_server_quanta_total" in text
        assert 'tenant="alice"' in text
        assert "storm_server_latency_seconds" in text
        status, doc = _call(server, "GET", "/metrics.json",
                            token=None)
        keys = list(doc["snapshot"]["counters"])
        assert any(k.startswith("storm.server.requests")
                   for k in keys)

    def test_streaming_quota_cap_applies(self, server):
        status, doc = _call(server, "POST", "/v1/query", {
            "query": AVG_Q, "seed": 5}, token="tok-b")
        # bob's quota caps the 1200-sample ask at 500 (stop
        # conditions fire on quantum boundaries).
        assert doc["result"]["k"] <= 500 + 64
