"""Integration tests for the update manager.

The paper's update demo contract: after ad-hoc updates, "a correct set of
online spatio-temporal samples can always be returned with respect to the
latest records in a data set."
"""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.records import Record, STRange
from repro.errors import UpdateError
from repro.storage.document_store import DocumentStore
from repro.updates.manager import UpdateBatch, UpdateManager


def make_records(n, seed=61, start_id=0):
    rng = random.Random(seed)
    return [Record(record_id=start_id + i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10, 2)})
            for i in range(n)]


@pytest.fixture()
def dataset():
    return Dataset("live", make_records(800), rs_buffer_size=16)


EVERYTHING = STRange(0, 0, 100, 100)


class TestBatchValidation:
    def test_duplicate_insert_ids(self, dataset):
        batch = UpdateBatch(inserts=[Record(9_000, 1, 1),
                                     Record(9_000, 2, 2)])
        with pytest.raises(UpdateError):
            UpdateManager(dataset).apply(batch)

    def test_existing_insert_id(self, dataset):
        batch = UpdateBatch(inserts=[Record(0, 1, 1)])
        with pytest.raises(UpdateError):
            UpdateManager(dataset).apply(batch)

    def test_missing_delete_id(self, dataset):
        with pytest.raises(UpdateError):
            UpdateManager(dataset).apply(UpdateBatch(deletes=[999_999]))

    def test_replace_same_id_allowed(self, dataset):
        """delete+insert of the same id in one batch is a replace."""
        manager = UpdateManager(dataset)
        result = manager.apply(UpdateBatch(
            inserts=[Record(0, lon=55.0, lat=55.0, attrs={"v": 1.0})],
            deletes=[0]))
        assert result.inserted == 1 and result.deleted == 1
        assert dataset.lookup(0).lon == 55.0

    def test_validation_happens_before_mutation(self, dataset):
        size = len(dataset)
        batch = UpdateBatch(inserts=[Record(9_000, 1, 1)],
                            deletes=[999_999])
        with pytest.raises(UpdateError):
            UpdateManager(dataset).apply(batch)
        assert len(dataset) == size
        assert 9_000 not in dataset.records


class TestApply:
    def test_counts_and_stats(self, dataset):
        manager = UpdateManager(dataset)
        result = manager.apply(UpdateBatch(
            inserts=make_records(50, seed=62, start_id=10_000),
            deletes=list(range(25))))
        assert result.inserted == 50
        assert result.deleted == 25
        assert manager.total_inserted == 50
        assert manager.total_deleted == 25
        assert result.throughput() > 0

    def test_samples_reflect_latest_state(self, dataset):
        """The paper's core update requirement, end to end."""
        manager = UpdateManager(dataset)
        inserts = make_records(100, seed=63, start_id=10_000)
        manager.apply(UpdateBatch(inserts=inserts,
                                  deletes=list(range(50))))
        rng = random.Random(64)
        sampler = dataset.samplers["rs-tree"]
        emitted = {e.item_id for e in
                   sampler.sample_stream(EVERYTHING.to_rect(3), rng)}
        expected = set(dataset.records)
        assert emitted == expected
        # LS-tree agrees too.
        emitted_ls = {e.item_id for e in
                      dataset.samplers["ls-tree"].sample_stream(
                          EVERYTHING.to_rect(3), rng)}
        assert emitted_ls == expected

    def test_insert_stream_batches(self, dataset):
        manager = UpdateManager(dataset)
        results = manager.insert_stream(
            make_records(500, seed=65, start_id=20_000), batch_size=128)
        assert [r.inserted for r in results] == [128, 128, 128, 116]
        assert len(dataset) == 1300

    def test_insert_stream_bad_batch_size(self, dataset):
        with pytest.raises(UpdateError):
            UpdateManager(dataset).insert_stream([], batch_size=0)

    def test_store_kept_in_sync(self, dataset):
        store = DocumentStore()
        coll = store.collection("live")
        coll.insert_many(r.to_document() for r in
                         dataset.records.values())
        manager = UpdateManager(dataset, store=store, collection="live")
        manager.apply(UpdateBatch(
            inserts=make_records(10, seed=66, start_id=30_000),
            deletes=[1, 2, 3]))
        assert coll.count() == len(dataset)
        assert coll.find_one({"_id": 1}) is None
        assert coll.find_one({"_id": 30_000}) is not None
        manager.flush()  # persists without error

    def test_store_requires_collection(self, dataset):
        with pytest.raises(UpdateError):
            UpdateManager(dataset, store=DocumentStore())

    def test_auto_rebuild_triggers_and_stays_correct(self, dataset):
        manager = UpdateManager(dataset, rebuild_churn_fraction=0.2)
        inserts = make_records(200, seed=68, start_id=50_000)
        manager.apply(UpdateBatch(inserts=inserts))
        assert manager.rebuilds == 1
        dataset.tree.validate()
        rng = random.Random(69)
        got = {e.item_id for e in
               dataset.samplers["rs-tree"].sample_stream(
                   EVERYTHING.to_rect(3), rng)}
        assert got == set(dataset.records)

    def test_rebuild_restores_packing(self, dataset):
        """After heavy churn, a rebuild shrinks the node count back to
        bulk-load quality."""
        manager = UpdateManager(dataset)
        manager.apply(UpdateBatch(
            inserts=make_records(800, seed=70, start_id=60_000)))
        degraded = dataset.tree.node_count()
        dataset.rebuild()
        rebuilt = dataset.tree.node_count()
        assert rebuilt <= degraded
        dataset.tree.validate()

    def test_rebuild_fraction_validated(self, dataset):
        with pytest.raises(UpdateError):
            UpdateManager(dataset, rebuild_churn_fraction=0.0)

    def test_recent_window_query_sees_new_data(self, dataset):
        """The demo: narrow the time range to the most recent history
        and see freshly inserted records."""
        manager = UpdateManager(dataset)
        fresh = [Record(record_id=40_000 + i, lon=50.0, lat=50.0,
                        t=2_000.0 + i, attrs={"v": 99.0})
                 for i in range(20)]
        manager.apply(UpdateBatch(inserts=fresh))
        recent = STRange(0, 0, 100, 100, 2_000.0, 3_000.0)
        q = dataset.tree.range_count(recent.to_rect(3))
        assert q == 20
        rng = random.Random(67)
        got = {e.item_id for e in
               dataset.samplers["rs-tree"].sample_stream(
                   recent.to_rect(3), rng)}
        assert got == {r.record_id for r in fresh}


class TestThroughput:
    def test_zero_op_batch_reports_zero(self, dataset):
        result = UpdateManager(dataset).apply(UpdateBatch())
        assert result.inserted == 0 and result.deleted == 0
        assert result.throughput() == 0.0

    def test_zero_op_zero_seconds_is_still_zero(self):
        from repro.updates.manager import UpdateResult
        assert UpdateResult(0, 0, seconds=0.0).throughput() == 0.0
        assert UpdateResult(0, 0, seconds=0.5).throughput() == 0.0

    def test_nonzero_batch_divides(self):
        from repro.updates.manager import UpdateResult
        assert UpdateResult(3, 1, seconds=2.0).throughput() == 2.0
        assert UpdateResult(1, 0, seconds=0.0).throughput() \
            == float("inf")


class TestEmptyBatchIsTrueNoop:
    """Regression: an empty batch used to bump the tree's structural
    version, invalidating every cached canonical set for nothing, and
    ticked the checkpoint cadence.  It must leave all durable and
    structural state untouched."""

    def test_no_version_bump_or_wal_append(self, dataset):
        from repro.storage.dfs import SimulatedDFS
        from repro.storage.wal import WriteAheadLog
        dfs = SimulatedDFS()
        store = DocumentStore()
        store.collection("live").insert_many(
            r.to_document() for r in dataset.records.values())
        wal = WriteAheadLog(dfs)
        manager = UpdateManager(dataset, store=store,
                                collection="live", wal=wal)
        version = dataset.tree.version
        lsn = wal.last_lsn
        batches = manager.applied_batches
        result = manager.apply(UpdateBatch())
        assert result.inserted == result.deleted == 0
        assert dataset.tree.version == version
        assert wal.last_lsn == lsn
        assert manager.applied_batches == batches

    def test_no_checkpoint_cadence_tick(self, dataset):
        from repro.storage.dfs import SimulatedDFS
        from repro.storage.recovery import checkpoint_store
        from repro.storage.wal import WriteAheadLog
        dfs = SimulatedDFS()
        store = DocumentStore(dfs)
        store.collection("live").insert_many(
            r.to_document() for r in dataset.records.values())
        wal = WriteAheadLog(dfs)
        checkpoint_store(store, wal)
        manager = UpdateManager(dataset, store=store,
                                collection="live", wal=wal,
                                checkpoint_every=2)
        lsn = wal.checkpoint_lsn
        for _ in range(10):
            manager.apply(UpdateBatch())
        # Ten no-ops never reach the every-2-batches checkpoint.
        assert wal.checkpoint_lsn == lsn


class TestDeleteBeforeInsertOrdering:
    """A batch deleting and re-inserting one id is a replace — the
    delete must land first in every layer (dataset, store, WAL)."""

    def test_store_sees_the_replacement(self, dataset):
        store = DocumentStore()
        coll = store.collection("live")
        coll.insert_many(r.to_document()
                         for r in dataset.records.values())
        manager = UpdateManager(dataset, store=store,
                                collection="live")
        old = dataset.lookup(5)
        manager.apply(UpdateBatch(
            inserts=[Record(5, lon=77.0, lat=77.0,
                            attrs={"v": 123.0})],
            deletes=[5]))
        assert dataset.lookup(5).lon == 77.0 != old.lon
        assert coll.get(5)["lon"] == 77.0
        assert coll.count() == len(dataset)

    def test_wal_replay_preserves_replace(self, dataset):
        from repro.storage.dfs import SimulatedDFS
        from repro.storage.recovery import (checkpoint_store,
                                            recover_store)
        from repro.storage.wal import WriteAheadLog
        dfs = SimulatedDFS()
        store = DocumentStore(dfs)
        coll = store.collection("live")
        coll.insert_many(r.to_document()
                         for r in dataset.records.values())
        wal = WriteAheadLog(dfs)
        checkpoint_store(store, wal)
        manager = UpdateManager(dataset, store=store,
                                collection="live", wal=wal)
        manager.apply(UpdateBatch(
            inserts=[Record(5, lon=77.0, lat=77.0,
                            attrs={"v": 123.0})],
            deletes=[5]))
        # Crash pre-flush; replay must reproduce the replace.
        store2 = DocumentStore(dfs)
        recover_store(store2, WriteAheadLog(dfs))
        assert store2.collection("live").get(5)["lon"] == 77.0
        assert store2.collection("live").count() == len(dataset)
