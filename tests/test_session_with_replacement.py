"""Sessions and queries in with-replacement mode."""

import random

import pytest

from repro.core.engine import Dataset, StormEngine
from repro.core.estimators.aggregates import AvgEstimator, SumEstimator
from repro.core.records import Record, STRange, attribute_getter
from repro.core.session import StopCondition
from repro.errors import StormError
from repro.query.executor import QueryExecutor
from repro.query.language import parse


def make_dataset(n=800, seed=141):
    rng = random.Random(seed)
    records = [Record(i, lon=rng.uniform(0, 100),
                      lat=rng.uniform(0, 100), t=rng.uniform(0, 100),
                      attrs={"v": rng.gauss(7.0, 1.5)})
               for i in range(n)]
    return Dataset("wr", records, rs_buffer_size=16)


DATASET = make_dataset()
AREA = STRange(10, 10, 90, 90)


def truth():
    vals = [r.attrs["v"] for r in DATASET.records.values()
            if AREA.contains(r)]
    return sum(vals) / len(vals)


class TestWithReplacementSession:
    def test_can_exceed_q(self):
        q = DATASET.tree.range_count(AREA.to_rect(3))
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="random-path",
                                  rng=random.Random(1),
                                  with_replacement=True,
                                  report_every=64)
        final = session.run_to_stop(
            StopCondition(max_samples=2 * q))
        assert final.k >= 2 * q
        assert not final.estimate.exact
        assert final.estimate.value == pytest.approx(truth(), rel=0.05)

    def test_requires_a_stop_bound(self):
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="rs-tree",
                                  rng=random.Random(2),
                                  with_replacement=True)
        with pytest.raises(StormError):
            next(session.run(StopCondition()))

    def test_no_fpc_collapse(self):
        """At k = q the with-replacement interval stays open (no FPC)."""
        q = DATASET.tree.range_count(AREA.to_rect(3))
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="rs-tree",
                                  rng=random.Random(3),
                                  with_replacement=True,
                                  report_every=32)
        final = session.run_to_stop(StopCondition(max_samples=q))
        assert final.estimate.interval.width > 0

    def test_sum_still_scales_by_q(self):
        est = SumEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="rs-tree",
                                  rng=random.Random(4),
                                  with_replacement=True,
                                  report_every=64)
        final = session.run_to_stop(StopCondition(max_samples=400))
        q = DATASET.tree.range_count(AREA.to_rect(3))
        assert final.estimate.value == pytest.approx(truth() * q,
                                                     rel=0.05)


class TestWithReplacementLanguage:
    def test_parses(self):
        spec = parse("ESTIMATE AVG(v) FROM wr "
                     "WHERE REGION(10, 10, 90, 90) "
                     "SAMPLES 100 WITH REPLACEMENT")
        assert spec.with_replacement

    def test_executes(self):
        engine = StormEngine(seed=5)
        engine.register(DATASET)
        result = QueryExecutor(engine, rng=random.Random(6)).execute(
            "ESTIMATE AVG(v) FROM wr WHERE REGION(10, 10, 90, 90) "
            "SAMPLES 300 WITH REPLACEMENT")
        assert result.value == pytest.approx(truth(), rel=0.05)
        assert not result.final.estimate.exact

    def test_with_alone_is_an_error(self):
        from repro.errors import QueryParseError
        with pytest.raises(QueryParseError):
            parse("ESTIMATE AVG(v) FROM wr WITH SAMPLES 5")
