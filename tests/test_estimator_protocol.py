"""Protocol conformance tests across every estimator.

All estimators must honour the OnlineEstimator contract: k counts
absorbed records, reset() clears state, estimates exist once the
estimator's minimum support is met, exactness tracks k >= q.
"""

import random

import pytest

from repro.core.estimators import (AvgEstimator, BootstrapEstimator,
                                   CountEstimator, GridSpec,
                                   GroupByEstimator, OnlineKDE,
                                   OnlineKMeans, ProportionEstimator,
                                   QuantileEstimator, ShortTextEstimator,
                                   SumEstimator, TimeHistogramEstimator,
                                   TrajectoryEstimator,
                                   VarianceEstimator)
from repro.core.records import Record, attribute_getter
from repro.errors import EstimatorError


def make_records(n=40, seed=5):
    rng = random.Random(seed)
    return [Record(i, lon=rng.uniform(0, 10), lat=rng.uniform(0, 10),
                   t=float(i),
                   attrs={"v": rng.gauss(10, 2),
                          "g": rng.choice(["a", "b"]),
                          "user": "alice",
                          "text": rng.choice(["snow day", "hot sun"])})
            for i in range(n)]


RECORDS = make_records()


def all_estimators():
    return [
        ("avg", AvgEstimator(attribute_getter("v")), 1),
        ("sum", SumEstimator(attribute_getter("v")), 1),
        ("count", CountEstimator(lambda r: True), 1),
        ("proportion", ProportionEstimator(lambda r: True), 1),
        ("variance", VarianceEstimator(attribute_getter("v")), 2),
        ("quantile", QuantileEstimator(attribute_getter("v")), 1),
        ("kde", OnlineKDE(GridSpec(0, 0, 10, 10, nx=4, ny=4)), 1),
        ("kmeans", OnlineKMeans(2, seed=1), 2),
        ("trajectory", TrajectoryEstimator(), 1),
        ("text", ShortTextEstimator(min_hits=1), 1),
        ("groupby", GroupByEstimator("g",
                                     attribute_getter("v")), 1),
        ("bootstrap", BootstrapEstimator(
            lambda rs: sum(r.attrs["v"] for r in rs) / len(rs),
            min_samples=8, seed=2), 8),
        ("timeseries", TimeHistogramEstimator(
            0.0, 40.0, buckets=4,
            attribute=attribute_getter("v")), 1),
    ]


@pytest.mark.parametrize("name,estimator,min_k",
                         all_estimators(), ids=lambda p: str(p)[:12])
class TestProtocol:
    def test_k_counts_absorbed(self, name, estimator, min_k):
        for r in RECORDS[:10]:
            estimator.absorb(r)
        assert estimator.k == 10

    def test_estimate_available_after_min_support(self, name,
                                                  estimator, min_k):
        estimator.set_population_size(len(RECORDS))
        for r in RECORDS[:max(min_k, 8)]:
            estimator.absorb(r)
        e = estimator.estimate()
        assert e.k == estimator.k
        assert e.q == len(RECORDS)

    def test_reset_clears_everything(self, name, estimator, min_k):
        estimator.set_population_size(len(RECORDS))
        for r in RECORDS:
            estimator.absorb(r)
        estimator.estimate()
        estimator.reset()
        assert estimator.k == 0

    def test_exactness_tracks_population(self, name, estimator, min_k):
        estimator.set_population_size(len(RECORDS))
        for r in RECORDS:
            estimator.absorb(r)
        assert estimator.is_exact
        assert estimator.estimate().exact

    def test_negative_population_rejected(self, name, estimator,
                                          min_k):
        with pytest.raises(EstimatorError):
            estimator.set_population_size(-1)
