"""Unit tests for the KDE and clustering estimators."""

import random

import numpy as np
import pytest

from repro.core.estimators.clustering import OnlineKMeans, kmeans
from repro.core.estimators.kde import (GridSpec, OnlineKDE,
                                       epanechnikov_kernel,
                                       gaussian_kernel)
from repro.core.records import Record
from repro.errors import EstimatorError


def record_at(i, lon, lat):
    return Record(record_id=i, lon=lon, lat=lat)


class TestGridSpec:
    def test_centers_shape_and_range(self):
        grid = GridSpec(0, 0, 10, 10, nx=4, ny=5)
        centers = grid.centers()
        assert centers.shape == (20, 2)
        assert centers[:, 0].min() > 0 and centers[:, 0].max() < 10

    def test_rejects_degenerate(self):
        with pytest.raises(EstimatorError):
            GridSpec(0, 0, 0, 10)
        with pytest.raises(EstimatorError):
            GridSpec(0, 0, 10, 10, nx=0)

    def test_default_bandwidth_positive(self):
        assert GridSpec(0, 0, 10, 10).default_bandwidth() > 0


class TestKernels:
    def test_gaussian_decreasing(self):
        d2 = np.array([0.0, 1.0, 4.0])
        k = gaussian_kernel(d2, 1.0)
        assert k[0] == 1.0
        assert np.all(np.diff(k) < 0)

    def test_epanechnikov_compact_support(self):
        d2 = np.array([0.0, 0.5, 1.0, 2.0])
        k = epanechnikov_kernel(d2, 1.0)
        assert k[0] == 0.75
        assert k[-1] == 0.0


class TestOnlineKDE:
    def test_density_peaks_where_points_are(self):
        grid = GridSpec(0, 0, 10, 10, nx=10, ny=10)
        kde = OnlineKDE(grid, bandwidth=1.0)
        rng = random.Random(7)
        # A tight cluster near (2, 2).
        for i in range(300):
            kde.absorb(record_at(i, rng.gauss(2, 0.5), rng.gauss(2, 0.5)))
        field = kde.estimate().value
        peak = np.unravel_index(np.argmax(field), field.shape)
        # Row-major (ny, nx); (2,2) is near cell (2, 2).
        assert abs(peak[0] - 2) <= 1 and abs(peak[1] - 2) <= 1

    def test_error_shrinks_with_samples(self):
        grid = GridSpec(0, 0, 10, 10, nx=8, ny=8)
        kde = OnlineKDE(grid, bandwidth=2.0)
        rng = random.Random(8)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10))
                  for _ in range(3000)]
        for i, (x, y) in enumerate(points[:50]):
            kde.absorb(record_at(i, x, y))
        early = kde.max_relative_error()
        for i, (x, y) in enumerate(points[50:], start=50):
            kde.absorb(record_at(i, x, y))
        late = kde.max_relative_error()
        assert late < early

    def test_estimate_matches_full_population_mean(self):
        """Feeding the entire population gives the exact density field."""
        grid = GridSpec(0, 0, 10, 10, nx=4, ny=4)
        kde = OnlineKDE(grid, bandwidth=3.0)
        pts = [(1.0, 1.0), (9.0, 9.0), (5.0, 5.0)]
        for i, (x, y) in enumerate(pts):
            kde.absorb(record_at(i, x, y))
        field = kde.estimate().value
        centers = grid.centers()
        expected = np.zeros(len(centers))
        for x, y in pts:
            d2 = (centers[:, 0] - x) ** 2 + (centers[:, 1] - y) ** 2
            expected += np.exp(-d2 / (2 * 9.0))
        expected /= len(pts)
        assert np.allclose(field.ravel(), expected)

    def test_cell_intervals_bracket_field(self):
        grid = GridSpec(0, 0, 10, 10, nx=4, ny=4)
        kde = OnlineKDE(grid, bandwidth=2.0)
        rng = random.Random(9)
        for i in range(100):
            kde.absorb(record_at(i, rng.uniform(0, 10),
                                 rng.uniform(0, 10)))
        lo, hi = kde.cell_intervals()
        field = kde.estimate().value
        assert np.all(lo <= field + 1e-12)
        assert np.all(field <= hi + 1e-12)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(EstimatorError):
            OnlineKDE(GridSpec(0, 0, 1, 1), kernel="box")

    def test_no_samples_raises(self):
        with pytest.raises(EstimatorError):
            OnlineKDE(GridSpec(0, 0, 1, 1)).estimate()


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = random.Random(10)
        pts = []
        truth = [(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
        for cx, cy in truth:
            pts.extend((rng.gauss(cx, 0.5), rng.gauss(cy, 0.5))
                       for _ in range(100))
        result = kmeans(np.array(pts), 3, random.Random(1))
        found = sorted(tuple(np.round(c)) for c in result.centers)
        assert found == sorted(truth)

    def test_inertia_decreases_with_more_clusters(self):
        rng = random.Random(11)
        pts = np.array([(rng.uniform(0, 10), rng.uniform(0, 10))
                        for _ in range(200)])
        i2 = kmeans(pts, 2, random.Random(2)).inertia_per_point
        i8 = kmeans(pts, 8, random.Random(2)).inertia_per_point
        assert i8 < i2

    def test_too_few_points(self):
        with pytest.raises(EstimatorError):
            kmeans(np.array([[0.0, 0.0]]), 3, random.Random(0))

    def test_online_kmeans_improves(self):
        """Inertia of the fitted centers against the full population
        should drop (or hold) as the sample grows."""
        rng = random.Random(12)
        centers = [(0, 0), (20, 0), (10, 18)]
        population = []
        for i in range(1200):
            cx, cy = centers[i % 3]
            population.append((rng.gauss(cx, 1.5), rng.gauss(cy, 1.5)))
        pop = np.array(population)

        def population_inertia(fit_centers):
            d2 = np.sum((pop[:, None, :]
                         - fit_centers[None, :, :]) ** 2, axis=2)
            return float(np.min(d2, axis=1).mean())

        est = OnlineKMeans(3, seed=3)
        order = random.Random(4).sample(range(len(population)),
                                        len(population))
        for idx in order[:10]:
            est.absorb(record_at(idx, *population[idx]))
        early = population_inertia(est.estimate().value.centers)
        for idx in order[10:400]:
            est.absorb(record_at(idx, *population[idx]))
        late = population_inertia(est.estimate().value.centers)
        assert late <= early * 1.05

    def test_online_kmeans_needs_enough_points(self):
        est = OnlineKMeans(5)
        est.absorb(record_at(0, 1, 1))
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_rejects_bad_k(self):
        with pytest.raises(EstimatorError):
            OnlineKMeans(0)
