"""Tests for the durable write path: WAL, checkpoints, recovery.

The contract under test: after a crash at *any* point — before a WAL
append, during one (torn tail), between append and flush, or inside a
checkpoint — recovery restores exactly the committed prefix of
updates.  The append returning is the commit point; nothing committed
may be lost, nothing uncommitted may reappear.
"""

import random

import pytest

from repro.core.engine import Dataset, StormEngine
from repro.core.records import Record
from repro.errors import (StorageError, UpdateError, WalError,
                          WriteCrashError)
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.query.executor import QueryExecutor
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.persistence import (DATASET_PREFIX, load_engine,
                                       save_engine)
from repro.storage.recovery import (WAL_META_COLLECTION,
                                    checkpoint_store, recover_store,
                                    stored_checkpoint_lsn)
from repro.storage.wal import WriteAheadLog
from repro.updates.manager import UpdateBatch, UpdateManager


def make_records(n, seed=7, start_id=0):
    rng = random.Random(seed)
    return [Record(record_id=start_id + i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": round(rng.gauss(10, 2), 6)})
            for i in range(n)]


def fresh(segment_bytes=65536):
    dfs = SimulatedDFS(machines=4, replication=2)
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=segment_bytes)
    return dfs, store, wal


class TestWalFraming:
    def test_append_scan_roundtrip(self):
        _, _, wal = fresh()
        lsn1 = wal.append("batch", {"collection": "c", "deletes": [],
                                    "inserts": [{"_id": 1}]})
        lsn2 = wal.append_checkpoint(lsn1)
        assert (lsn1, lsn2) == (1, 2)
        records, torn = wal.scan()
        assert torn is None
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].type == "batch"
        assert records[0].payload["inserts"] == [{"_id": 1}]
        assert records[1].payload["checkpoint_lsn"] == lsn1

    def test_lsns_are_monotonic_across_restart(self):
        dfs, _, wal = fresh()
        for _ in range(5):
            wal.append("batch", {"collection": "c"})
        reopened = WriteAheadLog(dfs)
        assert reopened.last_lsn == 5
        assert reopened.append("batch", {"collection": "c"}) == 6

    def test_segments_roll_at_threshold(self):
        _, _, wal = fresh(segment_bytes=64)
        for _ in range(6):
            wal.append("batch", {"collection": "c",
                                 "inserts": [{"_id": 1, "pad": "x"}]})
        assert len(wal.segments()) > 1
        records, torn = wal.scan()
        assert torn is None
        assert [r.lsn for r in records] == list(range(1, 7))

    def test_size_bytes_sums_segments(self):
        _, _, wal = fresh(segment_bytes=64)
        assert wal.size_bytes() == 0
        for _ in range(4):
            wal.append("batch", {"collection": "c"})
        assert wal.size_bytes() == sum(
            wal.dfs.file_size(s) for s in wal.segments())

    def test_batch_payload_orders_deletes_before_inserts(self):
        """The durable format itself encodes replace semantics."""
        _, _, wal = fresh()
        wal.append_batch("c", deletes=[3, 1],
                         inserts=[{"_id": 1, "v": "new"}],
                         dataset="live")
        rec = wal.scan()[0][0]
        keys = list(rec.payload)
        assert keys.index("deletes") < keys.index("inserts")
        assert rec.payload["deletes"] == [3, 1]
        assert rec.payload["dataset"] == "live"

    def test_init_validates(self):
        dfs = SimulatedDFS()
        with pytest.raises(WalError):
            WriteAheadLog(dfs, segment_bytes=0)
        with pytest.raises(WalError):
            WriteAheadLog(dfs, prefix="")


class TestTornTail:
    def seed_log(self, n=4, segment_bytes=65536):
        dfs, _, wal = fresh(segment_bytes=segment_bytes)
        for i in range(n):
            wal.append("batch", {"collection": "c",
                                 "inserts": [{"_id": i}]})
        return dfs, wal

    def corrupt_tail(self, dfs, seg, cut=3):
        data = dfs.read_file(seg)
        dfs.write_file(seg, data[:-cut])

    def test_truncated_payload_detected(self):
        dfs, wal = self.seed_log()
        seg = wal.segments()[-1]
        self.corrupt_tail(dfs, seg)
        records, torn = WriteAheadLog(dfs).scan()
        assert [r.lsn for r in records] == [1, 2, 3]
        assert torn is not None
        assert torn.reason == "truncated payload"
        assert torn.bytes_discarded > 0

    def test_crc_mismatch_detected(self):
        dfs, wal = self.seed_log()
        seg = wal.segments()[-1]
        data = bytearray(dfs.read_file(seg))
        data[-1] ^= 0xFF  # flip a bit inside the last payload
        dfs.write_file(seg, bytes(data))
        records, torn = WriteAheadLog(dfs).scan()
        assert len(records) == 3
        assert torn.reason == "CRC mismatch"

    def test_truncated_header_detected(self):
        dfs, wal = self.seed_log(n=1)
        seg = wal.segments()[-1]
        data = dfs.read_file(seg)
        dfs.write_file(seg, data + b"\x00\x01\x02")
        _, torn = WriteAheadLog(dfs).scan()
        assert torn.reason == "truncated header"
        assert torn.bytes_discarded == 3

    def test_later_segments_count_as_discarded(self):
        dfs, wal = self.seed_log(n=8, segment_bytes=64)
        segs = wal.segments()
        assert len(segs) >= 3
        self.corrupt_tail(dfs, segs[0])
        later = sum(dfs.file_size(s) for s in segs[1:])
        _, torn = WriteAheadLog(dfs).scan()
        assert torn.segment == segs[0]
        assert torn.bytes_discarded > later

    def test_truncate_torn_makes_log_appendable(self):
        dfs, wal = self.seed_log()
        self.corrupt_tail(dfs, wal.segments()[-1])
        reopened = WriteAheadLog(dfs)
        assert reopened.torn is not None
        with pytest.raises(WalError):
            reopened.append("batch", {"collection": "c"})
        torn = reopened.truncate_torn()
        assert torn is not None and reopened.torn is None
        assert reopened.last_lsn == 3
        assert reopened.append("batch", {"collection": "c"}) == 4
        records, still_torn = reopened.scan()
        assert still_torn is None
        assert [r.lsn for r in records] == [1, 2, 3, 4]

    def test_truncate_deletes_fully_torn_segment(self):
        dfs, wal = self.seed_log(n=8, segment_bytes=64)
        segs = wal.segments()
        # Tear the first record of a later segment: nothing valid
        # precedes the tear in that file, so it is deleted outright.
        dfs.write_file(segs[1], dfs.read_file(segs[1])[:6])
        reopened = WriteAheadLog(dfs)
        reopened.truncate_torn()
        assert segs[1] not in reopened.segments()

    def test_crashed_append_poisons_handle(self):
        dfs, _, wal = fresh()
        wal.append("batch", {"collection": "c"})
        dfs.set_fault_plan(FaultPlan(seed=1).crash_write("wal/"))
        with pytest.raises(WriteCrashError):
            wal.append("batch", {"collection": "c"})
        with pytest.raises(WalError):
            wal.append("batch", {"collection": "c"})


class TestCheckpointAndRecovery:
    def seeded_store(self):
        dfs, store, wal = fresh()
        coll = store.collection("live")
        coll.insert_many({"_id": i, "v": i} for i in range(10))
        checkpoint_store(store, wal)
        return dfs, store, wal

    def test_checkpoint_commits_meta_lsn(self):
        _, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[], inserts=[{"_id": 99}])
        lsn = checkpoint_store(store, wal)
        assert lsn == wal.last_lsn - 1  # checkpoint record follows
        assert stored_checkpoint_lsn(store) == lsn
        reloaded = DocumentStore(store.dfs)
        assert stored_checkpoint_lsn(reloaded) == lsn

    def test_prune_keeps_newest_segment(self):
        dfs, store, _ = self.seeded_store()
        wal = WriteAheadLog(dfs, segment_bytes=64)
        for i in range(8):
            wal.append_batch("live", deletes=[],
                             inserts=[{"_id": 100 + i}])
        assert len(wal.segments()) > 2
        checkpoint_store(store, wal)
        assert len(wal.segments()) == 1
        assert WriteAheadLog(dfs).last_lsn == wal.last_lsn

    def test_replay_restores_committed_batches(self):
        dfs, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[0, 1],
                         inserts=[{"_id": 50, "v": 50}])
        wal.append_batch("live", deletes=[2],
                         inserts=[{"_id": 51, "v": 51}])
        # Crash: nothing flushed.  Restart from the DFS alone.
        store2 = DocumentStore(dfs)
        wal2 = WriteAheadLog(dfs)
        report = recover_store(store2, wal2)
        live = {d["_id"] for d in store2.collection("live").find()}
        assert live == ({3, 4, 5, 6, 7, 8, 9} | {50, 51})
        assert report.batches_replayed == 2
        assert report.ops_replayed == 5
        assert report.collections == ["live"]

    def test_replay_is_idempotent(self):
        """Crash between flush and checkpoint-commit re-replays the
        already-applied batch; upsert/delete semantics absorb it."""
        dfs, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[0],
                         inserts=[{"_id": 50, "v": 50}])
        # The batch reached the store and was flushed, but the meta
        # collection (the checkpoint commit point) never landed.
        store.collection("live").delete_one(0)
        store.collection("live").upsert_one({"_id": 50, "v": 50})
        store.flush("live")
        store2 = DocumentStore(dfs)
        wal2 = WriteAheadLog(dfs)
        report = recover_store(store2, wal2)
        assert report.batches_replayed == 1  # replayed, harmlessly
        live = {d["_id"] for d in store2.collection("live").find()}
        assert live == set(range(1, 10)) | {50}

    def test_replay_applies_deletes_before_inserts(self):
        dfs, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[3],
                         inserts=[{"_id": 3, "v": "replaced"}])
        store2 = DocumentStore(dfs)
        report = recover_store(store2, WriteAheadLog(dfs))
        assert report.ops_replayed == 2
        assert store2.collection("live").get(3)["v"] == "replaced"

    def test_recovery_checkpoint_is_durable(self):
        dfs, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[], inserts=[{"_id": 50}])
        recover_store(DocumentStore(dfs), WriteAheadLog(dfs))
        # A second restart finds everything checkpointed: no replay.
        report = recover_store(DocumentStore(dfs), WriteAheadLog(dfs))
        assert report.batches_replayed == 0

    def test_no_checkpoint_mode_changes_nothing_durable(self):
        dfs, store, wal = self.seeded_store()
        before = stored_checkpoint_lsn(store)
        wal.append_batch("live", deletes=[], inserts=[{"_id": 50}])
        report = recover_store(DocumentStore(dfs), WriteAheadLog(dfs),
                               checkpoint=False)
        assert report.batches_replayed == 1
        assert stored_checkpoint_lsn(DocumentStore(dfs)) == before

    def test_report_shapes(self):
        dfs, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[0], inserts=[])
        report = recover_store(DocumentStore(dfs), WriteAheadLog(dfs))
        d = report.as_dict()
        assert d["batches_replayed"] == 1 and d["ops_replayed"] == 1
        text = report.render()
        assert text.startswith("recovery:")
        assert "batches replayed   1" in text
        assert "live" in text

    def test_recovery_counters_flow_to_registry(self):
        dfs, store, wal = self.seeded_store()
        wal.append_batch("live", deletes=[], inserts=[{"_id": 50}])
        obs = Observability()
        recover_store(DocumentStore(dfs), WriteAheadLog(dfs, obs=obs),
                      obs=obs)
        registry = obs.registry
        assert registry.counter("storm.recovery.runs").value == 1
        assert registry.counter(
            "storm.recovery.records_replayed").value == 1
        assert registry.counter("storm.wal.checkpoints").value == 1


class TestUpdateManagerDurability:
    def make_manager(self, **kwargs):
        dfs, store, wal = fresh()
        records = make_records(40)
        dataset = Dataset("live", records, rs_buffer_size=8,
                          build_ls=False)
        coll = store.collection("live")
        coll.insert_many(r.to_document() for r in records)
        checkpoint_store(store, wal)
        manager = UpdateManager(dataset, store=store,
                                collection="live", wal=wal, **kwargs)
        return dfs, manager

    def test_wal_requires_store(self):
        dataset = Dataset("live", make_records(5), build_ls=False)
        with pytest.raises(UpdateError):
            UpdateManager(dataset, wal=WriteAheadLog(SimulatedDFS()))

    def test_checkpoint_every_validated(self):
        dataset = Dataset("live", make_records(5), build_ls=False)
        with pytest.raises(UpdateError):
            UpdateManager(dataset, checkpoint_every=4)
        dfs, _ = self.make_manager()
        with pytest.raises(UpdateError):
            self.make_manager(checkpoint_every=0)

    def test_append_precedes_mutation(self):
        """A crash on the WAL write leaves every layer untouched."""
        dfs, manager = self.make_manager()
        size = len(manager.dataset)
        dfs.set_fault_plan(FaultPlan(seed=3).crash_write("wal/"))
        with pytest.raises(WriteCrashError):
            manager.apply(UpdateBatch(
                inserts=make_records(2, start_id=1000), deletes=[0]))
        assert len(manager.dataset) == size
        assert 0 in manager.dataset.records
        coll = manager.store.collection("live")
        assert coll.count() == size and 1000 not in {
            d["_id"] for d in coll.find()}

    def test_committed_batch_is_in_the_log(self):
        dfs, manager = self.make_manager()
        manager.apply(UpdateBatch(
            inserts=make_records(2, start_id=1000), deletes=[0, 1]))
        assert manager.last_lsn == manager.wal.last_lsn
        rec = manager.wal.scan()[0][-1]
        assert rec.type == "batch"
        assert rec.payload["deletes"] == [0, 1]
        assert [d["_id"] for d in rec.payload["inserts"]] \
            == [1000, 1001]

    def test_checkpoint_every_flushes_automatically(self):
        dfs, manager = self.make_manager(checkpoint_every=2)
        start = stored_checkpoint_lsn(DocumentStore(dfs))
        manager.insert(make_records(1, start_id=1000)[0])
        assert stored_checkpoint_lsn(DocumentStore(dfs)) == start
        manager.insert(make_records(1, start_id=1001)[0])
        after = stored_checkpoint_lsn(DocumentStore(dfs))
        assert after > start
        reloaded = DocumentStore(dfs)
        assert 1001 in {d["_id"]
                        for d in reloaded.collection("live").find()}

    def test_crash_then_recover_matches_committed_state(self):
        dfs, manager = self.make_manager()
        shadow = {d["_id"]: d for d
                  in manager.store.collection("live").find()}
        dfs.set_fault_plan(
            FaultPlan(seed=3).torn_write("wal/", nth=3,
                                         keep_fraction=0.5))
        next_id = 1000
        committed = 0
        for b in range(5):
            inserts = make_records(2, seed=b, start_id=next_id)
            deletes = [sorted(manager.dataset.records)[0]]
            next_id += 2
            try:
                manager.apply(UpdateBatch(inserts=inserts,
                                          deletes=deletes))
            except WriteCrashError:
                break
            committed += 1
            for rid in deletes:
                shadow.pop(rid)
            for r in inserts:
                shadow[r.record_id] = r.to_document()
        assert committed == 2
        store2 = DocumentStore(dfs)
        report = recover_store(store2, WriteAheadLog(dfs))
        live = {d["_id"]: d for d
                in store2.collection("live").find()}
        assert live == shadow
        assert report.bytes_discarded > 0


class TestSaveEngineAtomicity:
    def build_engine(self, n=60):
        engine = StormEngine(seed=11)
        engine.create_dataset("alpha", make_records(n),
                              build_ls=False)
        return engine

    def test_crash_mid_save_keeps_previous_dataset(self):
        """Regression: drop-then-reinsert would lose the dataset if
        the process died between the drop and the rewrite."""
        dfs = SimulatedDFS()
        store = DocumentStore(dfs)
        save_engine(self.build_engine(60), store)
        dfs.set_fault_plan(
            FaultPlan(seed=5).torn_write(
                "store/" + DATASET_PREFIX + "alpha", nth=1,
                keep_fraction=0.3))
        with pytest.raises(WriteCrashError):
            save_engine(self.build_engine(80), store)
        again = load_engine(DocumentStore(dfs))
        assert len(again.dataset("alpha")) == 60

    def test_crash_before_any_byte_keeps_previous_dataset(self):
        dfs = SimulatedDFS()
        store = DocumentStore(dfs)
        save_engine(self.build_engine(60), store)
        dfs.set_fault_plan(
            FaultPlan(seed=5).crash_write(
                "store/" + DATASET_PREFIX + "alpha"))
        with pytest.raises(WriteCrashError):
            save_engine(self.build_engine(80), store)
        again = load_engine(DocumentStore(dfs))
        assert len(again.dataset("alpha")) == 60

    def test_stale_tmp_files_swept_on_load(self):
        dfs = SimulatedDFS()
        store = DocumentStore(dfs)
        save_engine(self.build_engine(10), store)
        dfs.write_file("store/ds_alpha.jsonl.tmp", b"torn half-")
        store2 = DocumentStore(dfs)
        assert not dfs.exists("store/ds_alpha.jsonl.tmp")
        assert "ds_alpha.jsonl.tmp" not in store2.collections
        assert len(load_engine(store2).dataset("alpha")) == 10

    def test_save_with_wal_stamps_manifest(self):
        dfs, store, wal = fresh()
        wal.append_batch("x", deletes=[], inserts=[{"_id": 1}])
        save_engine(self.build_engine(10), store, wal=wal)
        entry = store.collection("_datasets").find_one(
            {"name": "alpha"})
        assert entry["checkpoint_lsn"] == 1
        assert stored_checkpoint_lsn(store) >= 1

    def test_load_engine_runs_recovery_first(self):
        dfs, store, wal = fresh()
        engine = self.build_engine(30)
        save_engine(engine, store, wal=wal)
        manager = UpdateManager(engine.dataset("alpha"), store=store,
                                collection=DATASET_PREFIX + "alpha",
                                wal=wal)
        manager.apply(UpdateBatch(
            inserts=make_records(3, start_id=1000), deletes=[0]))
        # Crash without flushing; reload from the DFS alone.
        store2 = DocumentStore(dfs)
        again = load_engine(store2, wal=WriteAheadLog(dfs))
        assert again.last_recovery.batches_replayed == 1
        assert len(again.dataset("alpha")) == 32
        assert 1002 in again.dataset("alpha").records
        assert 0 not in again.dataset("alpha").records

    def test_load_without_wal_has_no_report(self):
        store = DocumentStore()
        save_engine(self.build_engine(10), store)
        assert load_engine(store).last_recovery is None

    def test_wal_meta_collection_not_a_dataset(self):
        """The _wal meta collection must never shadow a dataset."""
        dfs, store, wal = fresh()
        save_engine(self.build_engine(10), store, wal=wal)
        again = load_engine(DocumentStore(dfs),
                            wal=WriteAheadLog(dfs))
        assert set(again.datasets) == {"alpha"}
        assert WAL_META_COLLECTION in DocumentStore(dfs).collections


class TestExplainDurability:
    def test_durability_section_after_recovered_load(self):
        dfs, store, wal = fresh()
        engine = StormEngine(seed=11)
        engine.create_dataset("alpha", make_records(200),
                              build_ls=False)
        save_engine(engine, store, wal=wal)
        UpdateManager(engine.dataset("alpha"), store=store,
                      collection=DATASET_PREFIX + "alpha",
                      wal=wal).apply(UpdateBatch(
                          inserts=make_records(4, start_id=1000)))
        obs = Observability()
        again = load_engine(DocumentStore(dfs),
                            wal=WriteAheadLog(dfs, obs=obs), obs=obs)
        executor = QueryExecutor(again, rng=random.Random(1))
        report = executor.explain_report(
            "ESTIMATE COUNT FROM alpha "
            "WHERE REGION(0, 0, 100, 100)", obs=obs)
        assert "durability:" in report
        assert "recovery runs" in report
        assert "recovery ops replayed" in report
        assert "wal appends" in report

    def test_no_durability_section_without_wal_traffic(self):
        engine = StormEngine(seed=11, obs=Observability())
        engine.create_dataset("alpha", make_records(100),
                              build_ls=False)
        executor = QueryExecutor(engine, rng=random.Random(1))
        report = executor.explain_report(
            "ESTIMATE COUNT FROM alpha "
            "WHERE REGION(0, 0, 100, 100)", obs=engine.obs)
        assert "durability:" not in report
