"""Tests for the R*-tree variant."""

import random

import pytest

from repro.core.geometry import Rect
from repro.index.cost import CostCounter
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

from tests.conftest import brute_force_range, make_clustered_points, \
    make_points


def insert_all(tree, points):
    for pid, pt in points:
        tree.insert(pid, pt)
    return tree


class TestRStarCorrectness:
    def test_incremental_build_valid(self):
        pts = make_points(800, seed=171)
        tree = insert_all(RStarTree(2, leaf_capacity=8,
                                    branch_capacity=4), pts)
        tree.validate()
        assert len(tree) == len(pts)

    def test_queries_match_brute_force(self):
        pts = make_clustered_points(1200, seed=172)
        tree = insert_all(RStarTree(2, leaf_capacity=8,
                                    branch_capacity=4), pts)
        for box in [Rect((20, 20), (70, 70)), Rect((0, 0), (100, 100)),
                    Rect((48, 48), (52, 52))]:
            got = {e.item_id for e in tree.range_query(box)}
            assert got == brute_force_range(pts, box)

    def test_deletes_work(self):
        pts = make_points(500, seed=173)
        tree = insert_all(RStarTree(2, leaf_capacity=8,
                                    branch_capacity=4), pts)
        r = random.Random(1)
        removed = set()
        for pid, pt in r.sample(pts, 200):
            assert tree.delete(pid, pt)
            removed.add(pid)
        tree.validate()
        got = {e.item_id for e in tree.iter_entries()}
        assert got == {pid for pid, _ in pts} - removed

    def test_mixed_workload(self):
        tree = RStarTree(2, leaf_capacity=8, branch_capacity=4)
        r = random.Random(2)
        live = {}
        next_id = 0
        for step in range(1200):
            if live and r.random() < 0.35:
                pid = r.choice(list(live))
                assert tree.delete(pid, live.pop(pid))
            else:
                pt = (r.uniform(0, 100), r.uniform(0, 100))
                tree.insert(next_id, pt)
                live[next_id] = pt
                next_id += 1
            if step % 300 == 0:
                tree.validate()
        tree.validate()
        assert len(tree) == len(live)

    def test_bulk_load_inherited(self):
        pts = make_points(600, seed=174)
        tree = RStarTree(2)
        tree.bulk_load(pts)
        tree.validate()
        box = Rect((10, 10), (60, 60))
        got = {e.item_id for e in tree.range_query(box)}
        assert got == brute_force_range(pts, box)

    def test_3d(self):
        pts = make_points(400, seed=175, dims=3)
        tree = insert_all(RStarTree(3, leaf_capacity=8,
                                    branch_capacity=4), pts)
        tree.validate()
        box = Rect((10, 10, 10), (80, 80, 80))
        got = {e.item_id for e in tree.range_query(box)}
        assert got == brute_force_range(pts, box)


class TestRStarQuality:
    def test_less_overlap_than_guttman(self):
        """The point of R*: dynamically built trees have tighter leaves.
        Measured as total pairwise leaf-MBR overlap area."""
        pts = make_clustered_points(3000, seed=176)
        shuffled = list(pts)
        random.Random(3).shuffle(shuffled)
        guttman = insert_all(RTree(2, leaf_capacity=16,
                                   branch_capacity=8), shuffled)
        rstar = insert_all(RStarTree(2, leaf_capacity=16,
                                     branch_capacity=8), shuffled)

        def leaf_overlap(tree):
            leaves = []
            stack = [tree.root]
            while stack:
                n = stack.pop()
                if n.is_leaf:
                    leaves.append(n.mbr)
                else:
                    stack.extend(n.children)
            total = 0.0
            for i, a in enumerate(leaves):
                for b in leaves[i + 1:]:
                    inter = a.intersection(b)
                    if inter is not None:
                        total += inter.area()
            return total

        assert leaf_overlap(rstar) < leaf_overlap(guttman)

    def test_cheaper_range_queries(self):
        """Tighter MBRs → fewer node reads for the same query mix."""
        pts = make_clustered_points(3000, seed=177)
        shuffled = list(pts)
        random.Random(4).shuffle(shuffled)
        guttman = insert_all(RTree(2, leaf_capacity=16,
                                   branch_capacity=8), shuffled)
        rstar = insert_all(RStarTree(2, leaf_capacity=16,
                                     branch_capacity=8), shuffled)
        boxes = [Rect((i, j), (i + 15, j + 15))
                 for i in range(0, 80, 20) for j in range(0, 80, 20)]
        c_g, c_r = CostCounter(), CostCounter()
        for box in boxes:
            guttman.range_query(box, c_g)
            rstar.range_query(box, c_r)
        assert c_r.node_reads <= c_g.node_reads
