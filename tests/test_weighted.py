"""Tests for the shared weighted-draw structures (alias + Fenwick).

The sampling hot paths replaced their linear cumulative scans and
acceptance/rejection loops with :class:`AliasTable` (static weights,
with-replacement paths) and :class:`FenwickSampler` (decrementing
weights, without-replacement paths).  Both must produce *exactly* the
discrete distribution their weights describe — chi-square tests below
hold them to it — and the Fenwick tree must stay exact while weights
decrement mid-stream.

Seeds are fixed; thresholds use the 0.001 quantile.
"""

import random

import pytest
from scipy import stats

from repro.core.sampling import AliasTable, FenwickSampler
from repro.errors import StormError


def chi_square_pvalue(observed: list[int], expected: list[float]) -> float:
    chi2 = sum((o - e) ** 2 / e for o, e in zip(observed, expected)
               if e > 0)
    df = sum(1 for e in expected if e > 0) - 1
    return stats.chi2.sf(chi2, df=df)


class TestAliasTable:
    def test_rejects_bad_weights(self):
        with pytest.raises(StormError):
            AliasTable([])
        with pytest.raises(StormError):
            AliasTable([1.0, -0.5])
        with pytest.raises(StormError):
            AliasTable([0.0, 0.0])

    def test_len(self):
        assert len(AliasTable([1, 2, 3])) == 3

    def test_single_source(self):
        table = AliasTable([5.0])
        rng = random.Random(1)
        assert all(table.sample(rng) == 0 for _ in range(100))

    def test_zero_weight_sources_never_drawn(self):
        table = AliasTable([1.0, 0.0, 2.0, 0.0])
        rng = random.Random(2)
        draws = {table.sample(rng) for _ in range(5000)}
        assert draws == {0, 2}

    def test_uniform_weights_chi_square(self):
        n, draws = 16, 40_000
        table = AliasTable([1.0] * n)
        rng = random.Random(3)
        counts = [0] * n
        for _ in range(draws):
            counts[table.sample(rng)] += 1
        p = chi_square_pvalue(counts, [draws / n] * n)
        assert p > 1e-3

    def test_skewed_weights_chi_square(self):
        weights = [1.0, 2.0, 4.0, 8.0, 16.0, 0.5]
        total = sum(weights)
        draws = 60_000
        table = AliasTable(weights)
        rng = random.Random(4)
        counts = [0] * len(weights)
        for _ in range(draws):
            counts[table.sample(rng)] += 1
        p = chi_square_pvalue(counts,
                              [draws * w / total for w in weights])
        assert p > 1e-3


class TestFenwickSampler:
    def test_rejects_negative_weight(self):
        with pytest.raises(StormError):
            FenwickSampler([1, -1])

    def test_empty_distribution(self):
        fen = FenwickSampler([])
        assert fen.total == 0
        with pytest.raises(StormError):
            fen.sample(random.Random(0))

    def test_build_and_get(self):
        fen = FenwickSampler([3, 0, 5, 2])
        assert fen.total == 10
        assert [fen.get(i) for i in range(4)] == [3, 0, 5, 2]

    def test_find_boundaries(self):
        fen = FenwickSampler([3, 0, 5, 2])
        # prefix sums: 3, 3, 8, 10 — find = smallest i with prefix > t.
        assert fen.find(0) == 0
        assert fen.find(2) == 0
        assert fen.find(3) == 2  # zero-weight source 1 skipped
        assert fen.find(7) == 2
        assert fen.find(8) == 3
        assert fen.find(9) == 3

    def test_add_and_guard(self):
        fen = FenwickSampler([2, 2])
        fen.add(0, -2)
        assert fen.total == 2
        assert fen.get(0) == 0
        with pytest.raises(StormError):
            fen.add(0, -1)
        rng = random.Random(5)
        assert all(fen.sample(rng) == 1 for _ in range(50))

    def test_static_weights_chi_square(self):
        weights = [5, 1, 9, 3, 7, 2]
        total = sum(weights)
        draws = 60_000
        fen = FenwickSampler(weights)
        rng = random.Random(6)
        counts = [0] * len(weights)
        for _ in range(draws):
            counts[fen.sample(rng)] += 1
        p = chi_square_pvalue(counts,
                              [draws * w / total for w in weights])
        assert p > 1e-3

    def test_without_replacement_first_draw_uniform(self):
        """Decrement-as-you-go: over many full passes, the *first*
        unit drawn is uniform over all units (the exact property the
        RS-tree's source selection relies on)."""
        weights = [4, 2, 6]
        total = sum(weights)
        trials = 30_000
        counts = [0] * len(weights)
        for trial in range(trials):
            rng = random.Random(7_000_003 + trial)
            fen = FenwickSampler(weights)
            counts[fen.sample(rng)] += 1
        p = chi_square_pvalue(counts,
                              [trials * w / total for w in weights])
        assert p > 1e-3

    def test_full_depletion_emits_exact_multiset(self):
        """Draw-and-decrement until empty yields each source exactly
        its weight many times, in every run."""
        weights = [3, 0, 2, 5]
        rng = random.Random(8)
        fen = FenwickSampler(weights)
        tally = [0] * len(weights)
        while fen.total > 0:
            i = fen.sample(rng)
            fen.add(i, -1)
            tally[i] += 1
        assert tally == weights

    def test_depletion_order_uniform(self):
        """The full consumption order of unit-weight sources is a
        uniform permutation: each source is equally likely in each
        position (chi-square on position of source 0)."""
        n, trials = 6, 24_000
        position_counts = [0] * n
        for trial in range(trials):
            rng = random.Random(9_000_017 + trial)
            fen = FenwickSampler([1] * n)
            pos = 0
            while fen.total > 0:
                i = fen.sample(rng)
                fen.add(i, -1)
                if i == 0:
                    position_counts[pos] += 1
                pos += 1
        p = chi_square_pvalue(position_counts, [trials / n] * n)
        assert p > 1e-3
