"""Tests for the optimizer's calibration feedback loop."""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.records import Record, STRange
from repro.errors import OptimizerError
from repro.query.executor import QueryExecutor


def make_dataset(n=1500, seed=91):
    rng = random.Random(seed)
    records = [Record(i, lon=rng.uniform(0, 100),
                      lat=rng.uniform(0, 100), t=rng.uniform(0, 100),
                      attrs={"v": rng.gauss(0, 1)})
               for i in range(n)]
    return Dataset("fb", records, rs_buffer_size=16)


QUERY = STRange(20, 20, 80, 80).to_rect(3)


class TestCalibration:
    def test_starts_neutral(self):
        ds = make_dataset()
        assert all(c == 1.0 for c in ds.optimizer.calibration.values())

    def test_feedback_shifts_choice(self):
        """Repeatedly observing the chosen method being 10x slower than
        predicted must eventually flip the choice."""
        ds = make_dataset()
        first = ds.optimizer.choose(QUERY, expected_k=64)
        predicted = first.scores[first.method]
        for _ in range(25):
            ds.optimizer.record_outcome(first.method, QUERY, 64,
                                        predicted * 50)
        second = ds.optimizer.choose(QUERY, expected_k=64)
        assert second.method != first.method
        assert ds.optimizer.calibration[first.method] > 1.5

    def test_feedback_clamped(self):
        ds = make_dataset()
        method = next(iter(ds.samplers))
        for _ in range(100):
            ds.optimizer.record_outcome(method, QUERY, 64, 1e9)
        assert ds.optimizer.calibration[method] \
            <= ds.optimizer.FEEDBACK_CLAMP[1]

    def test_good_outcomes_lower_factor(self):
        ds = make_dataset()
        plan = ds.optimizer.choose(QUERY, expected_k=64)
        for _ in range(10):
            ds.optimizer.record_outcome(plan.method, QUERY, 64,
                                        plan.scores[plan.method] / 100)
        assert ds.optimizer.calibration[plan.method] < 1.0

    def test_unknown_method_rejected(self):
        ds = make_dataset()
        with pytest.raises(OptimizerError):
            ds.optimizer.record_outcome("warp", QUERY, 10, 1.0)

    def test_degenerate_inputs_ignored(self):
        ds = make_dataset()
        method = next(iter(ds.samplers))
        ds.optimizer.record_outcome(method, QUERY, 0, 1.0)
        ds.optimizer.record_outcome(method, QUERY, 10, -1.0)
        assert ds.optimizer.calibration[method] == 1.0


class TestExecutorFeedsBack:
    def test_executed_queries_update_calibration(self):
        ds = make_dataset()
        from repro.core.engine import StormEngine
        engine = StormEngine(seed=4)
        engine.register(ds)
        executor = QueryExecutor(engine, rng=random.Random(5))
        before = dict(ds.optimizer.calibration)
        executor.execute("ESTIMATE AVG(v) FROM fb "
                         "WHERE REGION(20, 20, 80, 80) SAMPLES 64")
        assert ds.optimizer.calibration != before

    def test_forced_method_does_not_calibrate(self):
        ds = make_dataset()
        from repro.core.engine import StormEngine
        engine = StormEngine(seed=6)
        engine.register(ds)
        executor = QueryExecutor(engine, rng=random.Random(7))
        before = dict(ds.optimizer.calibration)
        executor.execute("ESTIMATE AVG(v) FROM fb "
                         "WHERE REGION(20, 20, 80, 80) SAMPLES 64 "
                         "USING random-path")
        assert ds.optimizer.calibration == before
