"""End-to-end fault tolerance: liveness, uniformity, coverage, EXPLAIN.

The chaos harness (``repro.bench.chaos``) is exercised directly so CI
tests and the benchmark JSON agree on what "healthy under faults"
means: chi-square uniformity at escalating fault rates, mid-stream
crash recovery via replica failover, graceful degradation without
replicas, and the EXPLAIN ANALYZE faults section.
"""

import random

import pytest

from repro.bench.chaos import (_crash_scenario, _grid_records,
                               _uniformity_sweep, run_chaos)
from repro.core.engine import StormEngine
from repro.core.estimators.aggregates import CountEstimator
from repro.core.geometry import Rect
from repro.core.sampling.base import take
from repro.core.session import StopCondition
from repro.distributed.dataset import DistributedDataset
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler
from repro.faults import FaultPlan
from repro.query.executor import QueryExecutor

BOX = Rect((0.0, 0.0, 0.0), (100.0, 100.0, 1000.0))
P_THRESHOLD = 1e-3


class TestUniformityUnderFaults:
    """First-k draw counts stay uniform as fault rates escalate."""

    @pytest.mark.parametrize("rate", [0.0, 0.01, 0.1])
    def test_chi_square_does_not_reject(self, rate):
        rows = _uniformity_sweep(
            [rate], n=120, workers=4, replication=2, trials=300, k=6,
            seed=23)
        row = rows[0]
        assert row["completed"] == row["trials"], \
            "liveness: every session must finish under faults"
        assert row["p_value"] > P_THRESHOLD
        if rate > 0:
            assert row["errors"] > 0, "the plan injected nothing"

    def test_harness_report_is_self_consistent(self):
        report = run_chaos(n=120, workers=4, replication=2,
                           trials=120, k=6, rates=(0.0, 0.05),
                           seed=11)
        assert report["ok"]
        assert len(report["fault_rate_sweep"]) == 2


class TestMidStreamCrash:
    def build(self, replication, n=160, seed=3):
        records = _grid_records(n, seed)
        index = DistributedSTIndex(records, n_workers=4,
                                   replication=replication, seed=seed,
                                   faults=FaultPlan(seed=seed))
        return index, DistributedSampler(index,
                                         backoff_seconds=0.001)

    def test_replicated_crash_is_invisible_to_the_result(self):
        index, sampler = self.build(replication=2)
        stream = sampler.sample_stream(BOX, random.Random(5))
        seen = [e.item_id for e in take(stream, 20)]
        index.cluster.crash_worker(1)
        seen += [e.item_id for e in stream]
        assert len(seen) == 160
        assert len(set(seen)) == 160, \
            "failover must not replay already-emitted samples"
        assert sampler.coverage == 1.0
        assert sampler.last_faults["failovers"] >= 1

    def test_unreplicated_crash_degrades_coverage_not_liveness(self):
        index, sampler = self.build(replication=1)
        stream = sampler.sample_stream(BOX, random.Random(5))
        seen = [e.item_id for e in take(stream, 20)]
        index.cluster.crash_worker(1)
        seen += [e.item_id for e in stream]  # completes, shorter
        assert len(seen) < 160
        assert len(set(seen)) == len(seen)
        assert sampler.coverage < 1.0

    @pytest.mark.parametrize("replication", [1, 2])
    def test_crash_between_open_and_fetch_leaks_no_handles(
            self, replication):
        index, sampler = self.build(replication=replication)
        stream = sampler.sample_stream(BOX, random.Random(5))
        next(stream)  # streams are open on every worker now
        index.cluster.crash_worker(2)
        list(stream)  # drain to completion
        leaked = sum(w.open_stream_count()
                     for w in index.cluster.workers)
        assert leaked == 0

    def test_abandoned_stream_closes_its_handles(self):
        index, sampler = self.build(replication=2)
        stream = sampler.sample_stream(BOX, random.Random(5))
        next(stream)
        index.cluster.crash_worker(1)
        next(stream)
        stream.close()  # user walks away mid-query
        leaked = sum(w.open_stream_count()
                     for w in index.cluster.workers)
        assert leaked == 0

    def test_crash_and_recover_keeps_stream_uniformity_machinery(self):
        # A crash window that closes again: the worker recovers but
        # its stream handle died, so the sampler re-opens and filters.
        plan = FaultPlan(seed=3).crash("worker:1", at=20, until=40)
        records = _grid_records(160, 3)
        index = DistributedSTIndex(records, n_workers=4,
                                   replication=2, seed=3, faults=plan)
        sampler = DistributedSampler(index, backoff_seconds=0.001)
        seen = [e.item_id
                for e in sampler.sample_stream(BOX, random.Random(5))]
        assert len(seen) == 160 and len(set(seen)) == 160
        assert sampler.coverage == 1.0


class TestSessionsAndExplainUnderFaults:
    def engine_with(self, replication, faults, n=240, seed=7):
        engine = StormEngine(seed=seed)
        # Small batches: enough round trips that a crash window in
        # the low tens of ticks lands mid-stream, not after the end.
        engine.register(DistributedDataset(
            "grid", _grid_records(n, seed), n_workers=4,
            replication=replication, faults=faults, seed=seed,
            batch_size=8, backoff_seconds=0.001))
        return engine

    def test_session_with_failover_reaches_exact_result(self):
        plan = FaultPlan(seed=7).crash("worker:2", at=14)
        engine = self.engine_with(2, plan)
        dataset = engine.dataset("grid")
        session = dataset.session(BOX, CountEstimator(),
                                  rng=random.Random(1))
        point = session.run_to_stop(StopCondition())
        assert point.reason == "exhausted (exact result)"
        assert point.coverage == 1.0
        assert point.estimate.value == 240

    def test_degraded_session_reports_partial_coverage(self):
        plan = FaultPlan(seed=7).crash("worker:2", at=0)
        engine = self.engine_with(1, plan)
        dataset = engine.dataset("grid")
        session = dataset.session(BOX, CountEstimator(),
                                  rng=random.Random(1))
        point = session.run_to_stop(StopCondition())
        assert point.coverage < 1.0
        assert "coverage" in point.reason

    def test_explain_analyze_reports_failovers(self):
        plan = FaultPlan(seed=7).crash("worker:2", at=14)
        engine = self.engine_with(2, plan)
        executor = QueryExecutor(engine, rng=random.Random(2))
        report = executor.explain_report(
            "ESTIMATE COUNT FROM grid WHERE REGION(0, 0, 100, 100)")
        assert "faults:" in report
        assert "stream failovers" in report
        assert "method fixed at build time: distributed-rs" in report

    def test_explain_analyze_reports_degraded_coverage(self):
        plan = FaultPlan(seed=7).crash("worker:2", at=0)
        engine = self.engine_with(1, plan)
        executor = QueryExecutor(engine, rng=random.Random(2))
        report = executor.explain_report(
            "ESTIMATE COUNT FROM grid WHERE REGION(0, 0, 100, 100)")
        assert "degraded workers" in report
        assert "coverage" in report

    def test_fault_free_explain_has_no_faults_section(self):
        engine = self.engine_with(2, None)
        executor = QueryExecutor(engine, rng=random.Random(2))
        report = executor.explain_report(
            "ESTIMATE COUNT FROM grid WHERE REGION(0, 0, 100, 100)")
        assert "faults:" not in report


class TestCrashScenarioHelper:
    def test_replicated_scenario_shape(self):
        row = _crash_scenario(2, n=160, workers=4, seed=5)
        assert row["distinct"] == row["population"]
        assert row["coverage"] == 1.0
        assert row["leaked_streams"] == 0

    def test_bare_scenario_degrades(self):
        row = _crash_scenario(1, n=160, workers=4, seed=5)
        assert row["coverage"] < 1.0
        assert row["distinct"] == row["emitted"]
        assert row["leaked_streams"] == 0
