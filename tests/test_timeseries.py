"""Tests for the online time-histogram estimator."""

import math
import random

import pytest

from repro.core.estimators.timeseries import TimeHistogramEstimator
from repro.core.records import Record, attribute_getter
from repro.errors import EstimatorError


def diurnal_records(n=3000, seed=151):
    """Traffic peaks mid-window; attribute follows a sine."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        # Rejection-shape the time distribution to peak at t=50.
        while True:
            t = rng.uniform(0, 100)
            if rng.random() < 0.25 + 0.75 * math.exp(
                    -((t - 50) / 20) ** 2):
                break
        out.append(Record(i, lon=rng.uniform(0, 10),
                          lat=rng.uniform(0, 10), t=t,
                          attrs={"v": math.sin(t / 16.0)
                                 + rng.gauss(0, 0.1)}))
    return out


RECORDS = diurnal_records()


def fed(buckets=10, attribute=True):
    est = TimeHistogramEstimator(
        0.0, 100.0, buckets=buckets,
        attribute=attribute_getter("v") if attribute else None)
    est.set_population_size(len(RECORDS))
    for r in RECORDS:
        est.absorb(r)
    return est


class TestTimeHistogram:
    def test_series_is_time_ordered_and_complete(self):
        est = fed()
        series = est.series()
        assert [g.key for g in series] == list(range(10))
        assert sum(g.share for g in series) == pytest.approx(1.0)

    def test_traffic_peak_detected(self):
        est = fed()
        series = est.series()
        peak = max(series, key=lambda g: g.share)
        assert peak.key in (4, 5)  # mid-window

    def test_per_bucket_means_follow_signal(self):
        est = fed()
        series = est.series()
        # sin(t/16): rising early, negative near t ≈ 80.
        assert series[1].mean > series[8].mean

    def test_bucket_bounds(self):
        est = fed(buckets=4)
        assert est.bucket_bounds(0) == (0.0, 25.0)
        assert est.bucket_bounds(3) == (75.0, 100.0)
        with pytest.raises(EstimatorError):
            est.bucket_bounds(4)

    def test_clamping_edges(self):
        est = TimeHistogramEstimator(0.0, 10.0, buckets=2)
        est.absorb(Record(0, 0, 0, t=-5.0))
        est.absorb(Record(1, 0, 0, t=15.0))
        series = est.series()
        assert series[0].samples == 1
        assert series[1].samples == 1

    def test_estimate_returns_ordered_series(self):
        est = fed(buckets=5)
        value = est.estimate().value
        assert [g.key for g in value] == list(range(5))

    def test_rejects_bad_window(self):
        with pytest.raises(EstimatorError):
            TimeHistogramEstimator(10.0, 10.0)
        with pytest.raises(EstimatorError):
            TimeHistogramEstimator(0.0, 1.0, buckets=0)

    def test_empty_raises(self):
        est = TimeHistogramEstimator(0.0, 1.0)
        with pytest.raises(EstimatorError):
            est.series()


class TestTimeseriesThroughLanguage:
    @pytest.fixture()
    def engine(self):
        from repro.core.engine import StormEngine
        eng = StormEngine(seed=7)
        eng.create_dataset("traffic", RECORDS)
        return eng

    def test_parse(self):
        from repro.query.language import parse
        spec = parse("ESTIMATE TIMESERIES(v, 12) FROM traffic "
                     "WHERE TIME(0, 100)")
        assert spec.task.kind == "timeseries"
        assert spec.task.attribute == "v"
        assert spec.task.params["buckets"] == 12

    def test_parse_count_only(self):
        from repro.query.language import parse
        spec = parse("ESTIMATE TIMESERIES(8) FROM traffic "
                     "WHERE TIME(0, 100)")
        assert spec.task.attribute is None

    def test_requires_time(self, engine):
        from repro.errors import StormError
        from repro.query.executor import QueryExecutor
        with pytest.raises(StormError):
            QueryExecutor(engine).execute(
                "ESTIMATE TIMESERIES(8) FROM traffic SAMPLES 10")

    def test_executes(self, engine):
        from repro.query.executor import QueryExecutor
        result = QueryExecutor(engine,
                               rng=random.Random(8)).execute(
            "ESTIMATE TIMESERIES(v, 10) FROM traffic "
            "WHERE REGION(0, 0, 10, 10) AND TIME(0, 100) SAMPLES 800")
        series = result.value
        assert len(series) == 10
        peak = max(series, key=lambda g: g.share)
        assert peak.key in (3, 4, 5, 6)
