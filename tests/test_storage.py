"""Unit tests for the storage engine (DFS, document store, codec,
catalog)."""

import pytest

from repro.core.records import Record
from repro.errors import SchemaError, StorageError
from repro.storage.catalog import Catalog, DatasetInfo
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import (Collection, DocumentStore,
                                          matches_filter)
from repro.storage.json_codec import (canonical_json,
                                      documents_to_records, flatten,
                                      records_to_documents,
                                      rows_to_documents)


class TestDFS:
    def test_write_read_roundtrip(self):
        dfs = SimulatedDFS()
        dfs.write_file("a.txt", b"hello world")
        assert dfs.read_file("a.txt") == b"hello world"

    def test_blocks_and_sizes(self):
        dfs = SimulatedDFS(block_size=4)
        dfs.write_file("a", b"123456789")
        assert dfs.block_count("a") == 3
        assert dfs.file_size("a") == 9

    def test_read_block(self):
        dfs = SimulatedDFS(block_size=4)
        dfs.write_file("a", b"abcdefgh")
        assert dfs.read_block("a", 1) == b"efgh"
        with pytest.raises(StorageError):
            dfs.read_block("a", 5)

    def test_replication_charges_all_replicas(self):
        dfs = SimulatedDFS(machines=4, replication=3, block_size=1024)
        dfs.write_file("a", b"x")
        assert dfs.total_blocks_written() == 3

    def test_append(self):
        dfs = SimulatedDFS()
        dfs.append_file("log", b"one")
        dfs.append_file("log", b"two")
        assert dfs.read_file("log") == b"onetwo"

    def test_delete_and_exists(self):
        dfs = SimulatedDFS()
        dfs.write_file("a", b"x")
        assert dfs.exists("a")
        dfs.delete_file("a")
        assert not dfs.exists("a")
        with pytest.raises(StorageError):
            dfs.read_file("a")

    def test_list_files_prefix(self):
        dfs = SimulatedDFS()
        dfs.write_file("store/a", b"1")
        dfs.write_file("store/b", b"2")
        dfs.write_file("other", b"3")
        assert dfs.list_files("store/") == ["store/a", "store/b"]

    def test_persistence_roundtrip(self, tmp_path):
        root = str(tmp_path / "dfs")
        dfs = SimulatedDFS(root=root)
        dfs.write_file("store/coll.jsonl", b'{"a": 1}\n')
        reloaded = SimulatedDFS(root=root)
        assert reloaded.read_file("store/coll.jsonl") == b'{"a": 1}\n'

    def test_balance(self):
        dfs = SimulatedDFS(machines=4, replication=1)
        for i in range(16):
            dfs.write_file(f"f{i}", b"x")
        assert dfs.balance() == pytest.approx(1.0)

    def test_rejects_bad_config(self):
        with pytest.raises(StorageError):
            SimulatedDFS(machines=0)
        with pytest.raises(StorageError):
            SimulatedDFS(machines=2, replication=3)


class TestFilters:
    DOC = {"a": 5, "b": "x", "c": None}

    def test_equality(self):
        assert matches_filter(self.DOC, {"a": 5})
        assert not matches_filter(self.DOC, {"a": 6})

    def test_comparisons(self):
        assert matches_filter(self.DOC, {"a": {"$gt": 4, "$lte": 5}})
        assert not matches_filter(self.DOC, {"a": {"$lt": 5}})

    def test_in_nin(self):
        assert matches_filter(self.DOC, {"b": {"$in": ["x", "y"]}})
        assert matches_filter(self.DOC, {"b": {"$nin": ["z"]}})

    def test_exists(self):
        assert matches_filter(self.DOC, {"a": {"$exists": True}})
        assert matches_filter(self.DOC, {"zz": {"$exists": False}})
        # None counts as missing.
        assert matches_filter(self.DOC, {"c": {"$exists": False}})

    def test_or_and_not(self):
        assert matches_filter(self.DOC,
                              {"$or": [{"a": 1}, {"b": "x"}]})
        assert matches_filter(self.DOC,
                              {"$and": [{"a": 5}, {"b": "x"}]})
        assert matches_filter(self.DOC, {"$not": {"a": 6}})

    def test_incomparable_types_never_match(self):
        assert not matches_filter({"a": "text"}, {"a": {"$gt": 5}})

    def test_unknown_operator_raises(self):
        with pytest.raises(StorageError):
            matches_filter(self.DOC, {"a": {"$regex": "x"}})
        with pytest.raises(StorageError):
            matches_filter(self.DOC, {"$xor": []})


class TestCollection:
    def test_insert_assigns_ids(self):
        coll = Collection("c")
        i1 = coll.insert_one({"a": 1})
        i2 = coll.insert_one({"a": 2})
        assert i1 != i2
        assert coll.get(i1)["a"] == 1

    def test_duplicate_id_rejected(self):
        coll = Collection("c")
        coll.insert_one({"_id": 7})
        with pytest.raises(StorageError):
            coll.insert_one({"_id": 7})

    def test_find_and_count(self):
        coll = Collection("c")
        coll.insert_many([{"x": i} for i in range(10)])
        assert coll.count({"x": {"$gte": 5}}) == 5
        assert len(list(coll.find())) == 10

    def test_find_returns_copies(self):
        coll = Collection("c")
        cid = coll.insert_one({"x": 1})
        doc = coll.find_one()
        doc["x"] = 99
        assert coll.get(cid)["x"] == 1

    def test_replace_delete(self):
        coll = Collection("c")
        cid = coll.insert_one({"x": 1})
        coll.replace_one(cid, {"x": 2})
        assert coll.get(cid)["x"] == 2
        assert coll.delete_one(cid)
        assert not coll.delete_one(cid)

    def test_delete_many(self):
        coll = Collection("c")
        coll.insert_many([{"x": i} for i in range(10)])
        assert coll.delete_many({"x": {"$lt": 3}}) == 3
        assert len(coll) == 7

    def test_distinct(self):
        coll = Collection("c")
        coll.insert_many([{"k": "a"}, {"k": "b"}, {"k": "a"}])
        assert coll.distinct("k") == ["a", "b"]

    def test_jsonl_roundtrip(self):
        coll = Collection("c")
        coll.insert_many([{"x": 1, "s": "hi"}, {"x": 2}])
        again = Collection.from_jsonl("c", coll.to_jsonl())
        assert sorted(d["x"] for d in again.find()) == [1, 2]


class TestDocumentStore:
    def test_flush_and_reload(self):
        dfs = SimulatedDFS()
        store = DocumentStore(dfs)
        store.collection("tweets").insert_many(
            [{"text": "hello"}, {"text": "world"}])
        store.flush()
        reloaded = DocumentStore(dfs)
        assert reloaded.collection("tweets").count() == 2

    def test_drop(self):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.flush()
        store.drop("a")
        assert "a" not in store.list_collections()
        with pytest.raises(StorageError):
            store.drop("a")

    def test_flush_unknown_collection(self):
        store = DocumentStore()
        with pytest.raises(StorageError):
            store.flush("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(StorageError):
            DocumentStore().collection("")


class TestJsonCodec:
    def test_flatten(self):
        assert flatten({"a": {"b": 1}, "c": 2}) == {"a.b": 1, "c": 2}

    def test_rows_to_documents(self):
        docs = list(rows_to_documents([{"geo": {"lon": 1, "lat": 2}}]))
        assert docs == [{"geo.lon": 1, "geo.lat": 2}]

    def test_documents_to_records(self):
        docs = [{"lon": 1.0, "lat": 2.0, "t": 3.0, "v": 9}]
        (record,) = documents_to_records(docs, "lon", "lat", "t")
        assert record.lon == 1.0 and record.t == 3.0
        assert record.attrs == {"v": 9}

    def test_missing_coordinates_raise(self):
        with pytest.raises(SchemaError):
            list(documents_to_records([{"lat": 2.0}], "lon", "lat"))

    def test_bad_coordinates_raise(self):
        with pytest.raises(SchemaError):
            list(documents_to_records([{"lon": "x", "lat": 1.0}],
                                      "lon", "lat"))

    def test_record_roundtrip(self):
        record = Record(5, lon=1.0, lat=2.0, t=3.0, attrs={"v": 7})
        (doc,) = records_to_documents([record])
        (back,) = documents_to_records([doc], "lon", "lat", "t")
        assert back == record


class TestCatalog:
    def make(self):
        store = DocumentStore()
        return store, Catalog(store)

    def info(self, name="osm"):
        return DatasetInfo(name=name, source="csv:x", mode="import",
                           lon_field="lon", lat_field="lat",
                           time_field="t", record_count=10)

    def test_register_get(self):
        _, catalog = self.make()
        catalog.register(self.info())
        assert catalog.get("osm").record_count == 10

    def test_duplicate_register_rejected(self):
        _, catalog = self.make()
        catalog.register(self.info())
        with pytest.raises(StorageError):
            catalog.register(self.info())

    def test_update(self):
        _, catalog = self.make()
        catalog.register(self.info())
        updated = self.info()
        updated.record_count = 20
        catalog.update(updated)
        assert catalog.get("osm").record_count == 20

    def test_remove_and_names(self):
        _, catalog = self.make()
        catalog.register(self.info("a"))
        catalog.register(self.info("b"))
        assert catalog.names() == ["a", "b"]
        catalog.remove("a")
        assert catalog.names() == ["b"]
        with pytest.raises(StorageError):
            catalog.get("a")

    def test_persists_through_store(self):
        store, catalog = self.make()
        catalog.register(self.info())
        catalog.flush()
        again = Catalog(DocumentStore(store.dfs))
        assert again.get("osm").source == "csv:x"


class TestDFSRename:
    def test_rename_replaces_target_atomically(self):
        dfs = SimulatedDFS()
        dfs.write_file("store/a.jsonl", b"old")
        dfs.write_file("store/a.jsonl.tmp", b"new contents")
        dfs.rename_file("store/a.jsonl.tmp", "store/a.jsonl")
        assert dfs.read_file("store/a.jsonl") == b"new contents"
        assert not dfs.exists("store/a.jsonl.tmp")

    def test_rename_missing_source_raises(self):
        with pytest.raises(StorageError):
            SimulatedDFS().rename_file("nope", "somewhere")

    def test_rename_charges_no_block_io(self):
        dfs = SimulatedDFS()
        dfs.write_file("a", b"x" * 100)
        written = dfs.total_blocks_written()
        dfs.rename_file("a", "b")
        assert dfs.total_blocks_written() == written
        assert dfs.read_file("b") == b"x" * 100

    def test_rename_persists_on_disk_root(self, tmp_path):
        dfs = SimulatedDFS(root=str(tmp_path / "dfs"))
        dfs.write_file("store/a.tmp", b"payload")
        dfs.rename_file("store/a.tmp", "store/a")
        again = SimulatedDFS(root=str(tmp_path / "dfs"))
        assert again.read_file("store/a") == b"payload"
        assert not again.exists("store/a.tmp")


class TestJsonFidelity:
    """Round-trip fidelity: what goes into a collection comes back
    byte-identical through flush/reload — or raises a typed error.
    No silent coercion (the old ``default=str`` path) is allowed."""

    def roundtrip(self, doc):
        coll = Collection("c")
        coll.insert_one(doc)
        payload = coll.to_jsonl()
        again = Collection.from_jsonl("c", payload)
        assert again.to_jsonl() == payload
        return again.get(doc["_id"]), payload

    def test_unicode_keys_and_values(self):
        doc = {"_id": 1, "城市": "北京", "emoji": "🌧️",
               "naïve": {"ключ": "значение"}}
        back, _ = self.roundtrip(doc)
        assert back == doc

    def test_nan_and_infinities_round_trip(self):
        import math
        doc = {"_id": 1, "nan": float("nan"),
               "pinf": float("inf"), "ninf": float("-inf")}
        back, _ = self.roundtrip(doc)
        assert math.isnan(back["nan"])
        assert back["pinf"] == float("inf")
        assert back["ninf"] == float("-inf")

    def test_deeply_nested_payload(self):
        doc = {"_id": 1, "payload": {
            "a": [1, 2.5, None, True, {"b": [[], {}, "x"]}],
            "c": {"d": {"e": {"f": [0.1, -7, "λ"]}}}}}
        back, _ = self.roundtrip(doc)
        assert back == doc

    def test_float_precision_survives(self):
        doc = {"_id": 1, "v": 0.1 + 0.2, "w": 1e-308, "x": 1e308}
        back, _ = self.roundtrip(doc)
        assert back["v"] == doc["v"]
        assert back["w"] == doc["w"] and back["x"] == doc["x"]

    def test_serialisation_is_deterministic(self):
        coll = Collection("c")
        coll.insert_one({"_id": 1, "b": 2, "a": 1})
        assert coll.to_jsonl() == b'{"_id": 1, "a": 1, "b": 2}\n'

    def test_non_serialisable_raises_typed_error(self):
        coll = Collection("c")
        coll.insert_one({"_id": 1, "v": {1, 2, 3}})
        with pytest.raises(StorageError):
            coll.to_jsonl()
        coll2 = Collection("c")
        coll2.insert_one({"_id": 1, "v": b"raw bytes"})
        with pytest.raises(StorageError):
            coll2.to_jsonl()

    def test_canonical_json_error_names_the_problem(self):
        with pytest.raises(StorageError) as err:
            canonical_json({"when": object()})
        assert "not JSON-serialisable" in str(err.value)

    def test_fidelity_through_dfs_flush_and_reload(self, tmp_path):
        dfs = SimulatedDFS(root=str(tmp_path / "dfs"))
        store = DocumentStore(dfs)
        doc = {"_id": 7, "城市": "東京",
               "coords": [float("inf"), float("-inf")],
               "nested": {"α": [1.5, {"β": None}]}}
        store.collection("c").insert_one(doc)
        store.flush("c")
        raw = dfs.read_file("store/c.jsonl")
        again = DocumentStore(SimulatedDFS(root=str(tmp_path / "dfs")))
        assert again.collection("c").to_jsonl() == raw
        back = again.collection("c").get(7)
        assert back["城市"] == "東京"
        assert back["coords"] == [float("inf"), float("-inf")]
