"""Uniformity and snapshot-isolation tests for the tiered LSM path.

Definition 1 does not weaken under ingest: with records spread across
the main tree, sealed runs, and the memtable — with tombstones masking
dead copies in every tier — the merged stream must still be an exact
uniform without-replacement permutation of ``P ∩ Q``.  The chi-square
matrix checks that at sparse/medium/dense fill ratios; the snapshot
suite checks that streams opened mid-ingest are isolated from every
concurrent mutation (insert, delete, seal, compaction).

Chi-square thresholds use the 0.001 quantile with fixed seeds, matching
``test_sampler_uniformity``; the ``stat`` marker lets CI retry the
statistical subset once before failing.
"""

import random

import pytest
from scipy import stats

from repro.core.engine import Dataset
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.sampling.base import take
from repro.storage.lsm import LSMTree, Memtable, SealedRun
from repro.errors import StorageError


def make_records(n, seed=5, start_id=0):
    rng = random.Random(seed)
    return [Record(record_id=start_id + i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10, 2)})
            for i in range(n)]


def tiered_dataset(seed=11, n_main=300, n_new=260, memtable_limit=64,
                   deletes=30):
    """A dataset with every tier populated and tombstones in each.

    ``n_main`` records seed the main tree; ``n_new`` flow through the
    memtable, sealing runs along the way; ``deletes`` random victims
    then scatter tombstones across whichever tiers they live in.
    """
    base = make_records(n_main, seed=seed)
    dataset = Dataset("tiers", base, dims=2, rs_buffer_size=16,
                      build_ls=False, seed=seed)
    lsm = LSMTree(dataset, memtable_limit=memtable_limit,
                  compact_after_runs=999)
    dataset.attach_lsm(lsm)
    for r in make_records(n_new, seed=seed * 3 + 1, start_id=10_000):
        dataset.insert(r)
    rng = random.Random(seed * 7 + 2)
    for rid in rng.sample(sorted(dataset.records), deletes):
        dataset.delete(rid)
    return dataset, lsm


def live_in_range(dataset, rect):
    return {rid for rid, r in dataset.records.items()
            if rect.contains_point(r.key(dataset.dims))}


def rect_for_ratio(dataset, ratio, center=(50.0, 50.0)):
    """A centred square rect whose live fill ratio is ~``ratio``."""
    target = max(2, round(ratio * len(dataset.records)))
    lo_w, hi_w = 0.0, 50.0
    for _ in range(40):
        w = (lo_w + hi_w) / 2
        rect = Rect((center[0] - w, center[1] - w),
                    (center[0] + w, center[1] + w))
        count = len(live_in_range(dataset, rect))
        if count < target:
            lo_w = w
        else:
            hi_w = w
    return Rect((center[0] - hi_w, center[1] - hi_w),
                (center[0] + hi_w, center[1] + hi_w))


def chi_square_pvalue(counts, in_range, total_draws):
    expected = total_draws / len(in_range)
    chi2 = sum((counts.get(rid, 0) - expected) ** 2 / expected
               for rid in in_range)
    return stats.chi2.sf(chi2, df=len(in_range) - 1)


def run_trials(dataset, rect, k, seed, trials, with_replacement=False):
    sampler = dataset.samplers["lsm-tiered"]
    counts = {}
    for trial in range(trials):
        rng = random.Random(seed * 1_000_003 + trial)
        if with_replacement:
            stream = sampler.sample_stream_with_replacement(rect, rng)
        else:
            stream = sampler.sample_stream(rect, rng)
        for entry in take(stream, k):
            counts[entry.item_id] = counts.get(entry.item_id, 0) + 1
    return chi_square_pvalue(counts, live_in_range(dataset, rect),
                             trials * k)


@pytest.mark.stat
class TestTieredUniformity:
    """Chi-square matrix: sparse, medium, dense fill ratios.

    The tier composition is identical across ratios (same dataset);
    what changes is how much of each tier the query covers.
    """

    def test_fill_ratio_001(self):
        dataset, _ = tiered_dataset(seed=31)
        rect = rect_for_ratio(dataset, 0.01)
        assert 2 <= len(live_in_range(dataset, rect)) <= 12
        assert run_trials(dataset, rect, k=1, seed=1,
                          trials=2500) > 1e-3

    def test_fill_ratio_01(self):
        dataset, _ = tiered_dataset(seed=32)
        rect = rect_for_ratio(dataset, 0.1)
        assert run_trials(dataset, rect, k=4, seed=2,
                          trials=1500) > 1e-3

    def test_fill_ratio_05(self):
        dataset, _ = tiered_dataset(seed=33)
        rect = rect_for_ratio(dataset, 0.5)
        assert run_trials(dataset, rect, k=8, seed=3,
                          trials=1200) > 1e-3

    def test_with_replacement_medium_ratio(self):
        dataset, _ = tiered_dataset(seed=34)
        rect = rect_for_ratio(dataset, 0.1)
        assert run_trials(dataset, rect, k=4, seed=4, trials=1500,
                          with_replacement=True) > 1e-3


EVERYTHING = Rect((0, 0), (100, 100))


class TestExactness:
    """The merged WOR stream is a permutation of the live range."""

    def test_full_drain_equals_live_set(self):
        dataset, _ = tiered_dataset(seed=41)
        sampler = dataset.samplers["lsm-tiered"]
        q = sampler.range_count(EVERYTHING)
        got = [e.item_id for e in
               sampler.sample_stream(EVERYTHING, random.Random(9))]
        assert q == len(got) == len(set(got))
        assert set(got) == set(dataset.records)

    def test_partial_rect_drain(self):
        dataset, _ = tiered_dataset(seed=42)
        rect = Rect((20, 20), (70, 70))
        sampler = dataset.samplers["lsm-tiered"]
        q = sampler.range_count(rect)
        truth = live_in_range(dataset, rect)
        got = {e.item_id for e in
               sampler.sample_stream(rect, random.Random(10))}
        assert q == len(truth) and got == truth

    def test_tombstones_mask_every_tier(self):
        dataset, lsm = tiered_dataset(seed=43, deletes=0)
        in_main = next(rid for rid in dataset.records
                       if rid not in lsm._run_of
                       and rid not in lsm.memtable)
        in_run = next(iter(lsm._run_of))
        in_mem = next(iter(lsm.memtable.records))
        for rid in (in_main, in_run, in_mem):
            assert dataset.delete(rid)
        got = {e.item_id for e in
               dataset.samplers["lsm-tiered"].sample_stream(
                   EVERYTHING, random.Random(11))}
        assert got == set(dataset.records)
        assert not {in_main, in_run, in_mem} & got

    def test_default_sampler_is_tiered(self):
        dataset, _ = tiered_dataset(seed=44)
        assert dataset.sampler_for(EVERYTHING).name == "lsm-tiered"


class TestSnapshotIsolation:
    """Streams opened mid-ingest never see concurrent mutations."""

    def test_insert_after_open_is_invisible(self):
        dataset, _ = tiered_dataset(seed=51)
        sampler = dataset.samplers["lsm-tiered"]
        truth = set(dataset.records)
        q = sampler.range_count(EVERYTHING)
        stream = sampler.sample_stream(EVERYTHING, random.Random(12))
        first = [next(stream) for _ in range(5)]
        for r in make_records(100, seed=512, start_id=50_000):
            dataset.insert(r)
        got = {e.item_id for e in first} | \
            {e.item_id for e in stream}
        assert got == truth and q == len(truth)

    def test_delete_after_open_still_streams(self):
        """Classic snapshot semantics: the stream covers records that
        were live at open, even if deleted mid-stream."""
        dataset, _ = tiered_dataset(seed=52)
        sampler = dataset.samplers["lsm-tiered"]
        truth = set(dataset.records)
        sampler.range_count(EVERYTHING)
        stream = sampler.sample_stream(EVERYTHING, random.Random(13))
        victims = random.Random(14).sample(sorted(truth), 20)
        for rid in victims:
            dataset.delete(rid)
        assert {e.item_id for e in stream} == truth

    def test_seal_and_compaction_mid_stream(self):
        """A seal moves memtable→run and a compaction swaps the main
        tree's node graph; the pinned snapshot survives both."""
        dataset, lsm = tiered_dataset(seed=53)
        sampler = dataset.samplers["lsm-tiered"]
        truth = set(dataset.records)
        assert lsm.runs and lsm.memtable.records
        sampler.range_count(EVERYTHING)
        stream = sampler.sample_stream(EVERYTHING, random.Random(15))
        first = [next(stream) for _ in range(10)]
        lsm.seal()
        lsm.compact()
        assert not lsm.runs and not lsm.memtable.records
        got = {e.item_id for e in first} | \
            {e.item_id for e in stream}
        assert got == truth

    def test_wr_stream_is_isolated(self):
        dataset, lsm = tiered_dataset(seed=54)
        sampler = dataset.samplers["lsm-tiered"]
        truth = set(dataset.records)
        sampler.range_count(EVERYTHING)
        stream = sampler.sample_stream_with_replacement(
            EVERYTHING, random.Random(16))
        drawn = set()
        for _ in range(50):
            drawn.add(next(stream).item_id)
        for r in make_records(50, seed=541, start_id=60_000):
            dataset.insert(r)
        lsm.seal()
        lsm.compact()
        for _ in range(200):
            drawn.add(next(stream).item_id)
        assert drawn <= truth

    def test_canonical_cache_stays_hot_under_ingest(self):
        """Memtable inserts must not bump the main tree's structural
        version — repeated queries hit the canonical-set cache."""
        dataset, _ = tiered_dataset(seed=55)
        sampler = dataset.samplers["lsm-tiered"]
        rect = Rect((10, 10), (90, 90))
        sampler.range_count(rect)
        take(sampler.sample_stream(rect, random.Random(17)), 4)
        hits0 = dataset.tree.canon_hits
        for i in range(10):
            dataset.insert(Record(record_id=70_000 + i, lon=50.0,
                                  lat=50.0, attrs={}))
            sampler.range_count(rect)
            take(sampler.sample_stream(rect, random.Random(18 + i)), 4)
        assert dataset.tree.canon_hits - hits0 >= 10


class TestTierMechanics:
    """Unit-level behaviour of the memtable and sealed runs."""

    def test_memtable_duplicate_insert_raises(self):
        mem = Memtable(2)
        mem.insert(Record(record_id=1, lon=1.0, lat=2.0, attrs={}))
        with pytest.raises(StorageError):
            mem.insert(Record(record_id=1, lon=3.0, lat=4.0, attrs={}))

    def test_memtable_in_range(self):
        mem = Memtable(2)
        mem.insert(Record(record_id=1, lon=10.0, lat=10.0, attrs={}))
        mem.insert(Record(record_id=2, lon=90.0, lat=90.0, attrs={}))
        rect = Rect((0, 0), (50, 50))
        assert [r.record_id for r in mem.in_range(rect)] == [1]
        assert mem.remove(1).record_id == 1
        assert mem.remove(1) is None

    def test_sealed_run_tree_is_lazy_and_consistent(self):
        records = make_records(64, seed=61)
        run = SealedRun(7, records, EVERYTHING, 2)
        assert run._tree is None
        rect = Rect((0, 0), (50, 50))
        expect = sum(1 for r in records
                     if rect.contains_point(r.key(2)))
        assert run.range_count(rect) == expect
        assert run._tree is not None
        got = {e.item_id for e in
               run.sampler.sample_stream(EVERYTHING,
                                         random.Random(19))}
        assert got == {r.record_id for r in records}

    def test_seal_then_compact_counts(self):
        dataset, lsm = tiered_dataset(seed=62)
        run_records = lsm.run_records()
        assert run_records > 0
        lsm.seal()
        moved = lsm.compact()
        assert moved >= run_records
        assert lsm.tier_shape()["sealed_runs"] == 0
        assert lsm.tier_shape()["memtable_records"] == 0

    def test_explain_reports_tier_shape(self):
        from repro.core.engine import StormEngine
        from repro.query.executor import QueryExecutor
        dataset, _ = tiered_dataset(seed=63)
        engine = StormEngine(seed=63)
        engine.register(dataset)
        executor = QueryExecutor(engine, rng=random.Random(63))
        report = executor.explain_report(
            "ESTIMATE COUNT FROM tiers WHERE REGION(0, 0, 100, 100)")
        assert "lsm memtable records" in report
        assert "lsm sealed runs" in report
