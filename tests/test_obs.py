"""Tests for the unified observability layer (repro.obs).

Covers the metrics registry, trace spans, exporters, the EXPLAIN
report, the CLI surfaces, and the acceptance criterion that a traced
query's leaf-span cost deltas sum exactly to the session totals.
"""

import io
import json

import pytest

from repro.cli import main
from repro.core.engine import StormEngine
from repro.core.records import STRange
from repro.core.session import StopCondition
from repro.distributed.cluster import NetworkModel, NetworkStats
from repro.index.cost import CostCounter, CostModel
from repro.obs import (NULL_OBS, NULL_REGISTRY, NULL_TRACER,
                       MetricsRegistry, Observability, Tracer,
                       metric_key, render_dashboard, write_jsonl)
from repro.query.executor import QueryExecutor
from repro.storage.dfs import BlockStats, SimulatedDFS
from repro.workloads.osm import OSMWorkload

US = STRange(-125, 25, -65, 50)


class TestMetricsRegistry:
    def test_metric_key_sorts_labels(self):
        assert metric_key("x", {}) == "x"
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"

    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", dataset="osm")
        c1.inc()
        c1.inc(4)
        assert reg.counter("hits", dataset="osm") is c1
        assert c1.value == 5
        # Different labels are a different instrument.
        assert reg.counter("hits", dataset="tweets") is not c1

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        g = reg.gauge("height")
        g.set(3)
        g.add(2)
        assert g.value == 5
        h = reg.histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_snapshot_deterministic_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("g", x=1).set(7)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g{x=1}"] == 7
        assert snap["histograms"]["h"]["count"] == 1
        assert reg.snapshot() == snap
        reg.reset()
        empty = reg.snapshot()
        assert not empty["counters"] and not empty["gauges"] \
            and not empty["histograms"]

    def test_null_registry_records_nothing(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("x")
        c.inc(100)
        assert c.value == 0
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(1.0)
        snap = NULL_REGISTRY.snapshot()
        assert not snap["counters"] and not snap["gauges"] \
            and not snap["histograms"]


class TestTracer:
    def test_span_tree_with_fake_clock(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("outer") as outer:
            with tracer.span("inner", phase="x") as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.attrs["phase"] == "x"
        assert outer.start == 0.0 and inner.start == 1.0
        assert inner.duration == 1.0 and outer.duration == 3.0

    def test_span_cost_delta(self):
        cost = CostCounter()
        cost.charge_node(1)
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("phase", cost=cost) as span:
            cost.charge_node(5)
            cost.charge_node(6)
            cost.charge_entries(10)
        # Only the work inside the span is attributed to it.
        assert span.cost.node_reads == 2
        assert span.cost.sequential_reads == 1  # 5 then 6
        assert span.cost.leaf_entries_scanned == 10

    def test_callable_source(self):
        backing = NetworkStats()
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("net", net=lambda: backing.snapshot()) as span:
            backing.charge(messages=3, payload_bytes=64)
        assert span.net.messages == 3
        assert span.net.payload_bytes == 64

    def test_out_of_order_end_keeps_tree(self):
        tracer = Tracer(clock=lambda: 0.0)
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(outer)  # generator-style: outer closes first
        tracer.end(inner)
        assert outer.children == [inner]
        assert outer.closed and inner.closed
        tracer.end(inner)  # idempotent
        assert [s.name for s in outer.walk()] == ["outer", "inner"]

    def test_drain_and_flatten(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        roots = tracer.drain()
        assert tracer.roots == []
        rows = roots[0].flatten()
        assert rows[0]["name"] == "a" and rows[0]["parent_id"] is None
        assert rows[1]["name"] == "b"
        assert rows[1]["parent_id"] == rows[0]["span_id"]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.begin("anything", cost=CostCounter())
        span.set("k", 1)
        NULL_TRACER.end(span)
        assert NULL_TRACER.roots == []
        with NULL_TRACER.span("x") as s:
            assert s is span  # the shared inert span


def traced_avg(max_samples=200, n=3000, method="rs-tree"):
    """One traced engine.avg run; returns (obs, final ProgressPoint)."""
    obs = Observability()
    engine = StormEngine(seed=3, obs=obs)
    engine.create_dataset(
        "osm", OSMWorkload(n=n, seed=5).generate(), dims=2)
    final = engine.avg("osm", "altitude", US,
                       stop=StopCondition(max_samples=max_samples),
                       method=method)
    return obs, final


class TestTracedQueryAcceptance:
    """The PR's acceptance criterion: leaf-span cost deltas sum to the
    session totals for a single traced query."""

    @pytest.fixture(scope="class")
    def traced(self):
        return traced_avg()

    def test_span_tree_shape(self, traced):
        obs, final = traced
        root = obs.tracer.last_root
        assert root is not None and root.name == "query"
        assert root.closed
        assert root.attrs["sampler"] == "rs-tree"
        assert root.attrs["dataset"] == "osm"
        assert root.attrs["k"] == final.k
        names = [c.name for c in root.children]
        assert names == ["range_count", "sample_stream"]

    def test_leaf_deltas_sum_to_session_totals(self, traced):
        obs, final = traced
        root = obs.tracer.last_root
        merged = CostCounter()
        for leaf in root.leaves():
            assert leaf.cost is not None
            merged.merge(leaf.cost)
        assert merged.as_dict() == final.cost.as_dict()
        # Stops fire at report boundaries, so k lands on the first
        # report at or past max_samples.
        assert merged.samples_emitted == final.k >= 200

    def test_registry_agrees_with_trace(self, traced):
        obs, final = traced
        snap = obs.registry.snapshot()
        key = "storm.session.samples{dataset=osm,sampler=rs-tree}"
        assert snap["counters"][key] == final.k
        assert snap["counters"][
            "storm.sampler.samples{sampler=rs-tree}"] == final.k
        assert snap["counters"][
            "storm.session.runs{dataset=osm,sampler=rs-tree}"] == 1
        assert snap["counters"][
            "storm.session.stops{dataset=osm,"
            "reason=sample budget reached}"] == 1
        assert snap["gauges"]["storm.dataset.records{dataset=osm}"] \
            == 3000
        assert snap["gauges"]["storm.index.height{dataset=osm}"] >= 1

    def test_jsonl_export(self, traced):
        obs, final = traced
        out = io.StringIO()
        lines = write_jsonl(out, obs.tracer.roots,
                            registry=obs.registry)
        rows = [json.loads(line) for line in
                out.getvalue().splitlines()]
        assert len(rows) == lines
        spans = [r for r in rows if r["type"] == "span"]
        metrics = [r for r in rows if r["type"] == "metrics"]
        assert len(metrics) == 1
        by_name = {r["name"]: r for r in spans}
        assert by_name["sample_stream"]["parent_id"] \
            == by_name["query"]["span_id"]
        assert by_name["sample_stream"]["cost"]["samples_emitted"] \
            == final.k
        assert "storm.session.runs{dataset=osm,sampler=rs-tree}" \
            in metrics[0]["counters"]

    def test_dashboard_renders_same_registry(self, traced):
        obs, _ = traced
        text = render_dashboard(obs.registry)
        assert "== storm metrics ==" in text
        assert "storm.session.runs{dataset=osm,sampler=rs-tree}" \
            in text
        assert "storm.index.height{dataset=osm}" in text

    def test_untraced_run_records_nothing(self):
        engine = StormEngine(seed=3)
        engine.create_dataset(
            "osm", OSMWorkload(n=500, seed=5).generate(), dims=2)
        final = engine.avg("osm", "altitude", US,
                           stop=StopCondition(max_samples=50))
        assert final.k >= 50
        assert engine.obs is NULL_OBS
        assert NULL_OBS.tracer.roots == []
        snap = NULL_OBS.registry.snapshot()
        assert not snap["counters"]


class TestDistributedTracing:
    def test_dist_fanout_span_carries_network_delta(self):
        from repro.distributed.dataset import DistributedDataset
        from repro.core.estimators.aggregates import AvgEstimator
        from repro.core.records import attribute_getter
        import random as _random

        obs = Observability()
        ds = DistributedDataset(
            "dosm", OSMWorkload(n=400, seed=9).generate(),
            n_workers=3, dims=2, seed=9, obs=obs)
        session = ds.session(US,
                             AvgEstimator(attribute_getter("altitude")),
                             rng=_random.Random(1))
        final = session.run_to_stop(StopCondition(max_samples=100_000))
        assert final.reason == "exhausted (exact result)"
        root = obs.tracer.last_root
        fanout = root.find("dist_fanout")
        assert fanout is not None and fanout.closed
        assert fanout.net is not None and fanout.net.messages > 0
        assert fanout.cost is not None and fanout.cost.node_reads > 0
        assert fanout.attrs["workers"] == 3
        snap = obs.registry.snapshot()
        assert snap["counters"]["storm.cluster.messages"] \
            == fanout.net.messages

    def test_total_worker_cost_matches_hand_sum(self):
        from repro.distributed.dist_index import DistributedSTIndex
        from repro.distributed.dist_sampler import DistributedSampler
        import random as _random

        index = DistributedSTIndex(
            OSMWorkload(n=300, seed=2).generate(), n_workers=4,
            dims=2, seed=2)
        DistributedSampler(index).sample(US, 64, _random.Random(3))
        merged = index.cluster.total_worker_cost()
        assert merged.node_reads == sum(
            w.cost.node_reads for w in index.cluster.workers)
        assert merged.node_reads > 0


class TestCostCounterSnapshotContract:
    """Satellite: snapshot() must preserve ``_last_block``."""

    def test_snapshot_preserves_locality_state(self):
        cost = CostCounter()
        cost.charge_node(7)
        snap = cost.snapshot()
        # A counter resumed from the snapshot classifies the adjacent
        # next block as sequential, exactly as the original would.
        snap.charge_node(8)
        assert snap.sequential_reads == 1
        cost.charge_node(8)
        assert cost.sequential_reads == 1
        assert snap.as_dict() == cost.as_dict()

    def test_delta_is_pure_tallies(self):
        cost = CostCounter()
        cost.charge_node(7)
        before = cost.snapshot()
        cost.charge_node(8)
        delta = cost.delta_from(before)
        assert delta.node_reads == 1 and delta.sequential_reads == 1
        # The delta carries no locality state: a fresh charge of the
        # next adjacent block is classified random, as for a new
        # counter.
        delta.charge_node(9)
        assert delta.random_reads == 1

    def test_merge_sums_and_clears_locality(self):
        a = CostCounter()
        a.charge_node(1)
        b = CostCounter()
        b.charge_node(2)
        b.charge_node(3)
        a.merge(b)
        assert a.node_reads == 3
        a.charge_node(4)  # would be "sequential" had state leaked
        assert a.random_reads == 3


class TestCostArithmetic:
    """Satellite: CostModel / NetworkStats arithmetic."""

    def test_simulated_seconds_weighted_sum(self):
        model = CostModel(random_read_seconds=1.0,
                          sequential_read_seconds=0.5,
                          entry_scan_seconds=0.25,
                          per_sample_cpu_seconds=0.125)
        cost = CostCounter(node_reads=6, random_reads=2,
                           sequential_reads=4,
                           leaf_entries_scanned=8, samples_emitted=16)
        assert model.simulated_seconds(cost) == pytest.approx(
            2 * 1.0 + 4 * 0.5 + 8 * 0.25 + 16 * 0.125)
        assert model.simulated_seconds(CostCounter()) == 0.0

    def test_network_seconds_latency_plus_bandwidth(self):
        model = NetworkModel(latency_seconds=0.5,
                             bandwidth_bytes_per_second=100.0)
        stats = NetworkStats(messages=4, payload_bytes=200)
        assert stats.seconds(model) == pytest.approx(
            4 * 0.5 + 200 / 100.0)
        assert NetworkStats().seconds(model) == 0.0

    def test_network_stats_merge_and_delta(self):
        a = NetworkStats(messages=1, payload_bytes=10)
        b = NetworkStats(messages=2, payload_bytes=20)
        a.merge(b)
        assert (a.messages, a.payload_bytes) == (3, 30)
        delta = a.delta_from(b)
        assert (delta.messages, delta.payload_bytes) == (1, 10)


class TestBlockStatsMerge:
    """Satellite: BlockStats.merge / SimulatedDFS.total_stats."""

    def test_merge_sums_all_tallies(self):
        a = BlockStats(blocks_read=1, blocks_written=2, bytes_read=3,
                       bytes_written=4)
        b = BlockStats(blocks_read=10, blocks_written=20,
                       bytes_read=30, bytes_written=40)
        a.merge(b)
        assert a.as_dict() == {"blocks_read": 11, "blocks_written": 22,
                               "bytes_read": 33, "bytes_written": 44}

    def test_total_stats_replaces_hand_summing(self):
        dfs = SimulatedDFS(machines=3, block_size=64, replication=2)
        dfs.write_file("a", b"x" * 200)
        dfs.read_file("a")
        total = dfs.total_stats()
        assert total.blocks_written == sum(
            s.blocks_written for s in dfs.stats)
        assert total.blocks_read == sum(
            s.blocks_read for s in dfs.stats)
        assert dfs.total_blocks_written() == total.blocks_written
        assert dfs.total_blocks_read() == total.blocks_read
        # The result is an independent snapshot, not a live view.
        before = dfs.total_stats()
        dfs.read_file("a")
        assert dfs.total_stats().blocks_read > before.blocks_read

    def test_dfs_metrics_flow_to_registry(self):
        obs = Observability()
        dfs = SimulatedDFS(machines=2, block_size=64, replication=1,
                           obs=obs)
        dfs.write_file("a", b"y" * 100)
        dfs.read_file("a")
        snap = obs.registry.snapshot()
        assert snap["counters"]["storm.dfs.blocks_written"] \
            == dfs.total_stats().blocks_written
        assert snap["counters"]["storm.dfs.blocks_read"] \
            == dfs.total_stats().blocks_read


class TestExplainReport:
    @pytest.fixture(scope="class")
    def executor(self):
        obs = Observability()
        engine = StormEngine(seed=7, obs=obs)
        engine.create_dataset(
            "osm", OSMWorkload(n=2000, seed=7).generate(), dims=2)
        import random as _random
        return QueryExecutor(engine, rng=_random.Random(7))

    def test_report_sections(self, executor):
        report = executor.explain_report(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(-125, 25, -65, 50) SAMPLES 128")
        assert "plan:" in report
        assert "phases (simulated seconds, disk cost model):" in report
        assert "range_count" in report and "sample_stream" in report
        assert "total" in report
        assert "stop: sample budget reached" in report
        assert "estimate: value=" in report

    def test_forced_method_noted(self, executor):
        report = executor.explain_report(
            "ESTIMATE COUNT FROM osm WHERE REGION(-125, 25, -65, 50) "
            "USING random-path SAMPLES 64")
        assert "method forced via USING: random-path" in report

    def test_explain_and_stats_share_registry(self, executor):
        registry = executor.obs.registry
        roots_before = len(executor.obs.tracer.roots)
        executor.explain_report(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(-125, 25, -65, 50) SAMPLES 32")
        # Private tracer: no new roots on the executor's tracer ...
        assert len(executor.obs.tracer.roots) == roots_before
        # ... but metrics landed in the shared registry, so the
        # dashboard reflects the explained query too.
        text = render_dashboard(registry)
        assert "storm.session.runs{dataset=osm,sampler=" in text

    def test_executor_attaches_trace(self, executor):
        result = executor.execute(
            "ESTIMATE COUNT FROM osm WHERE REGION(-125, 25, -65, 50) "
            "SAMPLES 16")
        assert result.trace is not None
        assert result.trace.name == "query"
        assert result.trace.find("sample_stream") is not None

    def test_plain_explain_keyword_still_plan_only(self, executor):
        result = executor.execute(
            "EXPLAIN ESTIMATE COUNT FROM osm "
            "WHERE REGION(-125, 25, -65, 50)")
        assert result.final is None and result.trace is None
        assert "chosen" in result.explanation


class TestCLIObservability:
    def test_stats_subcommand(self, capsys):
        rc = main(["stats", "--dataset", "osm", "--n", "400",
                   "--query",
                   "ESTIMATE COUNT FROM osm "
                   "WHERE REGION(-125, 25, -65, 50)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== storm metrics ==" in out
        assert "storm.session.runs{dataset=osm,sampler=" in out
        assert "storm.dataset.records{dataset=osm}" in out

    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(["--dataset", "osm", "--n", "400",
                   "--trace", str(trace), "--query",
                   "ESTIMATE AVG(altitude) FROM osm "
                   "WHERE REGION(-125, 25, -65, 50) SAMPLES 64"])
        assert rc == 0
        rows = [json.loads(line)
                for line in trace.read_text().splitlines()]
        spans = [r for r in rows if r["type"] == "span"]
        metrics = [r for r in rows if r["type"] == "metrics"]
        assert {"query", "range_count", "sample_stream"} \
            <= {r["name"] for r in spans}
        assert len(metrics) == 1  # one closing snapshot
        assert any(name.startswith("storm.session.samples")
                   for name in metrics[0]["counters"])

    def test_explain_analyze_one_shot(self, capsys):
        rc = main(["--dataset", "osm", "--n", "400", "--query",
                   "EXPLAIN ANALYZE ESTIMATE AVG(altitude) FROM osm "
                   "WHERE REGION(-125, 25, -65, 50) SAMPLES 32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "phases (simulated seconds, disk cost model):" in out
        assert "stop: sample budget reached" in out

    def test_stats_subcommand_without_query(self, capsys):
        # 'stats' with no --query prints the load-time dashboard
        # (dataset/index gauges) and exits without entering the REPL.
        rc = main(["stats", "--dataset", "osm", "--n", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== storm metrics ==" in out
        assert "storm.dataset.records{dataset=osm}" in out

    def test_repl_stats_command(self, capsys, monkeypatch):
        lines = iter([
            "ESTIMATE COUNT FROM osm "
            "WHERE REGION(-125, 25, -65, 50)",
            "stats",
            "EXPLAIN ANALYZE ESTIMATE COUNT FROM osm "
            "WHERE REGION(-125, 25, -65, 50) SAMPLES 16",
            "quit",
        ])
        monkeypatch.setattr("builtins.input",
                            lambda prompt="": next(lines))
        rc = main(["--dataset", "osm", "--n", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "value=300" in out
        # REPL runs untraced by default: the dashboard is empty.
        assert "== storm metrics ==" in out
        assert "plan:" in out  # EXPLAIN ANALYZE still works untraced


class TestUpdateInstrumentation:
    def test_update_batch_span_and_counters(self):
        from repro.core.records import Record
        from repro.updates.manager import UpdateBatch, UpdateManager

        obs = Observability()
        engine = StormEngine(seed=1, obs=obs)
        dataset = engine.create_dataset(
            "osm", OSMWorkload(n=200, seed=1).generate(), dims=2)
        manager = UpdateManager(dataset)
        fresh = [Record(record_id=10_000 + i, lon=-100.0 + i,
                        lat=40.0, t=0.0) for i in range(5)]
        manager.apply(UpdateBatch(inserts=fresh))
        snap = obs.registry.snapshot()
        assert snap["counters"][
            "storm.updates.inserted{dataset=osm}"] == 5
        assert snap["counters"][
            "storm.dataset.inserts{dataset=osm}"] == 5
        assert snap["gauges"]["storm.dataset.records{dataset=osm}"] \
            == 205
        spans = [s for s in obs.tracer.roots
                 if s.name == "update_batch"]
        assert len(spans) == 1
        assert spans[0].attrs["inserts"] == 5


class TestBenchHarnessRegistry:
    def test_fig3a_run_one_feeds_registry_and_spans(self):
        from repro.bench.harness import Fig3aRunner, build_osm_dataset

        obs = Observability()
        dataset, workload = build_osm_dataset(n=1500, seed=17, obs=obs)
        runner = Fig3aRunner(dataset, workload)
        assert runner.obs is obs  # inherited from the dataset
        wall, simulated, reads = runner.run_one("rs-tree", 32)
        assert wall > 0 and simulated > 0 and reads > 0
        snap = obs.registry.snapshot()
        assert snap["counters"][
            "storm.bench.runs{method=rs-tree}"] == 1
        assert snap["histograms"][
            "storm.bench.simulated_seconds{method=rs-tree}"][
                "count"] == 1
        span = obs.tracer.last_root
        assert span.name == "bench_fig3a"
        assert span.cost.node_reads == reads
