"""Tests for the 1-d independent range sampling extension."""

import random
from collections import Counter

import pytest
from scipy import stats

from repro.core.sampling.base import take
from repro.errors import EmptyRangeError, IndexError_
from repro.extensions.irs1d import IRS1D


def build(n=500, seed=7):
    rng = random.Random(seed)
    values = [rng.uniform(0, 1000) for _ in range(n)]
    return IRS1D(enumerate(values)), values


class TestRankRange:
    def test_counts_match_brute_force(self):
        irs, values = build()
        for lo, hi in [(0, 1000), (100, 300), (999, 1000), (5, 5)]:
            want = sum(1 for v in values if lo <= v <= hi)
            assert irs.range_count(lo, hi) == want

    def test_inverted_rejected(self):
        irs, _ = build()
        with pytest.raises(IndexError_):
            irs.rank_range(10, 5)

    def test_len(self):
        irs, values = build()
        assert len(irs) == len(values)


class TestSampling:
    def test_drain_matches_brute_force(self, rng):
        irs, values = build()
        lo, hi = 200, 700
        got = [i for i, _ in irs.sample_stream(lo, hi, rng)]
        want = {i for i, v in enumerate(values) if lo <= v <= hi}
        assert len(got) == len(set(got))
        assert set(got) == want

    def test_prefix_memory_is_sparse(self, rng):
        """Only consumed slots are tracked: taking 5 of 100k must not
        allocate 100k entries."""
        irs = IRS1D.from_values(list(range(100_000)))
        stream = irs.sample_stream(0, 99_999, rng)
        got = take(stream, 5)
        assert len(got) == 5

    def test_sample_one_empty_raises(self, rng):
        irs, _ = build()
        with pytest.raises(EmptyRangeError):
            irs.sample_one(2000, 3000, rng)

    def test_with_replacement_repeats(self, rng):
        irs, values = build(n=50)
        got = take(irs.sample_stream_with_replacement(0, 1000, rng),
                   200)
        ids = [i for i, _ in got]
        assert len(set(ids)) < len(ids)

    def test_with_replacement_empty_silent(self, rng):
        irs, _ = build()
        assert take(irs.sample_stream_with_replacement(2000, 3000, rng),
                    3) == []

    def test_values_in_range(self, rng):
        irs, _ = build()
        for _, v in take(irs.sample_stream(100, 200, rng), 20):
            assert 100 <= v <= 200


class TestIndependence:
    def test_first_sample_uniform(self):
        irs, values = build(n=120, seed=9)
        lo, hi = 100, 900
        in_range = [i for i, v in enumerate(values) if lo <= v <= hi]
        trials = 4000
        counts = Counter()
        for t in range(trials):
            i, _ = irs.sample_one(lo, hi, random.Random(t))
            counts[i] += 1
        expected = trials / len(in_range)
        chi2 = sum((counts.get(i, 0) - expected) ** 2 / expected
                   for i in in_range)
        assert stats.chi2.sf(chi2, df=len(in_range) - 1) > 1e-3

    def test_across_query_independence(self):
        """Unlike buffered samplers, repeated identical queries with the
        same fresh rng state produce independent draws — correlation of
        consecutive queries' first samples ~ uniform over pairs."""
        irs, values = build(n=60, seed=10)
        lo, hi = 0, 1000
        rng = random.Random(42)
        pairs = Counter()
        trials = 3000
        for _ in range(trials):
            a, _ = irs.sample_one(lo, hi, rng)
            b, _ = irs.sample_one(lo, hi, rng)
            pairs[a == b] += 1
        # P(a == b) should be ~1/n, not 0 (which buffered
        # without-replacement reuse would produce).
        expected_collisions = trials / len(values)
        assert pairs[True] == pytest.approx(expected_collisions,
                                            abs=4 * expected_collisions
                                            ** 0.5 + 2)


class TestStatic:
    def test_updates_rejected(self):
        irs, _ = build()
        with pytest.raises(IndexError_):
            irs.insert(1, 2.0)
        with pytest.raises(IndexError_):
            irs.delete(1, 2.0)

    def test_duplicate_values_fine(self, rng):
        irs = IRS1D([(0, 5.0), (1, 5.0), (2, 5.0)])
        got = {i for i, _ in irs.sample_stream(5, 5, rng)}
        assert got == {0, 1, 2}
