"""Correctness tests shared by all five samplers.

Each sampler must produce a without-replacement stream that (a) only emits
in-range points, (b) never repeats a point, and (c) when drained fully,
emits exactly ``P ∩ Q``.
"""

import random

import pytest

from repro.core.geometry import Rect
from repro.core.sampling import (LSTree, LSTreeSampler, QueryFirstSampler,
                                 RandomPathSampler, RSTreeSampler,
                                 SampleFirstSampler)
from repro.core.sampling.base import take
from repro.errors import EmptyRangeError
from repro.index.hilbert_rtree import HilbertRTree
from repro.index.rtree import RTree

from tests.conftest import brute_force_range, make_points

BOUNDS = Rect((0, 0), (100, 100))
POINTS = make_points(1500, seed=42)


def _plain_tree() -> RTree:
    tree = RTree(2, leaf_capacity=16, branch_capacity=8)
    tree.bulk_load(POINTS)
    return tree


def _hilbert_tree() -> HilbertRTree:
    tree = HilbertRTree(2, BOUNDS, leaf_capacity=16, branch_capacity=8)
    tree.bulk_load(POINTS)
    return tree


def make_sampler(name: str):
    if name == "query-first":
        return QueryFirstSampler(_plain_tree())
    if name == "sample-first":
        return SampleFirstSampler(_plain_tree())
    if name == "random-path":
        return RandomPathSampler(_plain_tree())
    if name == "ls-tree":
        forest = LSTree(2, rng=random.Random(1), leaf_capacity=16,
                        branch_capacity=8)
        forest.bulk_load(POINTS)
        return LSTreeSampler(forest)
    if name == "rs-tree":
        sampler = RSTreeSampler(_hilbert_tree(), buffer_size=16,
                                rng=random.Random(2))
        sampler.prepare()
        return sampler
    raise AssertionError(name)


ALL = ["query-first", "sample-first", "random-path", "ls-tree", "rs-tree"]

QUERIES = [
    Rect((20, 20), (80, 80)),
    Rect((0, 0), (100, 100)),
    Rect((45, 45), (55, 55)),
    Rect((0, 0), (8, 8)),  # sparse corner: 7 points under this seed
]


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("box", QUERIES)
class TestWithoutReplacementStream:
    def test_all_in_range_no_dups_exhaustive(self, name, box, rng):
        sampler = make_sampler(name)
        want = brute_force_range(POINTS, box)
        got = []
        for entry in sampler.sample_stream(box, rng):
            assert box.contains_point(entry.point)
            got.append(entry.item_id)
        assert len(got) == len(set(got)), f"{name} repeated a sample"
        assert set(got) == want, f"{name} missed or invented points"

    def test_prefix_is_partial(self, name, box, rng):
        sampler = make_sampler(name)
        q = sampler.range_count(box)
        k = max(1, q // 10)
        prefix = take(sampler.sample_stream(box, rng), k)
        assert len(prefix) == min(k, q)
        assert len({e.item_id for e in prefix}) == len(prefix)


@pytest.mark.parametrize("name", ALL)
class TestEdgeCases:
    def test_empty_range(self, name, rng):
        sampler = make_sampler(name)
        box = Rect((200, 200), (300, 300))
        if name == "sample-first":
            with pytest.raises(EmptyRangeError):
                list(sampler.sample_stream(box, rng))
        else:
            assert list(sampler.sample_stream(box, rng)) == []

    def test_range_count_exact(self, name):
        sampler = make_sampler(name)
        box = Rect((10, 30), (60, 90))
        assert sampler.range_count(box) == len(
            brute_force_range(POINTS, box))

    def test_singleton_range(self, name, rng):
        sampler = make_sampler(name)
        pid, pt = POINTS[7]
        box = Rect(pt, pt)
        got = [e.item_id for e in sampler.sample_stream(box, rng)]
        assert got == [pid]

    def test_sample_helper(self, name, rng):
        sampler = make_sampler(name)
        got = sampler.sample(Rect((0, 0), (100, 100)), 25, rng)
        assert len(got) == 25


class TestSamplerSpecifics:
    def test_sample_first_refresh(self, rng):
        tree = _plain_tree()
        sampler = SampleFirstSampler(tree)
        tree.insert(99_999, (50.0, 50.0))
        sampler.refresh()
        box = Rect((0, 0), (100, 100))
        drained = {e.item_id for e in sampler.sample_stream(box, rng)}
        assert 99_999 in drained

    def test_sample_first_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            SampleFirstSampler(_plain_tree(), attempt_factor=0)

    def test_random_path_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            RandomPathSampler(_plain_tree(), enumerate_threshold=0.0)

    def test_rs_tree_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            RSTreeSampler(_hilbert_tree(), buffer_size=0)

    def test_rs_tree_prepare_fills_buffers(self):
        sampler = RSTreeSampler(_hilbert_tree(), buffer_size=8,
                                rng=random.Random(3))
        assert sampler.buffered_nodes() == 0
        sampler.prepare()
        assert sampler.buffered_nodes() == sampler.tree.node_count()

    def test_ls_tree_levels_geometric(self):
        forest = LSTree(2, rng=random.Random(4))
        forest.bulk_load(POINTS)
        sizes = [len(t) for t in forest.trees]
        assert sizes[0] == len(POINTS)
        # Each level should be roughly half the one below.
        for upper, lower in zip(sizes[1:], sizes):
            assert upper <= lower
        assert forest.total_entries() < 3 * len(POINTS)

    def test_ls_tree_validate(self):
        forest = LSTree(2, rng=random.Random(4))
        forest.bulk_load(POINTS)
        forest.validate()

    def test_ls_tree_updates(self, rng):
        forest = LSTree(2, rng=random.Random(5), leaf_capacity=8,
                        branch_capacity=4)
        forest.bulk_load(POINTS[:200])
        for pid, pt in POINTS[200:300]:
            forest.insert(pid, pt)
        for pid, pt in POINTS[:50]:
            assert forest.delete(pid, pt)
        forest.validate()
        sampler = LSTreeSampler(forest)
        box = Rect((0, 0), (100, 100))
        got = {e.item_id for e in sampler.sample_stream(box, rng)}
        want = {pid for pid, _ in POINTS[50:300]}
        assert got == want

    def test_rs_tree_after_updates(self, rng):
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=16, branch_capacity=8)
        tree.bulk_load(POINTS[:800])
        sampler = RSTreeSampler(tree, buffer_size=16, rng=random.Random(6))
        sampler.prepare()
        # Mutate: buffers along the paths must invalidate, then sampling
        # must still reflect the exact new contents.
        for pid, pt in POINTS[800:900]:
            tree.insert(pid, pt)
        removed = set()
        for pid, pt in POINTS[:100]:
            assert tree.delete(pid, pt)
            removed.add(pid)
        box = Rect((0, 0), (100, 100))
        got = {e.item_id for e in sampler.sample_stream(box, rng)}
        want = {pid for pid, _ in POINTS[100:900]}
        assert got == want
