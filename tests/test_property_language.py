"""Property-based tests for the query language.

Two guarantees: (1) the parser never raises anything but
QueryParseError, on *any* input text; (2) structurally valid queries
assembled from random components always parse back to their parts.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryParseError
from repro.query.ast import QuerySpec
from repro.query.language import parse, tokenize


class TestParserTotality:
    @given(st.text(max_size=120))
    @settings(max_examples=300)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            spec = parse(text)
        except QueryParseError:
            return
        assert isinstance(spec, QuerySpec)

    @given(st.text(alphabet="ESTIMAE AVG()x,%<>=-'\"0123456789 ",
                   max_size=80))
    @settings(max_examples=300)
    def test_near_miss_text_never_crashes(self, text):
        try:
            parse(text)
        except QueryParseError:
            pass

    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_tokenizer_total(self, text):
        try:
            tokens = tokenize(text)
        except QueryParseError:
            return
        # Tokens must cover only real positions.
        for tok in tokens:
            assert 0 <= tok.position < max(1, len(text))


@st.composite
def valid_queries(draw):
    """Assemble a structurally valid query and its expected fields."""
    rng = random.Random(draw(st.integers(0, 2**31)))
    attr = draw(st.sampled_from(["altitude", "kwh", "temp_c", "v2"]))
    task = draw(st.sampled_from(
        ["COUNT", f"AVG({attr})", f"SUM({attr})", f"STD({attr})",
         f"MEDIAN({attr})", f"QUANTILE({attr}, 0.75)",
         "CLUSTERS(3)", "KDE GRID 8x8", f"TERMS OF {attr}"]))
    dataset = draw(st.sampled_from(["osm", "tweets", "d_1"]))
    parts = [f"ESTIMATE {task} FROM {dataset}"]
    expected = {"dataset": dataset}
    conds = []
    if draw(st.booleans()):
        lon_lo = rng.uniform(-180, 179)
        lat_lo = rng.uniform(-90, 89)
        lon_hi = lon_lo + rng.uniform(0, 1)
        lat_hi = lat_lo + rng.uniform(0, 1)
        conds.append(f"REGION({lon_lo:.4f}, {lat_lo:.4f}, "
                     f"{lon_hi:.4f}, {lat_hi:.4f})")
        expected["has_region"] = True
    if draw(st.booleans()):
        t0 = rng.uniform(0, 1000)
        t1 = t0 + rng.uniform(0, 1000)
        conds.append(f"TIME({t0:.3f}, {t1:.3f})")
        expected["has_time"] = True
    if conds:
        parts.append("WHERE " + " AND ".join(conds))
    if draw(st.booleans()):
        samples = draw(st.integers(1, 100_000))
        parts.append(f"SAMPLES {samples}")
        expected["max_samples"] = samples
    if draw(st.booleans()):
        err = draw(st.integers(1, 50))
        parts.append(f"WITHIN ERROR {err}%")
        expected["target_error"] = err / 100.0
    if draw(st.booleans()):
        parts.append("USING rs-tree")
        expected["method"] = "rs-tree"
    return " ".join(parts), expected


class TestRoundTrip:
    @given(valid_queries())
    @settings(max_examples=200)
    def test_valid_queries_parse(self, query_expected):
        text, expected = query_expected
        spec = parse(text)
        assert spec.dataset == expected["dataset"]
        if "max_samples" in expected:
            assert spec.max_samples == expected["max_samples"]
        if "target_error" in expected:
            assert abs(spec.target_error
                       - expected["target_error"]) < 1e-9
        if "method" in expected:
            assert spec.method == expected["method"]
        if expected.get("has_region"):
            assert spec.region is not None
        if expected.get("has_time"):
            assert spec.time is not None

    @given(valid_queries())
    @settings(max_examples=50)
    def test_parse_is_deterministic(self, query_expected):
        text, _ = query_expected
        assert parse(text) == parse(text)
