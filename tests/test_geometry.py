"""Unit tests for repro.core.geometry."""

import math

import pytest

from repro.core.geometry import Rect, euclidean, point_in_rect, \
    squared_distance
from repro.errors import GeometryError


class TestRectConstruction:
    def test_basic(self):
        r = Rect((0, 0), (2, 3))
        assert r.dim == 2
        assert r.lo == (0.0, 0.0)
        assert r.hi == (2.0, 3.0)

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            Rect((1, 0), (0, 1))

    def test_rejects_mismatched_dims(self):
        with pytest.raises(GeometryError):
            Rect((0,), (1, 1))

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Rect((float("nan"),), (1.0,))

    def test_degenerate_point_box_ok(self):
        r = Rect.from_point((5, 5))
        assert r.area() == 0.0
        assert r.contains_point((5, 5))

    def test_immutable(self):
        r = Rect((0,), (1,))
        with pytest.raises(AttributeError):
            r.lo = (2,)

    def test_bounding(self):
        r = Rect.bounding([(0, 5), (2, 1), (-1, 3)])
        assert r == Rect((-1, 1), (2, 5))

    def test_bounding_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.bounding([])

    def test_bounding_mixed_dims_raises(self):
        with pytest.raises(GeometryError):
            Rect.bounding([(0, 0), (1,)])

    def test_union_all(self):
        r = Rect.union_all([Rect((0, 0), (1, 1)), Rect((2, -1), (3, 0))])
        assert r == Rect((0, -1), (3, 1))

    def test_universe(self):
        r = Rect.universe(3, bound=10)
        assert r.contains_point((9, -9, 0))


class TestRectPredicates:
    def test_intersects_overlap(self):
        assert Rect((0, 0), (2, 2)).intersects(Rect((1, 1), (3, 3)))

    def test_intersects_touching_edge(self):
        # Closed boxes: touching counts as intersecting.
        assert Rect((0, 0), (1, 1)).intersects(Rect((1, 1), (2, 2)))

    def test_intersects_disjoint(self):
        assert not Rect((0, 0), (1, 1)).intersects(Rect((2, 2), (3, 3)))

    def test_contains(self):
        outer = Rect((0, 0), (10, 10))
        assert outer.contains(Rect((1, 1), (9, 9)))
        assert outer.contains(outer)
        assert not outer.contains(Rect((5, 5), (11, 9)))

    def test_contains_point_boundary(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_point((0, 0))
        assert r.contains_point((1, 1))
        assert not r.contains_point((1.0001, 0.5))

    def test_contains_point_wrong_dim(self):
        with pytest.raises(GeometryError):
            Rect((0, 0), (1, 1)).contains_point((0.5,))


class TestRectCombinations:
    def test_union(self):
        u = Rect((0, 0), (1, 1)).union(Rect((2, 2), (3, 3)))
        assert u == Rect((0, 0), (3, 3))

    def test_union_point(self):
        u = Rect((0, 0), (1, 1)).union_point((5, -1))
        assert u == Rect((0, -1), (5, 1))

    def test_intersection(self):
        inter = Rect((0, 0), (2, 2)).intersection(Rect((1, 1), (3, 3)))
        assert inter == Rect((1, 1), (2, 2))

    def test_intersection_disjoint_is_none(self):
        assert Rect((0, 0), (1, 1)).intersection(
            Rect((5, 5), (6, 6))) is None

    def test_enlargement(self):
        base = Rect((0, 0), (1, 1))
        assert base.enlargement(Rect((0, 0), (1, 1))) == 0.0
        assert base.enlargement(Rect((0, 0), (2, 1))) == pytest.approx(1.0)

    def test_area_margin_center(self):
        r = Rect((0, 0), (2, 4))
        assert r.area() == 8.0
        assert r.margin() == 6.0
        assert r.center == (1.0, 2.0)

    def test_extent(self):
        r = Rect((0, 1), (2, 4))
        assert r.extent(0) == 2.0
        assert r.extent(1) == 3.0

    def test_min_distance(self):
        r = Rect((0, 0), (1, 1))
        assert r.min_distance((0.5, 0.5)) == 0.0
        assert r.min_distance((2, 1)) == pytest.approx(1.0)
        assert r.min_distance((2, 2)) == pytest.approx(math.sqrt(2))


class TestDistances:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_squared(self):
        assert squared_distance((0, 0), (3, 4)) == pytest.approx(25.0)

    def test_dim_mismatch(self):
        with pytest.raises(GeometryError):
            euclidean((0,), (1, 2))

    def test_point_in_rect_helper(self):
        assert point_in_rect((1, 1), (0, 0), (2, 2))
        assert not point_in_rect((3, 1), (0, 0), (2, 2))


class TestHashEq:
    def test_equal_rects_hash_alike(self):
        assert hash(Rect((0, 0), (1, 1))) == hash(Rect((0.0, 0), (1, 1.0)))

    def test_usable_as_dict_key(self):
        d = {Rect((0,), (1,)): "a"}
        assert d[Rect((0,), (1,))] == "a"
