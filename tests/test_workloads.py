"""Unit tests for the synthetic workload generators."""

import pytest

from repro.core.estimators.text import tokenize
from repro.workloads import (ElectricityWorkload, MesoWestWorkload,
                             OSMWorkload, TwitterWorkload)
from repro.workloads.generators import WorkloadRNG, zipf_weights


class TestWorkloadRNG:
    def test_deterministic(self):
        a = WorkloadRNG(5).stream("x").random(3)
        b = WorkloadRNG(5).stream("x").random(3)
        assert (a == b).all()

    def test_purposes_independent(self):
        a = WorkloadRNG(5).stream("x").random(3)
        b = WorkloadRNG(5).stream("y").random(3)
        assert not (a == b).all()

    def test_zipf_weights_normalised_decreasing(self):
        w = zipf_weights(100)
        assert w.sum() == pytest.approx(1.0)
        assert (w[:-1] >= w[1:]).all()


class TestOSM:
    def test_deterministic_and_sized(self):
        a = OSMWorkload(n=500, seed=1).generate()
        b = OSMWorkload(n=500, seed=1).generate()
        assert len(a) == 500
        assert [(r.lon, r.lat) for r in a[:20]] \
            == [(r.lon, r.lat) for r in b[:20]]

    def test_all_points_in_region(self):
        wl = OSMWorkload(n=800, seed=2)
        for r in wl.generate():
            assert wl.lon_range[0] <= r.lon <= wl.lon_range[1]
            assert wl.lat_range[0] <= r.lat <= wl.lat_range[1]

    def test_altitude_nonnegative_and_varied(self):
        records = OSMWorkload(n=800, seed=3).generate()
        alts = [r.attrs["altitude"] for r in records]
        assert min(alts) >= 0.0
        assert max(alts) - min(alts) > 500.0

    def test_clustering_present(self):
        """Clustered generation should concentrate mass: some small cell
        holds far more than the uniform share."""
        wl = OSMWorkload(n=4000, seed=4)
        records = wl.generate()
        cells = {}
        for r in records:
            key = (int(r.lon), int(r.lat))
            cells[key] = cells.get(key, 0) + 1
        area_cells = ((wl.lon_range[1] - wl.lon_range[0])
                      * (wl.lat_range[1] - wl.lat_range[0]))
        uniform_share = len(records) / area_cells
        assert max(cells.values()) > 10 * uniform_share

    def test_query_box_selectivity(self):
        wl = OSMWorkload(n=2000, seed=5)
        records = wl.generate()
        lon_lo, lat_lo, lon_hi, lat_hi = wl.dense_query_box(0.25)
        inside = sum(1 for r in records
                     if lon_lo <= r.lon <= lon_hi
                     and lat_lo <= r.lat <= lat_hi)
        # Central box catches at least its area share (clusters help).
        assert inside / len(records) > 0.1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OSMWorkload(n=0)
        with pytest.raises(ValueError):
            OSMWorkload(cluster_fraction=2.0)


class TestTwitter:
    WL = TwitterWorkload(n=4000, users=200, seed=6)
    RECORDS = WL.generate()

    def test_sized_and_fielded(self):
        assert len(self.RECORDS) == 4000
        r = self.RECORDS[0]
        assert "user" in r.attrs and "text" in r.attrs

    def test_times_sorted_within_span(self):
        ts = [r.t for r in self.RECORDS]
        assert ts == sorted(ts)
        assert 0 <= ts[0] and ts[-1] <= self.WL.time_span

    def test_snowstorm_window_spikes_storm_terms(self):
        window = self.WL.snowstorm_range()
        in_window = [r for r in self.RECORDS if window.contains(r)]
        assert len(in_window) > 20, "anomaly window must contain tweets"
        storm_hits = sum(1 for r in in_window
                         if tokenize(r.attrs["text"])
                         & {"snow", "ice", "outage"})
        assert storm_hits / len(in_window) > 0.4

    def test_storm_terms_rare_outside_window(self):
        window = self.WL.snowstorm_range()
        outside = [r for r in self.RECORDS if not window.contains(r)]
        storm_hits = sum(1 for r in outside
                         if tokenize(r.attrs["text"])
                         & {"snow", "ice", "outage"})
        assert storm_hits / len(outside) < 0.05

    def test_slc_range_has_tweets(self):
        slc = self.WL.slc_range()
        assert any(slc.contains(r) for r in self.RECORDS)

    def test_user_trajectories_coherent(self):
        """A user's consecutive positions should move smoothly (bounded
        step), not teleport."""
        by_user = {}
        for r in self.RECORDS:
            by_user.setdefault(r.attrs["user"], []).append(r)
        user, tweets = max(by_user.items(), key=lambda kv: len(kv[1]))
        assert len(tweets) >= 5
        steps = [abs(a.lon - b.lon) + abs(a.lat - b.lat)
                 for a, b in zip(tweets, tweets[1:])]
        assert max(steps) < 5.0

    def test_background_frequencies(self):
        bg = self.WL.background_frequencies()
        assert 0.0 < bg["coffee"] <= 1.0
        assert "snow" not in bg  # storm terms are not everyday vocab


class TestMesoWest:
    RECORDS = MesoWestWorkload(stations=100, measurements_per_station=10,
                               seed=7).generate()

    def test_size(self):
        assert len(self.RECORDS) == 1000

    def test_station_locations_fixed(self):
        by_station = {}
        for r in self.RECORDS:
            key = r.attrs["station"]
            by_station.setdefault(key, set()).add((r.lon, r.lat))
        assert all(len(locs) == 1 for locs in by_station.values())

    def test_temperature_latitude_gradient(self):
        south = [r.attrs["temperature"] for r in self.RECORDS
                 if r.lat < 32]
        north = [r.attrs["temperature"] for r in self.RECORDS
                 if r.lat > 45]
        assert sum(south) / len(south) > sum(north) / len(north)

    def test_fields_present(self):
        r = self.RECORDS[0]
        for field in ("temperature", "elevation", "humidity",
                      "wind_speed"):
            assert field in r.attrs


class TestElectricity:
    WL = ElectricityWorkload(units=300, readings_per_unit=6, seed=8)
    RECORDS = WL.generate()

    def test_size(self):
        assert len(self.RECORDS) == 1800

    def test_usage_positive(self):
        assert all(r.attrs["kwh"] >= 0 for r in self.RECORDS)

    def test_first_quarter_query_selects_records(self):
        window = self.WL.first_quarter_range()
        inside = [r for r in self.RECORDS if window.contains(r)]
        assert len(inside) > 10

    def test_manhattan_usage_higher_than_queens(self):
        manhattan = [r.attrs["kwh"] for r in self.RECORDS
                     if r.attrs["borough"] == "manhattan"]
        queens = [r.attrs["kwh"] for r in self.RECORDS
                  if r.attrs["borough"] == "queens"]
        assert sum(manhattan) / len(manhattan) \
            > sum(queens) / len(queens)
