"""Unit tests for the keyword query language parser and executor."""

import random

import pytest

from repro.connector.parsers import parse_timestamp
from repro.core.engine import StormEngine
from repro.core.estimators.clustering import KMeansResult
from repro.core.estimators.trajectory import Trajectory
from repro.core.records import Record
from repro.errors import QueryParseError, StormError
from repro.query.ast import FilterSpec
from repro.query.executor import QueryExecutor
from repro.query.language import parse, tokenize

from tests.test_session_engine import RECORDS  # reuse the shared dataset


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("ESTIMATE AVG(altitude) FROM osm")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "ident", "punct", "ident", "punct",
                         "ident", "ident"]

    def test_numbers_and_negatives(self):
        tokens = tokenize("REGION(-114, 37.5)")
        numbers = [t.text for t in tokens if t.kind == "number"]
        assert numbers == ["-114", "37.5"]

    def test_strings(self):
        tokens = tokenize("TIME('2014-02-10', \"2014-02-13\")")
        strings = [t.text for t in tokens if t.kind == "string"]
        assert len(strings) == 2

    def test_bad_character(self):
        with pytest.raises(QueryParseError):
            tokenize("ESTIMATE @ FROM x")


class TestParser:
    def test_avg_with_everything(self):
        spec = parse(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(-114, 37, -109, 42) AND TIME(0, 86400) "
            "WITHIN ERROR 2% CONFIDENCE 99% USING rs-tree")
        assert spec.task.kind == "avg"
        assert spec.task.attribute == "altitude"
        assert spec.dataset == "osm"
        assert spec.region == (-114.0, 37.0, -109.0, 42.0)
        assert spec.time == (0.0, 86400.0)
        assert spec.target_error == pytest.approx(0.02)
        assert spec.confidence == pytest.approx(0.99)
        assert spec.method == "rs-tree"

    def test_keywords_case_insensitive(self):
        spec = parse("estimate count from osm where region(0,0,1,1)")
        assert spec.task.kind == "count"

    def test_time_with_quoted_dates(self):
        spec = parse("ESTIMATE COUNT FROM t WHERE "
                     "TIME('2014-02-10', '2014-02-13')")
        assert spec.time == (parse_timestamp("2014-02-10"),
                             parse_timestamp("2014-02-13"))

    def test_kde_grid(self):
        spec = parse("ESTIMATE KDE GRID 32x24 BANDWIDTH 0.5 FROM t")
        assert spec.task.params == {"nx": 32, "ny": 24,
                                    "bandwidth": 0.5}

    def test_kde_grid_spaced(self):
        spec = parse("ESTIMATE KDE GRID 8 x 4 FROM t")
        assert spec.task.params == {"nx": 8, "ny": 4}

    def test_terms(self):
        spec = parse("ESTIMATE TERMS OF body FROM tweets SAMPLES 100")
        assert spec.task.attribute == "body"
        assert spec.max_samples == 100

    def test_trajectory(self):
        spec = parse("ESTIMATE TRAJECTORY OF 'user42' BY author FROM t")
        assert spec.task.params["key"] == "user42"
        assert spec.task.attribute == "author"

    def test_clusters(self):
        spec = parse("ESTIMATE CLUSTERS(5) FROM t")
        assert spec.task.params["k"] == 5

    def test_quantile(self):
        spec = parse("ESTIMATE QUANTILE(altitude, 0.9) FROM t")
        assert spec.task.params["p"] == pytest.approx(0.9)

    def test_filter_condition(self):
        spec = parse("ESTIMATE COUNT FROM t WHERE "
                     "FILTER(altitude > 500)")
        assert spec.record_filter == FilterSpec("altitude", ">", 500)

    def test_budget_ms_and_s(self):
        assert parse("ESTIMATE COUNT FROM t BUDGET 250 MS"
                     ).budget_seconds == pytest.approx(0.25)
        assert parse("ESTIMATE COUNT FROM t BUDGET 2 S"
                     ).budget_seconds == pytest.approx(2.0)

    def test_explain(self):
        assert parse("EXPLAIN ESTIMATE COUNT FROM t").explain

    def test_st_range_defaults(self):
        spec = parse("ESTIMATE COUNT FROM t")
        rng = spec.st_range()
        assert rng.contains(Record(0, lon=50.0, lat=50.0, t=123.0))

    @pytest.mark.parametrize("bad", [
        "",
        "SELECT * FROM t",
        "ESTIMATE AVG FROM t",                        # missing parens
        "ESTIMATE AVG(x) WHERE REGION(0,0,1,1)",      # missing FROM
        "ESTIMATE AVG(x) FROM t WHERE REGION(1,0,0,1)",  # inverted
        "ESTIMATE AVG(x) FROM t WHERE TIME(5, 1)",       # inverted
        "ESTIMATE AVG(x) FROM t trailing junk",
        "ESTIMATE QUANTILE(x, 1.5) FROM t",
        "ESTIMATE CLUSTERS(0) FROM t",
        "ESTIMATE KDE GRID 0x4 FROM t",
        "ESTIMATE AVG(x) FROM t USING warp-drive",
        "ESTIMATE AVG(x) FROM t WITHIN ERROR 2% CONFIDENCE 200%",
        "ESTIMATE MYSTERY(x) FROM t",
        "ESTIMATE AVG(x) FROM t WHERE REGION(0,0,1,1) "
        "AND REGION(0,0,1,1)",
    ])
    def test_rejects_bad_queries(self, bad):
        with pytest.raises(QueryParseError):
            parse(bad)

    def test_filter_spec_matching(self):
        record = Record(0, 0.0, 0.0, attrs={"v": 10})
        assert FilterSpec("v", ">=", 10).matches(record)
        assert not FilterSpec("v", "<", 10).matches(record)
        assert not FilterSpec("missing", "=", 1).matches(record)
        assert not FilterSpec("v", "<", "text").matches(record)


class TestExecutor:
    @pytest.fixture()
    def executor(self):
        engine = StormEngine(seed=2)
        engine.create_dataset("osm", RECORDS, rs_buffer_size=32)
        return QueryExecutor(engine, rng=random.Random(3))

    def test_avg_query(self, executor):
        result = executor.execute(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(20, 20, 80, 80) SAMPLES 300")
        assert result.final.estimate.k <= 320
        assert 400 < result.value < 600
        assert "value=" in result.summary()

    def test_count_exact(self, executor):
        result = executor.execute(
            "ESTIMATE COUNT FROM osm WHERE REGION(20, 20, 80, 80)")
        truth = sum(1 for r in RECORDS
                    if 20 <= r.lon <= 80 and 20 <= r.lat <= 80)
        assert result.value == truth

    def test_count_with_filter(self, executor):
        result = executor.execute(
            "ESTIMATE COUNT FROM osm WHERE REGION(0, 0, 100, 100) "
            "AND FILTER(altitude > 500) SAMPLES 400")
        truth = sum(1 for r in RECORDS if r.attrs["altitude"] > 500)
        est = result.final.estimate
        assert est.interval.lo <= truth <= est.interval.hi

    def test_accuracy_query(self, executor):
        result = executor.execute(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(10, 10, 90, 90) WITHIN ERROR 3%")
        assert result.final.reason in (
            "target relative error reached", "exhausted (exact result)")

    def test_kde_query(self, executor):
        result = executor.execute(
            "ESTIMATE KDE GRID 8x8 FROM osm "
            "WHERE REGION(20, 20, 80, 80) SAMPLES 200")
        assert result.value.shape == (8, 8)

    def test_kde_requires_region(self, executor):
        with pytest.raises(StormError):
            executor.execute("ESTIMATE KDE FROM osm SAMPLES 10")

    def test_clusters_query(self, executor):
        result = executor.execute(
            "ESTIMATE CLUSTERS(3) FROM osm "
            "WHERE REGION(0, 0, 100, 100) SAMPLES 200")
        assert isinstance(result.value, KMeansResult)
        assert len(result.value.centers) == 3

    def test_explain_query(self, executor):
        result = executor.execute(
            "EXPLAIN ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(20, 20, 80, 80)")
        assert result.final is None
        assert "chosen" in result.explanation

    def test_forced_method(self, executor):
        result = executor.execute(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(20, 20, 80, 80) SAMPLES 50 USING random-path")
        assert result.final.estimate.k >= 50

    def test_unknown_dataset(self, executor):
        with pytest.raises(StormError):
            executor.execute("ESTIMATE COUNT FROM nope")

    def test_session_path(self, executor):
        session, stop = executor.session(
            "ESTIMATE AVG(altitude) FROM osm "
            "WHERE REGION(20, 20, 80, 80) SAMPLES 100")
        final = session.run_to_stop(stop)
        assert final.done

    def test_explain_has_no_session(self, executor):
        with pytest.raises(StormError):
            executor.session("EXPLAIN ESTIMATE COUNT FROM osm")
