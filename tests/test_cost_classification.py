"""The I/O classifications the paper's figure shapes depend on.

Figure 3(a)'s story is a *block locality* story: RandomPath pays one
random root-to-leaf walk per sample, while LS/RS/RangeReport stream
consecutive blocks.  These tests pin the cost-model behaviours that
encode it, so a refactor that silently breaks the locality modelling
fails here rather than bending the figure.
"""

import random

import pytest

from repro.core.geometry import Rect
from repro.core.sampling.base import take
from repro.index.cost import CostCounter
from repro.index.hilbert_rtree import HilbertRTree

from tests.conftest import make_points

BOUNDS = Rect((0, 0), (100, 100))
POINTS = make_points(20_000, seed=191)
BOX = Rect((20, 20), (80, 80))


@pytest.fixture(scope="module")
def tree():
    t = HilbertRTree(2, BOUNDS, leaf_capacity=32, branch_capacity=8)
    t.bulk_load(POINTS)
    return t


def sequential_fraction(cost: CostCounter) -> float:
    return cost.sequential_reads / max(1, cost.node_reads)


class TestLocalityModel:
    def test_range_scan_mostly_sequential(self, tree):
        cost = CostCounter()
        tree.range_query(BOX, cost)
        assert sequential_fraction(cost) > 0.5

    def test_random_path_mostly_random(self, tree):
        from repro.core.sampling.random_path import RandomPathSampler
        sampler = RandomPathSampler(tree)
        cost = CostCounter()
        take(sampler.sample_stream(BOX, random.Random(1), cost=cost),
             200)
        assert sequential_fraction(cost) < 0.3

    def test_random_path_reads_scale_with_k(self, tree):
        from repro.core.sampling.random_path import RandomPathSampler
        sampler = RandomPathSampler(tree)

        def reads(k):
            cost = CostCounter()
            take(sampler.sample_stream(BOX, random.Random(2),
                                       cost=cost), k)
            return cost.node_reads

        assert reads(400) > 3 * reads(50)

    def test_rs_tree_reads_sublinear_in_k(self, tree):
        from repro.core.sampling.rs_tree import RSTreeSampler
        sampler = RSTreeSampler(tree, buffer_size=32,
                                rng=random.Random(3))
        sampler.prepare()

        def reads(k):
            cost = CostCounter()
            take(sampler.sample_stream(BOX, random.Random(4),
                                       cost=cost), k)
            return cost.node_reads

        r_small, r_big = reads(50), reads(800)
        assert r_big < 16 * r_small  # far below linear scaling (16x k)

    def test_query_first_reads_flat_in_k(self, tree):
        from repro.core.sampling.query_first import QueryFirstSampler
        sampler = QueryFirstSampler(tree)

        def reads(k):
            cost = CostCounter()
            take(sampler.sample_stream(BOX, random.Random(5),
                                       cost=cost), k)
            return cost.node_reads

        assert reads(1000) == reads(10)

    def test_ls_tree_reads_grow_with_levels_visited(self, tree):
        """Few samples touch only the small top trees; many samples
        descend and pay more."""
        from repro.core.sampling.ls_tree import LSTree, LSTreeSampler
        forest = LSTree(2, rng=random.Random(6), leaf_capacity=32,
                        branch_capacity=8)
        forest.bulk_load(POINTS)
        sampler = LSTreeSampler(forest)

        def reads(k):
            cost = CostCounter()
            take(sampler.sample_stream(BOX, random.Random(7),
                                       cost=cost), k)
            return cost.node_reads

        assert reads(2000) > reads(10)

    def test_sample_first_charges_random_fetches(self, tree):
        from repro.core.sampling.sample_first import SampleFirstSampler
        sampler = SampleFirstSampler(tree)
        cost = CostCounter()
        take(sampler.sample_stream(BOX, random.Random(8), cost=cost),
             100)
        assert sequential_fraction(cost) < 0.1
        # Rejections happen (the box covers a minority of the area).
        assert cost.rejections > 0
