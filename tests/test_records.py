"""Direct unit tests for the record model and STRange."""

import pytest

from repro.core.records import (Record, STRange, attribute_getter,
                                iter_in_range)
from repro.errors import GeometryError, StorageError


class TestRecord:
    def test_key_dims(self):
        r = Record(1, lon=10.0, lat=20.0, t=30.0)
        assert r.key(2) == (10.0, 20.0)
        assert r.key(3) == (10.0, 20.0, 30.0)
        with pytest.raises(GeometryError):
            r.key(4)

    def test_location(self):
        assert Record(1, lon=1.0, lat=2.0).location == (1.0, 2.0)

    def test_document_roundtrip_preserves_attrs(self):
        r = Record(7, lon=1.0, lat=2.0, t=3.0,
                   attrs={"text": "hi", "n": 4})
        doc = r.to_document()
        assert doc["_id"] == 7
        assert doc["text"] == "hi"
        assert Record.from_document(doc) == r

    def test_from_document_defaults_time(self):
        r = Record.from_document({"_id": 1, "lon": 1, "lat": 2})
        assert r.t == 0.0

    @pytest.mark.parametrize("raw,expect", [
        (3.0, 3), ("17", 17), ("  42 ", 42), (-8.0, -8), ("0", 0),
    ])
    def test_from_document_coerces_integral_ids(self, raw, expect):
        # Regression: some connectors hand back _id as a float or a
        # numeric string; integral values must coerce losslessly.
        r = Record.from_document({"_id": raw, "lon": 1, "lat": 2})
        assert r.record_id == expect
        assert isinstance(r.record_id, int)

    @pytest.mark.parametrize("raw", [3.5, "3.5", "abc", None, True,
                                     float("nan")])
    def test_from_document_rejects_non_integral_ids(self, raw):
        with pytest.raises(StorageError):
            Record.from_document({"_id": raw, "lon": 1, "lat": 2})

    def test_frozen(self):
        r = Record(1, lon=1.0, lat=2.0)
        with pytest.raises(AttributeError):
            r.lon = 5.0


class TestSTRange:
    def test_contains_spatial_only(self):
        window = STRange(0, 0, 10, 10)
        assert window.contains(Record(1, lon=5, lat=5, t=10**9))
        assert not window.contains(Record(2, lon=15, lat=5))

    def test_contains_with_time(self):
        window = STRange(0, 0, 10, 10, 100, 200)
        assert window.contains(Record(1, lon=5, lat=5, t=150))
        assert not window.contains(Record(2, lon=5, lat=5, t=250))

    def test_boundaries_inclusive(self):
        window = STRange(0, 0, 10, 10, 100, 200)
        assert window.contains(Record(1, lon=0, lat=10, t=100))
        assert window.contains(Record(2, lon=10, lat=0, t=200))

    def test_to_rect_dims(self):
        window = STRange(0, 1, 2, 3, 4, 5)
        assert window.to_rect(2).lo == (0.0, 1.0)
        assert window.to_rect(3).lo == (0.0, 1.0, 4.0)
        with pytest.raises(GeometryError):
            window.to_rect(4)

    def test_to_rect_unbounded_time(self):
        rect = STRange(0, 0, 1, 1).to_rect(3)
        assert rect.lo[2] < -1e17 and rect.hi[2] > 1e17

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            STRange(1, 0, 0, 1)
        with pytest.raises(GeometryError):
            STRange(0, 0, 1, 1, 5, 4)

    def test_rejects_half_open_time(self):
        with pytest.raises(GeometryError):
            STRange(0, 0, 1, 1, t_lo=5, t_hi=None)

    def test_everywhere(self):
        assert STRange.everywhere().contains(
            Record(1, lon=1e6, lat=-1e6, t=1e12))

    def test_eq_hash(self):
        a = STRange(0, 0, 1, 1, 2, 3)
        b = STRange(0, 0, 1, 1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != STRange(0, 0, 1, 1)

    def test_repr_mentions_time(self):
        assert ", t=[" in repr(STRange(0, 0, 1, 1, 2, 3))
        assert ", t=[" not in repr(STRange(0, 0, 1, 1))


class TestAttributeGetter:
    def test_reads_attrs_and_builtins(self):
        r = Record(1, lon=1.0, lat=2.0, t=3.0, attrs={"v": 4})
        assert attribute_getter("v")(r) == 4.0
        assert attribute_getter("lon")(r) == 1.0
        assert attribute_getter("lat")(r) == 2.0
        assert attribute_getter("t")(r) == 3.0

    def test_default(self):
        r = Record(1, lon=1.0, lat=2.0)
        assert attribute_getter("missing", default=9.0)(r) == 9.0

    def test_missing_raises(self):
        r = Record(1, lon=1.0, lat=2.0)
        with pytest.raises(KeyError):
            attribute_getter("missing")(r)

    def test_iter_in_range(self):
        records = [Record(i, lon=float(i), lat=0.0) for i in range(10)]
        window = STRange(2, -1, 5, 1)
        got = [r.record_id for r in iter_in_range(iter(records), window)]
        assert got == [2, 3, 4, 5]
