"""Unit tests for the text visualizer."""

import numpy as np
import pytest

from repro.core.estimators.trajectory import Trajectory
from repro.viz.density_map import render_density, render_density_with_ci
from repro.viz.series import render_series, render_table
from repro.viz.trajectory_plot import render_trajectory


class TestDensityMap:
    def test_shape_and_orientation(self):
        field = np.zeros((3, 5))
        field[0, 0] = 1.0  # south-west corner
        art = render_density(field)
        lines = art.split("\n")
        assert len(lines) == 4  # 3 rows + legend
        assert len(lines[0]) == 5
        # Peak must render in the BOTTOM row (south), left column.
        assert lines[2][0] == "@"

    def test_constant_field(self):
        art = render_density(np.ones((2, 2)))
        assert "@" not in art.split("\n")[0]

    def test_title(self):
        art = render_density(np.zeros((2, 2)), title="KDE")
        assert art.startswith("KDE")

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_density(np.zeros(5))

    def test_ci_overlay_marks_uncertain_cells(self):
        field = np.ones((2, 2))
        lo = np.zeros((2, 2))
        hi = np.full((2, 2), 5.0)  # huge intervals everywhere
        art = render_density_with_ci(field, lo, hi)
        assert "?" in art

    def test_ci_overlay_quiet_when_tight(self):
        field = np.ones((2, 2))
        lo = field - 0.01
        hi = field + 0.01
        art = render_density_with_ci(field, lo, hi)
        assert "?" not in art

    def test_ci_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_density_with_ci(np.ones((2, 2)), np.ones((2, 3)),
                                   np.ones((2, 2)))


class TestSeries:
    def test_basic_plot(self):
        art = render_series({"a": [(0, 1), (1, 2)],
                             "b": [(0, 2), (1, 4)]})
        assert "o=a" in art and "x=b" in art

    def test_log_scale(self):
        art = render_series({"a": [(0, 1), (1, 1000)]},
                            y_label="time", log_y=True)
        assert "log10(time)" in art

    def test_log_scale_drops_nonpositive(self):
        art = render_series({"a": [(0, 0.0), (1, 10.0)]}, log_y=True)
        assert "(no data)" not in art

    def test_empty(self):
        assert render_series({}) == "(no data)"

    def test_table(self):
        art = render_table(["name", "value"],
                           [["alpha", 1.5], ["b", 123456.0]],
                           title="results")
        lines = art.split("\n")
        assert lines[0] == "results"
        assert "alpha" in art
        assert "1.235e+05" in art  # big floats in scientific notation

    def test_table_alignment(self):
        art = render_table(["h"], [["xxxxxxxx"]])
        header, rule, row = art.split("\n")
        assert len(header) == len(rule) == len(row)


class TestTrajectoryPlot:
    def test_marks_start_and_end(self):
        traj = Trajectory([(0.0, 0.0, 0.0), (1.0, 5.0, 5.0),
                           (2.0, 10.0, 0.0)])
        art = render_trajectory(traj, width=20, height=8)
        assert "S" in art and "E" in art and "o" in art

    def test_empty(self):
        assert "empty" in render_trajectory(Trajectory([]))

    def test_title_and_stats(self):
        traj = Trajectory([(0.0, 0.0, 0.0), (4.0, 3.0, 4.0)])
        art = render_trajectory(traj, title="user42")
        assert art.startswith("user42")
        assert "2 vertices" in art
