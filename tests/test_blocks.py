"""Equivalence and codec suite for the packed columnar block layer.

The blocks module is a pure fast path: every place it is wired in —
leaf rect scans, estimator absorption, LSM run payloads — must produce
*identical* answers to the per-Record code it replaced.  This suite
pins that contract three ways: block filters against brute-force /
record-list scans (same id sets, 2-d and 3-d, empty and single-record
blocks), columnar estimator absorption against per-record absorption
(mean/sum/KDE agree to 1e-12), and the wire codec against itself
(hypothesis round-trip property, plus the legacy JSON run format the
LSM still restores).

The numpy and stdlib paths are both exercised by monkeypatching
``repro.core.blocks._numpy`` — the same switch the
``STORM_BLOCKS_BACKEND=stdlib`` env override and the no-numpy CI leg
flip for real.
"""

import json
import random
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.blocks as blocks_mod
from repro.core.blocks import (BLOCK_MAGIC, ColumnBlock, RecordBlock,
                               backend_name, is_block_payload)
from repro.core.estimators.aggregates import AvgEstimator, SumEstimator
from repro.core.geometry import Rect
from repro.core.records import Record, attribute_getter
from repro.errors import StorageError
from repro.index.rtree import RTree

from tests.conftest import brute_force_range, make_points


@pytest.fixture(params=["numpy", "stdlib"])
def backend(request, monkeypatch):
    """Run the decorated test under both filter/codec paths."""
    if request.param == "stdlib":
        monkeypatch.setattr(blocks_mod, "_numpy", None)
    elif blocks_mod._numpy is None:
        pytest.skip("numpy not installed")
    return request.param


def make_records(n, seed=3):
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": round(rng.gauss(10, 2), 6)})
            for i in range(n)]


# ----------------------------------------------------------------------
# leaf-scan equivalence: block filters == record-list scans
# ----------------------------------------------------------------------

class TestScanEquivalence:
    RECTS_2D = [
        Rect((20, 20), (60, 60)),
        Rect((0, 0), (100, 100)),
        Rect((99.5, 99.5), (99.9, 99.9)),   # likely-empty corner
        Rect((50, 50), (50, 50)),           # degenerate point rect
    ]
    RECTS_3D = [
        Rect((20, 20, 20), (60, 60, 60)),
        Rect((0, 0, 0), (100, 100, 100)),
        Rect((-5, -5, -5), (-1, -1, -1)),   # fully outside
    ]

    @pytest.mark.parametrize("dims,rects", [(2, RECTS_2D), (3, RECTS_3D)])
    def test_block_matches_record_list_scan(self, backend, dims, rects):
        points = make_points(1500, seed=dims, dims=dims)
        tree = RTree(dims=dims, leaf_capacity=32)
        tree.bulk_load(points)
        block = ColumnBlock.from_points(points, dims)
        for rect in rects:
            want = brute_force_range(points, rect)
            got = {e.item_id for e in tree.range_query(rect)}
            assert got == want
            assert tree.range_count(rect) == len(want)
            hits = block.indices_in(rect.lo, rect.hi)
            assert {block.ids[i] for i in hits} == want
            assert block.count_in(rect.lo, rect.hi) == len(want)
            assert hits == sorted(hits)

    def test_both_paths_agree_positionally(self):
        if blocks_mod._numpy is None:
            pytest.skip("numpy not installed")
        points = make_points(800, seed=19, dims=3)
        block = ColumnBlock.from_points(points, 3)
        rect = Rect((10, 10, 10), (70, 70, 70))
        fast = block.indices_in(rect.lo, rect.hi)
        saved, blocks_mod._numpy = blocks_mod._numpy, None
        try:
            slow = block.indices_in(rect.lo, rect.hi)
        finally:
            blocks_mod._numpy = saved
        assert fast == slow

    def test_empty_block(self, backend):
        block = ColumnBlock(array("q"), [array("d"), array("d")])
        assert len(block) == 0
        assert block.indices_in((0, 0), (100, 100)) == []
        assert block.count_in((0, 0), (100, 100)) == 0

    def test_single_record_block(self, backend):
        block = ColumnBlock.from_points([(7, (5.0, 6.0))], 2)
        assert block.indices_in((0, 0), (10, 10)) == [0]
        assert block.indices_in((0, 0), (4, 10)) == []
        assert block.point(0) == (5.0, 6.0)

    def test_boundaries_inclusive(self, backend):
        block = ColumnBlock.from_points(
            [(1, (0.0, 0.0)), (2, (10.0, 10.0)), (3, (10.0001, 5.0))], 2)
        hits = block.indices_in((0, 0), (10, 10))
        assert {block.ids[i] for i in hits} == {1, 2}

    def test_leaf_blocks_rebuilt_after_mutation(self):
        points = make_points(300, seed=5)
        tree = RTree(dims=2, leaf_capacity=16)
        tree.bulk_load(points)
        rect = Rect((0, 0), (100, 100))
        assert len(tree.range_query(rect)) == 300
        leaves, packed = tree.leaf_block_stats()
        assert packed == leaves > 0
        tree.insert(9999, (50.0, 50.0))
        tree.delete(0, points[0][1])
        got = {e.item_id for e in tree.range_query(rect)}
        assert got == {pid for pid, _ in points[1:]} | {9999}

    def test_vector_filter_counters(self):
        points = make_points(400, seed=9)
        tree = RTree(dims=2, leaf_capacity=16)
        tree.bulk_load(points)
        before = (tree.vector_filters, tree.vector_filter_hits)
        hits = tree.range_query(Rect((10, 10), (90, 90)))
        assert tree.vector_filters > before[0]
        assert tree.vector_filter_hits - before[1] == len(hits)


# ----------------------------------------------------------------------
# estimator equivalence: absorb_columns == per-record absorb
# ----------------------------------------------------------------------

def _entries_and_lookup(records, dims):
    tree = RTree(dims=dims)
    tree.bulk_load([(r.record_id, r.key(dims)) for r in records])
    entries = tree.range_query(Rect((0,) * dims, (100,) * dims
                                    if dims == 2 else (100, 100, 1000)))
    by_id = {r.record_id: r for r in records}
    return entries, by_id.__getitem__


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("column", ["lon", "lat", "t"])
    def test_avg_columns_vs_records(self, backend, column):
        records = make_records(700)
        fast = AvgEstimator(attribute_getter(column))
        assert fast.supports_columns
        ok = fast.absorb_columns([r.lon for r in records],
                                 [r.lat for r in records],
                                 [r.t for r in records])
        assert ok and fast.k == len(records)
        slow = AvgEstimator(attribute_getter(column))
        for r in records:
            slow.absorb(r)
        a, b = fast.estimate(), slow.estimate()
        assert a.value == pytest.approx(b.value, abs=1e-12)
        assert a.std_error == pytest.approx(b.std_error, abs=1e-12)

    def test_sum_columns_vs_records(self, backend):
        records = make_records(500, seed=23)
        fast = SumEstimator(attribute_getter("lon"))
        slow = SumEstimator(attribute_getter("lon"))
        for est in (fast, slow):
            est.set_population_size(5000)
        assert fast.absorb_columns([r.lon for r in records],
                                   [r.lat for r in records], None)
        for r in records:
            slow.absorb(r)
        a, b = fast.estimate(), slow.estimate()
        assert a.value == pytest.approx(b.value, rel=1e-12)
        assert a.std_error == pytest.approx(b.std_error, rel=1e-12)

    def test_attribute_estimator_falls_back(self, backend):
        records = make_records(50, seed=31)
        est = AvgEstimator(attribute_getter("v"))
        assert not est.supports_columns
        assert not est.absorb_columns([1.0], [2.0], None)
        entries, lookup = _entries_and_lookup(records, 2)
        est.absorb_entry_batch(entries, lookup)
        slow = AvgEstimator(attribute_getter("v"))
        for r in records:
            slow.absorb(r)
        assert est.k == slow.k == len(records)
        assert est.estimate().value == pytest.approx(
            slow.estimate().value, abs=1e-12)

    @pytest.mark.parametrize("dims", [2, 3])
    def test_entry_batch_matches_per_record(self, backend, dims):
        records = make_records(400, seed=dims * 13)
        entries, lookup = _entries_and_lookup(records, dims)
        assert len(entries) == len(records)
        fast = AvgEstimator(attribute_getter("lon"))
        fast.absorb_entry_batch(entries, lookup)
        slow = AvgEstimator(attribute_getter("lon"))
        for e in entries:
            slow.absorb(lookup(e.item_id))
        assert fast.k == slow.k
        assert fast.estimate().value == pytest.approx(
            slow.estimate().value, abs=1e-12)

    def test_empty_batch_is_noop(self, backend):
        est = AvgEstimator(attribute_getter("lon"))
        est.absorb_entry_batch([], lambda _: None)
        assert est.k == 0
        assert est.absorb_columns([], [], None)
        assert est.k == 0

    def test_kde_columns_vs_records(self):
        pytest.importorskip("numpy")
        from repro.core.estimators.kde import GridSpec, OnlineKDE
        records = make_records(300, seed=41)
        grid = GridSpec(0, 0, 100, 100, nx=8, ny=8)
        fast = OnlineKDE(grid)
        assert fast.absorb_columns([r.lon for r in records],
                                   [r.lat for r in records],
                                   [r.t for r in records])
        slow = OnlineKDE(grid)
        for r in records:
            slow.absorb(r)
        assert fast.k == slow.k == len(records)
        a, b = fast.estimate(), slow.estimate()
        assert abs(a.value - b.value).max() <= 1e-12
        assert a.std_error == pytest.approx(b.std_error, abs=1e-12)


# ----------------------------------------------------------------------
# codec: wire-format round trips and corruption handling
# ----------------------------------------------------------------------

class TestCodec:
    def test_column_block_roundtrip_with_meta(self, backend):
        points = make_points(64, seed=2, dims=3)
        block = ColumnBlock.from_points(points, 3)
        payload = block.encode(meta={"kind": "leaf", "level": 0})
        assert is_block_payload(payload)
        assert payload[:4] == BLOCK_MAGIC
        back, meta = ColumnBlock.decode(payload)
        assert meta == {"kind": "leaf", "level": 0}
        assert list(back.ids) == [pid for pid, _ in points]
        for i, (_, pt) in enumerate(points):
            assert back.point(i) == pt

    def test_record_block_lazy_attrs(self, backend):
        records = make_records(20)
        payload = RecordBlock.from_records(records).encode()
        back, _ = RecordBlock.decode(payload)
        # Lazy-attrs contract: decoding must not parse the side-table.
        assert back._attrs is None and back._attrs_raw
        assert back.attrs(3) == records[3].attrs
        assert back._attrs is not None and back._attrs_raw is None
        assert list(back.records()) == records

    def test_empty_attrs_encode_to_nothing(self, backend):
        records = [Record(i, lon=float(i), lat=0.0) for i in range(5)]
        block = RecordBlock.from_records(records)
        assert block._attrs is None
        back, _ = RecordBlock.decode(block.encode())
        assert back.attrs(0) == {}
        assert list(back.records()) == records

    def test_rejects_bad_magic(self):
        with pytest.raises(StorageError):
            ColumnBlock.decode(b"JUNK" + b"\x00" * 40)

    def test_rejects_truncation(self, backend):
        payload = ColumnBlock.from_points(
            make_points(10, seed=1), 2).encode()
        with pytest.raises(StorageError):
            ColumnBlock.decode(payload[:-5])
        with pytest.raises(StorageError):
            ColumnBlock.decode(payload + b"\x00")

    def test_rejects_ragged_columns(self):
        with pytest.raises(StorageError):
            ColumnBlock(array("q", [1, 2]), [array("d", [0.5])])
        with pytest.raises(StorageError):
            RecordBlock(array("q", [1]), array("d", [1.0]),
                        array("d", [2.0]), array("d", []))

    def test_record_block_wrong_column_count(self, backend):
        payload = ColumnBlock.from_points(
            make_points(4, seed=8), 2).encode()
        with pytest.raises(StorageError):
            RecordBlock.decode(payload)

    @given(st.lists(st.tuples(
        st.integers(min_value=-2**62, max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.dictionaries(st.text(max_size=8),
                        st.integers(min_value=-1000, max_value=1000),
                        max_size=3)), max_size=40))
    @settings(max_examples=75, deadline=None)
    def test_record_block_roundtrip_property(self, rows):
        records = [Record(record_id=rid, lon=lon, lat=lat, t=t,
                          attrs=attrs)
                   for rid, lon, lat, t, attrs in rows]
        payload = RecordBlock.from_records(records).encode(
            meta={"run_id": 42})
        back, meta = RecordBlock.decode(payload)
        assert meta == {"run_id": 42}
        assert list(back.records()) == records


# ----------------------------------------------------------------------
# LSM run payloads: block format forward, legacy JSON back-compat
# ----------------------------------------------------------------------

def _sealed_lsm(seed=77, n=40, extra=90):
    from repro.core.engine import Dataset
    from repro.storage.dfs import SimulatedDFS
    from repro.storage.lsm import LSMTree

    base = make_records(n, seed=seed)
    dataset = Dataset("runs", base, dims=2, rs_buffer_size=16,
                      build_ls=False, seed=seed)
    dfs = SimulatedDFS(machines=3, replication=2)
    lsm = LSMTree.open(dataset, dfs=dfs, memtable_limit=32,
                       compact_after_runs=999)
    rng = random.Random(seed + 1)
    for i in range(extra):
        dataset.insert(Record(record_id=1000 + i,
                              lon=rng.uniform(0, 100),
                              lat=rng.uniform(0, 100),
                              t=rng.uniform(0, 1000),
                              attrs={"v": round(rng.gauss(10, 2), 6)}))
    assert lsm.runs, "workload too small to seal a run"
    return dataset, dfs, lsm


def _reopen(dataset, dfs):
    from repro.core.engine import Dataset
    from repro.storage.lsm import LSMTree

    fresh = Dataset("runs", list(dataset.records.values()), dims=2,
                    rs_buffer_size=16, build_ls=False, seed=1)
    return LSMTree.open(fresh, dfs=dfs, memtable_limit=32,
                        compact_after_runs=999)


class TestRunPayloads:
    def test_sealed_run_files_are_blocks(self):
        _, dfs, lsm = _sealed_lsm()
        for run in lsm.runs:
            data = dfs.read_file(run.file)
            assert is_block_payload(data)
            block, meta = RecordBlock.decode(data)
            assert meta["run_id"] == run.run_id
            assert {r.record_id: r for r in block.records()} \
                == run.records

    def test_restore_from_block_payload(self):
        dataset, dfs, lsm = _sealed_lsm()
        reopened = _reopen(dataset, dfs)
        assert {r.run_id: dict(r.records) for r in reopened.runs} \
            == {r.run_id: dict(r.records) for r in lsm.runs}

    def test_restore_from_legacy_json_run(self):
        from repro.storage.json_codec import canonical_json

        dataset, dfs, lsm = _sealed_lsm()
        # Rewrite every run file in the pre-columnar canonical-JSON
        # layout, as a restart against old on-disk state would see.
        for run in lsm.runs:
            legacy = canonical_json({
                "run_id": run.run_id,
                "records": [run.records[rid].to_document()
                            for rid in sorted(run.records)],
            }).encode()
            assert not is_block_payload(legacy)
            dfs.write_file(run.file, legacy)
        reopened = _reopen(dataset, dfs)
        assert {r.run_id: dict(r.records) for r in reopened.runs} \
            == {r.run_id: dict(r.records) for r in lsm.runs}

    def test_is_block_payload_rejects_json(self):
        assert not is_block_payload(json.dumps({"a": 1}).encode())
        assert not is_block_payload(b"")
        assert is_block_payload(BLOCK_MAGIC + b"anything")


class TestBackendSwitch:
    def test_backend_name_reports_stdlib(self, monkeypatch):
        monkeypatch.setattr(blocks_mod, "_numpy", None)
        assert backend_name() == "stdlib"

    def test_backend_name_reports_numpy(self):
        if blocks_mod._numpy is None:
            assert backend_name() == "stdlib"
        else:
            assert backend_name() == "numpy"
