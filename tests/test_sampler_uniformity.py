"""Statistical uniformity tests for the samplers.

Definition 1 demands *uniform* random samples of ``P ∩ Q``.  We check this
with chi-square goodness-of-fit tests: draw the first sample (and k-sample
prefixes) many times and verify every in-range point appears equally often.

Randomness scope matters: QueryFirst/SampleFirst/RandomPath are uniform
over per-query randomness alone, but the LS-tree's guarantee is over the
*index build* coin flips (a fixed forest always serves level-ℓ points
first), so its trials rebuild the forest.  The RS-tree's buffers refill
with fresh randomness as they are consumed, so a single shared index is
uniform across repeated queries — which is what we assert.

Seeds are fixed, so these tests are deterministic; thresholds use the 0.001
quantile to keep false failures out.
"""

import random

from scipy import stats

from repro.core.geometry import Rect
from repro.core.sampling import (LSTree, LSTreeSampler, QueryFirstSampler,
                                 RandomPathSampler, RSTreeSampler,
                                 SampleFirstSampler)
from repro.core.sampling.base import take
from repro.index.hilbert_rtree import HilbertRTree
from repro.index.rtree import RTree

from tests.conftest import brute_force_range, make_points

BOUNDS = Rect((0, 0), (100, 100))
POINTS = make_points(400, seed=77)
BOX = Rect((25, 25), (75, 75))
IN_RANGE = sorted(brute_force_range(POINTS, BOX))


def chi_square_pvalue(counts: dict[int, int], total_draws: int) -> float:
    expected = total_draws / len(IN_RANGE)
    observed = [counts.get(pid, 0) for pid in IN_RANGE]
    chi2 = sum((o - expected) ** 2 / expected for o in observed)
    return stats.chi2.sf(chi2, df=len(IN_RANGE) - 1)


def run_trials(make_sampler, k: int, seed: int, trials: int = 3000,
               rebuild: bool = False) -> float:
    """p-value for 'first k samples hit every point equally often'.

    ``make_sampler(build_seed)`` constructs the sampler; with
    ``rebuild=True`` it is called once per trial so index-construction
    randomness is part of each draw.
    """
    counts: dict[int, int] = {}
    sampler = make_sampler(seed)
    for trial in range(trials):
        if rebuild and trial > 0:
            sampler = make_sampler(seed * 7_777_777 + trial)
        rng = random.Random(seed * 1_000_003 + trial)
        for entry in take(sampler.sample_stream(BOX, rng), k):
            counts[entry.item_id] = counts.get(entry.item_id, 0) + 1
    return chi_square_pvalue(counts, trials * k)


def plain_tree() -> RTree:
    tree = RTree(2, leaf_capacity=16, branch_capacity=8)
    tree.bulk_load(POINTS)
    return tree


def make_ls(build_seed: int) -> LSTreeSampler:
    forest = LSTree(2, rng=random.Random(build_seed), leaf_capacity=16,
                    branch_capacity=8)
    forest.bulk_load(POINTS)
    return LSTreeSampler(forest)


def make_rs(build_seed: int) -> RSTreeSampler:
    tree = HilbertRTree(2, BOUNDS, leaf_capacity=16, branch_capacity=8)
    tree.bulk_load(POINTS)
    sampler = RSTreeSampler(tree, buffer_size=16,
                            rng=random.Random(build_seed))
    sampler.prepare()
    return sampler


class TestFirstSampleUniform:
    """The very first emitted sample must be uniform on P ∩ Q."""

    def test_query_first(self):
        assert run_trials(lambda s: QueryFirstSampler(plain_tree()),
                          k=1, seed=1) > 1e-3

    def test_sample_first(self):
        assert run_trials(lambda s: SampleFirstSampler(plain_tree()),
                          k=1, seed=2) > 1e-3

    def test_random_path(self):
        assert run_trials(lambda s: RandomPathSampler(plain_tree()),
                          k=1, seed=3) > 1e-3

    def test_ls_tree(self):
        assert run_trials(make_ls, k=1, seed=4, trials=1500,
                          rebuild=True) > 1e-3

    def test_rs_tree(self):
        # One shared index: refills keep repeated queries uniform.
        assert run_trials(make_rs, k=1, seed=5) > 1e-3


class TestPrefixUniform:
    """k-prefixes must cover in-range points equally often (the prefix of
    the stream is a uniform k-subset)."""

    K = 8

    def test_random_path_prefix(self):
        assert run_trials(lambda s: RandomPathSampler(plain_tree()),
                          k=self.K, seed=6) > 1e-3

    def test_ls_tree_prefix(self):
        assert run_trials(make_ls, k=self.K, seed=7, trials=1000,
                          rebuild=True) > 1e-3

    def test_rs_tree_prefix(self):
        assert run_trials(make_rs, k=self.K, seed=8) > 1e-3


class TestLevelAssignment:
    def test_ls_levels_are_geometric(self):
        """Fraction surviving to level i should be ~2^-i."""
        forest = LSTree(2, rng=random.Random(21))
        pts = make_points(20_000, seed=99)
        forest.bulk_load(pts)
        n = len(pts)
        level1 = sum(1 for lvl in forest.levels.values() if lvl >= 1)
        level2 = sum(1 for lvl in forest.levels.values() if lvl >= 2)
        assert abs(level1 / n - 0.5) < 0.02
        assert abs(level2 / n - 0.25) < 0.02
