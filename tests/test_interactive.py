"""Interactive exploration: the paper's headline interaction pattern.

"User may change to a different area ... while the first query is still
being executed."  Sessions are cooperative generators, so many queries
can be in flight at once; abandoning one costs nothing further.  These
tests pin down that contract.
"""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.estimators.aggregates import AvgEstimator
from repro.core.records import Record, STRange, attribute_getter
from repro.core.session import StopCondition
from repro.index.cost import CostCounter


def build_dataset(n=4000, seed=111):
    rng = random.Random(seed)
    records = [Record(i, lon=rng.uniform(0, 100),
                      lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                      attrs={"v": rng.gauss(100, 10)})
               for i in range(n)]
    return Dataset("inter", records, rs_buffer_size=32)


DATASET = build_dataset()
AREA_1 = STRange(10, 10, 50, 50)
AREA_2 = STRange(55, 55, 95, 95)


def truth(area):
    vals = [r.attrs["v"] for r in DATASET.records.values()
            if area.contains(r)]
    return sum(vals) / len(vals)


class TestInterleavedSessions:
    def test_two_sessions_interleave_correctly(self):
        s1 = DATASET.session(AREA_1,
                             AvgEstimator(attribute_getter("v")),
                             method="rs-tree", rng=random.Random(1),
                             report_every=8)
        s2 = DATASET.session(AREA_2,
                             AvgEstimator(attribute_getter("v")),
                             method="rs-tree", rng=random.Random(2),
                             report_every=8)
        run1 = s1.run(StopCondition(max_samples=400))
        run2 = s2.run(StopCondition(max_samples=400))
        finals = {}
        # Strict alternation: one progress step each, until both stop.
        live = {"a": run1, "b": run2}
        while live:
            for name, it in list(live.items()):
                point = next(it, None)
                if point is None or point.done:
                    finals[name] = point
                    del live[name]
        assert finals["a"].estimate.value == pytest.approx(
            truth(AREA_1), rel=0.05)
        assert finals["b"].estimate.value == pytest.approx(
            truth(AREA_2), rel=0.05)

    def test_abandoning_a_query_draws_no_more_samples(self):
        cost = CostCounter()
        est = AvgEstimator(attribute_getter("v"))
        sampler = DATASET.samplers["rs-tree"]
        from repro.core.session import OnlineQuerySession
        session = OnlineQuerySession(sampler, est,
                                     DATASET.to_rect(AREA_1),
                                     DATASET.lookup,
                                     rng=random.Random(3),
                                     report_every=4)
        session.cost = cost
        gen = session.run(StopCondition())
        next(gen)
        gen.close()  # the user clicked elsewhere
        emitted_at_close = cost.samples_emitted
        assert cost.samples_emitted == emitted_at_close  # no background work

    def test_restart_after_refinement(self):
        """The dilemma the paper solves: user stops query 1 early, issues
        query 2 immediately, and query 2 is unaffected."""
        est1 = AvgEstimator(attribute_getter("v"))
        s1 = DATASET.session(AREA_1, est1, method="ls-tree",
                             rng=random.Random(4), report_every=4)
        for point in s1.run(StopCondition()):
            if point.k >= 12:
                break  # satisfied with a rough answer
        final2 = DATASET.session(
            AREA_2, AvgEstimator(attribute_getter("v")),
            method="ls-tree", rng=random.Random(5),
            report_every=16).run_to_stop(
                StopCondition(target_relative_error=0.02))
        assert final2.estimate.interval.relative_half_width() <= 0.02

    def test_many_concurrent_sessions(self):
        sessions = []
        for i in range(8):
            area = STRange(5 + i * 5, 5, 60 + i * 4, 90)
            est = AvgEstimator(attribute_getter("v"))
            sessions.append(DATASET.session(
                area, est, method="rs-tree",
                rng=random.Random(10 + i),
                report_every=8).run(StopCondition(max_samples=64)))
        results = []
        while sessions:
            still = []
            for gen in sessions:
                point = next(gen, None)
                if point is None or point.done:
                    if point is not None:
                        results.append(point)
                else:
                    still.append(gen)
            sessions = still
        assert len(results) == 8
        assert all(p.estimate.k >= 64 or p.estimate.exact
                   for p in results)
