"""Property-based fuzz of the tiered ingest path vs a dict oracle.

Hypothesis drives arbitrary interleavings of insert / delete / seal /
compact against an LSM-attached dataset while a plain dict mirrors the
intended live set.  After every operation the merged tiered view must
agree with the oracle exactly: ``range_count`` over the full domain
equals the dict size, and a full without-replacement drain is a
permutation of the dict's keys.  This is Definition 1 as an invariant —
no operation ordering may make the merged sample over- or under-count
any record.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Dataset
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.storage.lsm import LSMTree

EVERYTHING = Rect((0, 0), (100, 100))
WEST = Rect((0, 0), (50, 100))

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def op_sequence(draw):
    """Insert/delete/seal/compact ops over small ids.

    Tracks liveness while generating so deletes always target a live
    id and the sequence is replayable without bookkeeping surprises.
    """
    n_seed = draw(st.integers(0, 40))
    n = draw(st.integers(5, 80))
    ops = []
    live = set(range(n_seed))
    next_id = 1000
    for _ in range(n):
        kind = draw(st.integers(0, 9))
        if kind == 0:
            ops.append(("seal",))
        elif kind == 1:
            ops.append(("compact",))
        elif kind <= 4 and live:
            victim = draw(st.sampled_from(sorted(live)))
            live.discard(victim)
            ops.append(("delete", victim))
        else:
            lon, lat = draw(coord), draw(coord)
            ops.append(("insert", next_id, lon, lat))
            live.add(next_id)
            next_id += 1
    return n_seed, ops


def seed_records(n, seed=3):
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=float(i))
            for i in range(n)]


def check_against(dataset, model):
    sampler = dataset.samplers["lsm-tiered"]
    for rect in (EVERYTHING, WEST):
        want = {rid for rid, r in model.items()
                if rect.contains_point((r.lon, r.lat))}
        assert sampler.range_count(rect) == len(want)
        got = [e.item_id for e in
               sampler.sample_stream(rect, random.Random(11))]
        assert len(got) == len(set(got)) == len(want)
        assert set(got) == want


class TestLSMProperties:
    @given(op_sequence())
    @settings(max_examples=50, deadline=None)
    def test_merged_view_matches_oracle(self, seq):
        n_seed, ops = seq
        base = seed_records(n_seed)
        dataset = Dataset("fuzz", base, dims=2, rs_buffer_size=8,
                          build_ls=False, seed=17)
        lsm = LSMTree(dataset, memtable_limit=16,
                      compact_after_runs=999)
        dataset.attach_lsm(lsm)
        model = {r.record_id: r for r in base}
        for op in ops:
            if op[0] == "insert":
                _, rid, lon, lat = op
                rec = Record(record_id=rid, lon=lon, lat=lat,
                             t=float(rid))
                dataset.insert(rec)
                model[rid] = rec
            elif op[0] == "delete":
                dataset.delete(op[1])
                del model[op[1]]
            elif op[0] == "seal":
                if lsm.memtable.records:
                    lsm.seal()
            else:
                lsm.compact()
            check_against(dataset, model)
        # End state: tier bookkeeping is internally consistent.
        shape = lsm.tier_shape()
        assert shape["memtable_records"] == len(lsm.memtable.records)
        assert shape["sealed_runs"] == len(lsm.runs)
        live_placed = (len(lsm.memtable.records)
                       + sum(1 for _ in lsm._run_of))
        assert live_placed <= len(model)

    @given(op_sequence())
    @settings(max_examples=25, deadline=None)
    def test_compact_is_transparent(self, seq):
        """Compacting at the end never changes the merged view."""
        n_seed, ops = seq
        base = seed_records(n_seed)
        dataset = Dataset("fuzz", base, dims=2, rs_buffer_size=8,
                          build_ls=False, seed=23)
        lsm = LSMTree(dataset, memtable_limit=16,
                      compact_after_runs=999)
        dataset.attach_lsm(lsm)
        model = {r.record_id: r for r in base}
        for op in ops:
            if op[0] == "insert":
                _, rid, lon, lat = op
                rec = Record(record_id=rid, lon=lon, lat=lat,
                             t=float(rid))
                dataset.insert(rec)
                model[rid] = rec
            elif op[0] == "delete":
                dataset.delete(op[1])
                del model[op[1]]
            elif op[0] == "seal":
                if lsm.memtable.records:
                    lsm.seal()
            # skip generated compacts: this test compacts only once
        check_against(dataset, model)
        lsm.compact()
        assert not lsm.runs and not lsm.tombstones
        check_against(dataset, model)
