"""Integration tests: sessions, the optimizer and the engine."""

import itertools
import random

import pytest

from repro.core.engine import Dataset, StormEngine
from repro.core.estimators.aggregates import AvgEstimator
from repro.core.geometry import Rect
from repro.core.optimizer import QueryOptimizer
from repro.core.records import Record, STRange, attribute_getter
from repro.core.session import OnlineQuerySession, StopCondition
from repro.errors import OptimizerError, StormError

from tests.conftest import make_points


def osm_like_records(n=3000, seed=101):
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"altitude": rng.gauss(500, 100)})
            for i in range(n)]


RECORDS = osm_like_records()
DATASET = Dataset("osm", RECORDS, rs_buffer_size=32)
QUERY = STRange(20, 20, 80, 80, 100, 900)


def truth_avg(query=QUERY, attr="altitude"):
    vals = [r.attrs[attr] for r in RECORDS if query.contains(r)]
    return sum(vals) / len(vals)


class TestStopConditions:
    def test_sample_budget(self):
        est = AvgEstimator(attribute_getter("altitude"))
        session = DATASET.session(QUERY, est, method="rs-tree",
                                  rng=random.Random(1), report_every=8)
        final = session.run_to_stop(StopCondition(max_samples=64))
        assert final.done
        assert final.reason == "sample budget reached"
        assert 64 <= final.k < 80

    def test_time_budget_with_fake_clock(self):
        est = AvgEstimator(attribute_getter("altitude"))
        ticker = itertools.count()
        clock = lambda: next(ticker) * 0.01  # noqa: E731
        sampler = DATASET.samplers["rs-tree"]
        session = OnlineQuerySession(sampler, est, QUERY.to_rect(3),
                                     DATASET.lookup,
                                     rng=random.Random(2),
                                     clock=clock, report_every=4)
        final = session.run_to_stop(StopCondition(max_seconds=0.5))
        assert final.reason == "time budget reached"

    def test_accuracy_target(self):
        est = AvgEstimator(attribute_getter("altitude"))
        session = DATASET.session(QUERY, est, method="rs-tree",
                                  rng=random.Random(3), report_every=8)
        final = session.run_to_stop(
            StopCondition(target_relative_error=0.02))
        assert final.reason == "target relative error reached"
        assert final.estimate.interval.relative_half_width() <= 0.02
        assert final.estimate.interval.contains(truth_avg())

    def test_exhaustion_gives_exact(self):
        small = STRange(45, 45, 52, 52)
        est = AvgEstimator(attribute_getter("altitude"))
        session = DATASET.session(small, est, method="query-first",
                                  rng=random.Random(4), report_every=4)
        final = session.run_to_stop(StopCondition())
        assert final.reason == "exhausted (exact result)"
        assert final.estimate.exact
        assert final.estimate.value == pytest.approx(truth_avg(small))

    def test_user_stop_mode(self):
        est = AvgEstimator(attribute_getter("altitude"))
        session = DATASET.session(QUERY, est, method="ls-tree",
                                  rng=random.Random(5), report_every=4)
        for point in session.run(StopCondition()):
            if point.k >= 20:
                break  # the user got bored — that must be legal
        assert est.k >= 20

    def test_empty_range(self):
        est = AvgEstimator(attribute_getter("altitude"))
        session = DATASET.session(STRange(200, 200, 300, 300), est,
                                  method="rs-tree",
                                  rng=random.Random(6))
        final = session.run_to_stop(StopCondition(max_samples=10))
        assert final.reason == "empty range"
        assert final.estimate.exact

    def test_bad_condition_rejected(self):
        with pytest.raises(StormError):
            StopCondition(max_samples=0)

    def test_estimates_improve_over_time(self):
        est = AvgEstimator(attribute_getter("altitude"))
        session = DATASET.session(QUERY, est, method="rs-tree",
                                  rng=random.Random(7), report_every=16)
        history = session.history(StopCondition(max_samples=600))
        widths = [p.estimate.interval.width for p in history
                  if p.estimate.interval is not None]
        assert widths[-1] < widths[0]


class TestOptimizer:
    def test_small_k_prefers_index_samplers(self):
        plan = DATASET.optimizer.choose(QUERY.to_rect(3), expected_k=32)
        assert plan.method in ("rs-tree", "ls-tree")

    def test_huge_k_prefers_query_first(self):
        q = DATASET.tree.range_count(QUERY.to_rect(3))
        plan = DATASET.optimizer.choose(QUERY.to_rect(3), expected_k=q)
        assert plan.method == "query-first"

    def test_sample_first_never_wins_selective_queries(self):
        tiny = STRange(45, 45, 47, 47).to_rect(3)
        plan = DATASET.optimizer.choose(tiny, expected_k=16)
        assert plan.method != "sample-first"

    def test_explain_mentions_choice(self):
        plan = DATASET.optimizer.choose(QUERY.to_rect(3))
        assert plan.method in plan.explain()
        assert "<-- chosen" in plan.explain()

    def test_rejects_empty_registry(self):
        with pytest.raises(OptimizerError):
            QueryOptimizer({})

    def test_rejects_bad_k(self):
        with pytest.raises(OptimizerError):
            DATASET.optimizer.choose(QUERY.to_rect(3), expected_k=0)


class TestDataset:
    def test_rejects_duplicate_ids(self):
        with pytest.raises(StormError):
            Dataset("dup", [Record(0, 0, 0), Record(0, 1, 1)])

    def test_insert_and_delete_visible_to_queries(self):
        ds = Dataset("mut", osm_like_records(500, seed=7),
                     rs_buffer_size=16)
        box = STRange(0, 0, 100, 100)
        before = ds.tree.range_count(box.to_rect(3))
        ds.insert(Record(10_000, lon=50, lat=50, t=500,
                         attrs={"altitude": 42.0}))
        assert ds.tree.range_count(box.to_rect(3)) == before + 1
        assert ds.delete(10_000)
        assert ds.tree.range_count(box.to_rect(3)) == before

    def test_delete_missing_returns_false(self):
        ds = Dataset("mut2", osm_like_records(100, seed=8))
        assert not ds.delete(999_999)

    def test_2d_dataset(self):
        pts = make_points(300, seed=51)
        records = [Record(pid, lon=x, lat=y) for pid, (x, y) in pts]
        ds = Dataset("flat", records, dims=2, build_ls=False)
        assert ds.tree.range_count(Rect((0, 0), (100, 100))) == 300

    def test_dim_mismatch_query_rejected(self):
        ds = Dataset("d3", osm_like_records(50, seed=9))
        with pytest.raises(StormError):
            ds.to_rect(Rect((0, 0), (1, 1)))

    def test_unknown_method_rejected(self):
        est = AvgEstimator(attribute_getter("altitude"))
        with pytest.raises(StormError):
            DATASET.session(QUERY, est, method="magic")


class TestEngine:
    def setup_method(self):
        self.engine = StormEngine(seed=1)
        self.engine.register(DATASET)

    def test_avg_helper(self):
        # A single 95% interval may legitimately miss; check coverage
        # across seeds instead of one knife-edge draw.
        hits = 0
        for seed in range(10):
            point = self.engine.avg(
                "osm", "altitude", QUERY,
                stop=StopCondition(max_samples=400),
                rng=random.Random(seed))
            assert point.estimate.value == pytest.approx(
                truth_avg(), rel=0.05)
            if point.estimate.interval.contains(truth_avg()):
                hits += 1
        assert hits >= 8

    def test_sum_helper(self):
        point = self.engine.sum(
            "osm", "altitude", QUERY,
            stop=StopCondition(max_samples=400),
            rng=random.Random(12))
        q = DATASET.tree.range_count(QUERY.to_rect(3))
        assert point.estimate.value == pytest.approx(
            truth_avg() * q, rel=0.05)

    def test_count_helper_exact(self):
        point = self.engine.count("osm", QUERY,
                                  rng=random.Random(13))
        q = DATASET.tree.range_count(QUERY.to_rect(3))
        assert point.estimate.value == q
        assert point.estimate.exact

    def test_count_with_predicate(self):
        point = self.engine.count(
            "osm", QUERY, predicate=lambda r: r.attrs["altitude"] > 500,
            stop=StopCondition(max_samples=500),
            rng=random.Random(14))
        truth = sum(1 for r in RECORDS
                    if QUERY.contains(r) and r.attrs["altitude"] > 500)
        assert point.estimate.interval.lo <= truth \
            <= point.estimate.interval.hi

    def test_unknown_dataset(self):
        with pytest.raises(StormError):
            self.engine.avg("nope", "x", QUERY)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(StormError):
            self.engine.register(DATASET)

    def test_create_and_drop(self):
        ds = self.engine.create_dataset(
            "tmp", osm_like_records(100, seed=15))
        assert self.engine.dataset("tmp") is ds
        self.engine.drop_dataset("tmp")
        with pytest.raises(StormError):
            self.engine.dataset("tmp")
