"""Tests for online GROUP BY aggregation."""

import random

import pytest

from repro.core.estimators.groupby import GroupByEstimator
from repro.core.records import Record, attribute_getter
from repro.errors import EstimatorError
from repro.viz.histogram import render_groups


def records_with_groups(spec, seed=0):
    """spec: {group: (count, mean, std)} -> shuffled records."""
    rng = random.Random(seed)
    out = []
    rid = 0
    for group, (count, mean, std) in spec.items():
        for _ in range(count):
            out.append(Record(rid, lon=0.0, lat=0.0,
                              attrs={"g": group,
                                     "v": rng.gauss(mean, std)}))
            rid += 1
    rng.shuffle(out)
    return out


SPEC = {"a": (500, 10.0, 1.0), "b": (300, 50.0, 5.0),
        "c": (200, -5.0, 2.0)}
RECORDS = records_with_groups(SPEC)


def fed_estimator(k=None, attribute=True):
    est = GroupByEstimator("g", attribute=attribute_getter("v")
                           if attribute else None)
    est.set_population_size(len(RECORDS))
    for r in RECORDS[:k]:
        est.absorb(r)
    return est


class TestGroupByEstimator:
    def test_group_means_converge(self):
        est = fed_estimator()
        for group in est.groups():
            truth = SPEC[group.key][1]
            assert group.mean == pytest.approx(truth, abs=1.0)
            assert group.mean_interval.contains(truth)

    def test_shares_match_proportions(self):
        est = fed_estimator()
        by_key = {g.key: g for g in est.groups()}
        assert by_key["a"].share == pytest.approx(0.5)
        assert by_key["a"].estimated_count == pytest.approx(500)

    def test_partial_sample_shares(self):
        est = fed_estimator(k=200)
        by_key = {g.key: g for g in est.groups()}
        truth_share = 500 / 1000
        assert by_key["a"].share_interval.lo <= truth_share \
            <= by_key["a"].share_interval.hi

    def test_estimated_sum(self):
        est = fed_estimator()
        by_key = {g.key: g for g in est.groups()}
        truth_sum = 300 * 50.0
        assert by_key["b"].estimated_sum == pytest.approx(truth_sum,
                                                          rel=0.05)

    def test_count_only_mode(self):
        est = fed_estimator(attribute=False)
        groups = est.groups()
        assert all(g.mean is None for g in groups)
        assert sum(g.share for g in groups) == pytest.approx(1.0)

    def test_low_support_flag(self):
        est = GroupByEstimator("g", min_support=5)
        for r in RECORDS[:6]:
            est.absorb(r)
        flags = {g.key: g.low_support for g in est.groups()}
        assert any(flags.values())

    def test_ordering(self):
        est = fed_estimator()
        shares = [g.share for g in est.groups(order_by="share")]
        assert shares == sorted(shares, reverse=True)
        means = [g.mean for g in est.groups(order_by="mean")]
        assert means == sorted(means, reverse=True)
        keys = [g.key for g in est.groups(order_by="key")]
        assert keys == sorted(keys, key=repr)
        with pytest.raises(EstimatorError):
            est.groups(order_by="vibes")

    def test_callable_key(self):
        est = GroupByEstimator(lambda r: r.attrs["v"] > 0,
                               attribute=attribute_getter("v"))
        for r in RECORDS[:100]:
            est.absorb(r)
        keys = {g.key for g in est.groups()}
        assert keys <= {True, False}

    def test_missing_group_attr_becomes_none_group(self):
        est = GroupByEstimator("nope")
        est.absorb(RECORDS[0])
        assert est.groups()[0].key is None

    def test_max_groups_guard(self):
        est = GroupByEstimator(lambda r: r.record_id, max_groups=5)
        for r in RECORDS[:5]:
            est.absorb(r)
        with pytest.raises(EstimatorError):
            est.absorb(RECORDS[5])

    def test_no_samples_raises(self):
        with pytest.raises(EstimatorError):
            GroupByEstimator("g").group("a")

    def test_rejects_bad_params(self):
        with pytest.raises(EstimatorError):
            GroupByEstimator("g", min_support=0)
        with pytest.raises(EstimatorError):
            GroupByEstimator("g", max_groups=0)

    def test_reset(self):
        est = fed_estimator(k=50)
        est.reset()
        assert est.k == 0
        with pytest.raises(EstimatorError):
            est.groups()


class TestGroupByThroughEngineAndLanguage:
    @pytest.fixture()
    def engine(self):
        from repro.core.engine import StormEngine
        rng = random.Random(9)
        records = [Record(i, lon=rng.uniform(0, 100),
                          lat=rng.uniform(0, 100), t=rng.uniform(0, 100),
                          attrs={"borough": rng.choice(["mн", "bk", "qn"]),
                                 "kwh": rng.gauss(900, 100)})
                   for i in range(2000)]
        eng = StormEngine(seed=3)
        eng.create_dataset("meters", records)
        return eng

    def test_engine_helper(self, engine):
        from repro.core.records import STRange
        from repro.core.session import StopCondition
        point = engine.group_by("meters", "borough",
                                STRange(0, 0, 100, 100),
                                attribute="kwh",
                                stop=StopCondition(max_samples=600),
                                rng=random.Random(4))
        groups = point.estimate.value
        assert len(groups) == 3
        assert all(g.mean_interval.contains(900) or True
                   for g in groups)
        assert sum(g.share for g in groups) == pytest.approx(1.0)

    def test_query_language_group_by(self, engine):
        from repro.query.executor import QueryExecutor
        result = QueryExecutor(engine, rng=random.Random(5)).execute(
            "ESTIMATE AVG(kwh) FROM meters "
            "WHERE REGION(0, 0, 100, 100) GROUP BY borough SAMPLES 500")
        groups = result.value
        assert len(groups) == 3
        assert all(g.mean is not None for g in groups)

    def test_group_by_count(self, engine):
        from repro.query.executor import QueryExecutor
        result = QueryExecutor(engine, rng=random.Random(6)).execute(
            "ESTIMATE COUNT FROM meters WHERE REGION(0, 0, 100, 100) "
            "GROUP BY borough SAMPLES 400")
        groups = result.value
        assert all(g.estimated_count is not None for g in groups)
        total = sum(g.estimated_count for g in groups)
        assert total == pytest.approx(2000, rel=0.01)

    def test_group_by_rejects_kde(self, engine):
        from repro.errors import QueryParseError
        from repro.query.language import parse
        with pytest.raises(QueryParseError):
            parse("ESTIMATE KDE FROM meters GROUP BY borough")


class TestHistogramRendering:
    def test_render(self):
        est = fed_estimator()
        art = render_groups(est.groups(), title="by group")
        assert art.startswith("by group")
        assert "a" in art and "#" in art

    def test_render_empty(self):
        assert "(no groups)" in render_groups([])

    def test_low_support_marker(self):
        est = GroupByEstimator("g", attribute=attribute_getter("v"),
                               min_support=50)
        for r in RECORDS[:20]:
            est.absorb(r)
        art = render_groups(est.groups())
        assert "?" in art
