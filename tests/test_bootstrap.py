"""Tests for the bootstrap customized-estimator machinery."""

import random

import pytest

from repro.core.estimators.bootstrap import (BootstrapEstimator,
                                             bootstrap_interval)
from repro.core.records import Record
from repro.errors import EstimatorError


def value_records(values):
    return [Record(i, lon=0.0, lat=0.0, attrs={"v": v})
            for i, v in enumerate(values)]


def mean_stat(records):
    return sum(r.attrs["v"] for r in records) / len(records)


class TestBootstrapInterval:
    def test_percentiles(self):
        values = list(range(100))
        ci = bootstrap_interval(values, level=0.90)
        assert ci.lo in (4, 5)   # float alpha rounding either way
        assert ci.hi in (95, 96)
        assert ci.contains(50)

    def test_single_value(self):
        ci = bootstrap_interval([7.0])
        assert ci.lo == ci.hi == 7.0

    def test_empty_raises(self):
        with pytest.raises(EstimatorError):
            bootstrap_interval([])

    def test_bad_level(self):
        with pytest.raises(EstimatorError):
            bootstrap_interval([1.0], level=2.0)


class TestBootstrapEstimator:
    def test_value_is_plugin_statistic(self):
        est = BootstrapEstimator(mean_stat, seed=1)
        for r in value_records([1.0, 2.0, 3.0, 4.0] * 4):
            est.absorb(r)
        e = est.estimate()
        assert e.value == pytest.approx(2.5)
        assert e.interval.lo <= 2.5 <= e.interval.hi

    def test_interval_tightens_with_samples(self):
        rng = random.Random(2)
        values = [rng.gauss(0, 1) for _ in range(800)]
        est = BootstrapEstimator(mean_stat, seed=3)
        for r in value_records(values[:30]):
            est.absorb(r)
        wide = est.estimate().interval.width
        for r in value_records(values[30:]):
            est.absorb(r)
        narrow = est.estimate().interval.width
        assert narrow < wide

    def test_coverage_reasonable(self):
        """Percentile bootstrap on the mean: ~90%+ coverage at 95%."""
        rng = random.Random(4)
        population = [rng.gauss(10, 3) for _ in range(5000)]
        mu = sum(population) / len(population)
        hits = 0
        trials = 60
        for t in range(trials):
            est = BootstrapEstimator(mean_stat, replicates=150, seed=t)
            sample = random.Random(100 + t).sample(population, 60)
            for r in value_records(sample):
                est.absorb(r)
            if est.estimate().interval.contains(mu):
                hits += 1
        assert hits / trials > 0.8

    def test_min_samples_enforced(self):
        est = BootstrapEstimator(mean_stat, min_samples=10)
        for r in value_records([1.0] * 5):
            est.absorb(r)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_reset(self):
        est = BootstrapEstimator(mean_stat)
        for r in value_records([1.0] * 20):
            est.absorb(r)
        est.reset()
        assert est.k == 0
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_rejects_bad_params(self):
        with pytest.raises(EstimatorError):
            BootstrapEstimator(mean_stat, replicates=5)
        with pytest.raises(EstimatorError):
            BootstrapEstimator(mean_stat, min_samples=1)

    def test_deterministic_under_seed(self):
        def run():
            est = BootstrapEstimator(mean_stat, seed=9)
            for r in value_records([1.0, 5.0, 2.0, 8.0] * 5):
                est.absorb(r)
            e = est.estimate()
            return e.interval.lo, e.interval.hi
        assert run() == run()

    def test_works_in_a_session(self):
        """End to end through the sampler machinery."""
        from repro.core.engine import Dataset
        from repro.core.records import STRange
        from repro.core.session import StopCondition
        rng = random.Random(11)
        records = [Record(i, lon=rng.uniform(0, 100),
                          lat=rng.uniform(0, 100),
                          attrs={"v": rng.gauss(50, 5)})
                   for i in range(1500)]
        ds = Dataset("boot", records, dims=2, build_ls=False,
                     rs_buffer_size=16)
        est = BootstrapEstimator(mean_stat, seed=12)
        session = ds.session(STRange(0, 0, 100, 100), est,
                             method="rs-tree", rng=random.Random(13),
                             report_every=64)
        final = session.run_to_stop(StopCondition(max_samples=256))
        assert final.estimate.interval.contains(50.0) or \
            abs(final.estimate.value - 50.0) < 2.0
