"""Crash-point matrix for the tiered ingest path.

The LSM write path has a strict durable order — WAL batch append (the
commit point) → run temp write → run rename → manifest temp write →
manifest rename — and WAL pruning only happens after the manifest has
durably advanced its replay LSN.  This suite kills the simulated
process at every interesting point in that order (plus torn variants)
and asserts that a cold restart from the DFS alone reproduces the
shadow copy of committed state *exactly*: record-for-record store
equality and a full-drain tiered sample that matches the live set.

The shadow is maintained the same way as ``repro.bench.recovery``:
a batch is added to it only once ``manager.apply`` returns, because
the WAL append inside it is the commit point.
"""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.errors import WriteCrashError
from repro.faults import FaultPlan
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.lsm import LSM_PREFIX, LSMTree
from repro.storage.recovery import checkpoint_store, recover_store
from repro.storage.wal import WriteAheadLog
from repro.updates.manager import UpdateBatch, UpdateManager

N_SEED = 400
BATCHES = 30
BATCH_INSERTS = 24
BATCH_DELETES = 4
MEMTABLE_LIMIT = 100
COMPACT_AFTER_RUNS = 3
SEGMENT_BYTES = 2048
EVERYTHING = Rect((0, 0), (100, 100))


def make_records(n, seed, start_id=0):
    rng = random.Random(seed)
    return [Record(record_id=start_id + i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": round(rng.gauss(10, 2), 6)})
            for i in range(n)]


def setup_stack(seed):
    """Checkpointed store + WAL + LSM-attached dataset + shadow."""
    dfs = SimulatedDFS(machines=4, replication=2)
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
    records = make_records(N_SEED, seed)
    dataset = Dataset("live", records, dims=2, rs_buffer_size=16,
                      build_ls=False, seed=seed)
    coll = store.collection("live")
    coll.insert_many(r.to_document() for r in records)
    checkpoint_store(store, wal)
    LSMTree.open(dataset, dfs=dfs, wal=wal,
                 memtable_limit=MEMTABLE_LIMIT,
                 compact_after_runs=COMPACT_AFTER_RUNS)
    manager = UpdateManager(dataset, store=store, collection="live",
                            wal=wal)
    shadow = {r.record_id: r.to_document() for r in records}
    return dfs, manager, shadow


def drive(manager, shadow, seed, batches=BATCHES):
    """Apply churn batches; returns (committed, crashed)."""
    rng = random.Random(seed)
    next_id = max(shadow) + 1
    for b in range(batches):
        ids = sorted(manager.dataset.records)
        deletes = rng.sample(ids, BATCH_DELETES)
        inserts = make_records(BATCH_INSERTS, seed * 613 + b,
                               start_id=next_id)
        next_id += BATCH_INSERTS
        docs = [r.to_document() for r in inserts]
        try:
            manager.apply(UpdateBatch(inserts=inserts,
                                      deletes=deletes))
        except WriteCrashError:
            return b, True
        for rid in deletes:
            shadow.pop(rid)
        for doc in docs:
            shadow[doc["_id"]] = doc
    return batches, False


def restart_and_check(dfs, shadow):
    """Cold restart from the DFS alone; assert state == shadow.

    Mirrors real recovery: replay the WAL into a fresh store, rebuild
    the dataset from the recovered documents, re-open the LSM (which
    restores runs, replays the WAL tail into the memtable, and sweeps
    orphans), then drain one full tiered sample stream.
    """
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
    recover_store(store, wal)
    docs = {doc["_id"]: doc
            for doc in store.collection("live").find()}
    assert docs == shadow, (
        f"store diverged: {len(docs)} recovered vs "
        f"{len(shadow)} expected")
    dataset = Dataset("live",
                      [Record.from_document(d)
                       for d in docs.values()],
                      dims=2, rs_buffer_size=16, build_ls=False,
                      seed=99)
    lsm = LSMTree.open(dataset, dfs=dfs, wal=wal,
                       memtable_limit=MEMTABLE_LIMIT,
                       compact_after_runs=COMPACT_AFTER_RUNS)
    sampler = dataset.samplers["lsm-tiered"]
    q = sampler.range_count(EVERYTHING)
    got = [e.item_id for e in
           sampler.sample_stream(EVERYTHING, random.Random(7))]
    assert q == len(shadow)
    assert len(got) == len(set(got)) == len(shadow)
    assert set(got) == set(shadow)
    return lsm


class TestCrashMatrix:
    """One test per kill point in the seal/flush/compact order."""

    def test_clean_restart_restores_tiers(self):
        dfs, manager, shadow = setup_stack(seed=71)
        drive(manager, shadow, seed=71)
        lsm = restart_and_check(dfs, shadow)
        # The restart rebuilt real tiers, not just a monolithic tree.
        assert lsm.runs or lsm.memtable.records

    def test_crash_before_wal_append(self):
        dfs, manager, shadow = setup_stack(seed=72)
        dfs.set_fault_plan(FaultPlan(seed=72)
                           .crash_write("wal/", nth=5))
        committed, crashed = drive(manager, shadow, seed=72)
        assert crashed and committed < BATCHES
        restart_and_check(dfs, shadow)

    def test_torn_wal_tail(self):
        dfs, manager, shadow = setup_stack(seed=73)
        dfs.set_fault_plan(FaultPlan(seed=73)
                           .torn_write("wal/", nth=8,
                                       keep_fraction=0.5))
        committed, crashed = drive(manager, shadow, seed=73)
        assert crashed and committed < BATCHES
        restart_and_check(dfs, shadow)

    def test_crash_during_run_temp_write(self):
        """Die inside the run file write: the batch is committed (WAL
        append preceded the seal), so recovery must replay it."""
        dfs, manager, shadow = setup_stack(seed=74)
        dfs.set_fault_plan(FaultPlan(seed=74)
                           .crash_write(LSM_PREFIX + "run-", nth=2))
        committed, crashed = drive(manager, shadow, seed=74)
        assert crashed and committed > 0
        # The crash struck inside manager.apply, *after* the WAL
        # append: that batch is committed even though apply raised.
        wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
        records, _ = wal.scan()
        batches = [r for r in records if r.type == "batch"]
        assert batches, "committed batch missing from WAL"
        last = batches[-1]
        for rid in last.payload.get("deletes", ()):
            shadow.pop(int(rid))
        for doc in last.payload.get("inserts", ()):
            shadow[doc["_id"]] = doc
        restart_and_check(dfs, shadow)

    def test_torn_run_temp_write_is_swept(self):
        """A torn run temp file is garbage; recovery sweeps it."""
        dfs, manager, shadow = setup_stack(seed=75)
        dfs.set_fault_plan(FaultPlan(seed=75)
                           .torn_write(LSM_PREFIX + "run-", nth=3,
                                       keep_fraction=0.3))
        committed, crashed = drive(manager, shadow, seed=75)
        assert crashed
        wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
        records, _ = wal.scan()
        batches = [r for r in records if r.type == "batch"]
        last = batches[-1]
        for rid in last.payload.get("deletes", ()):
            shadow.pop(int(rid))
        for doc in last.payload.get("inserts", ()):
            shadow[doc["_id"]] = doc
        lsm = restart_and_check(dfs, shadow)
        # No torn temp file survives the orphan sweep.
        leftovers = [n for n in dfs.list_files(LSM_PREFIX)
                     if n.endswith(".tmp")]
        assert leftovers == []
        assert lsm is not None

    def test_crash_during_manifest_write(self):
        """Die between run rename and manifest commit: the run file
        exists but the manifest never adopted it — recovery treats it
        as an orphan and replays its records from the WAL instead."""
        dfs, manager, shadow = setup_stack(seed=76)
        dfs.set_fault_plan(FaultPlan(seed=76)
                           .crash_write(LSM_PREFIX + "MANIFEST",
                                        nth=3))
        committed, crashed = drive(manager, shadow, seed=76)
        assert crashed
        wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
        records, _ = wal.scan()
        batches = [r for r in records if r.type == "batch"]
        last = batches[-1]
        for rid in last.payload.get("deletes", ()):
            shadow.pop(int(rid))
        for doc in last.payload.get("inserts", ()):
            shadow[doc["_id"]] = doc
        restart_and_check(dfs, shadow)

    def test_crash_during_checkpoint_flush(self):
        """Die inside the store flush: WAL still covers everything."""
        dfs, manager, shadow = setup_stack(seed=77)
        committed, _ = drive(manager, shadow, seed=77)
        assert committed == BATCHES
        dfs.set_fault_plan(FaultPlan(seed=77)
                           .torn_write("store/", nth=1,
                                       keep_fraction=0.4))
        with pytest.raises(WriteCrashError):
            manager.flush()
        dfs.set_fault_plan(None)
        restart_and_check(dfs, shadow)

    def test_checkpoint_then_crash_then_more_batches(self):
        """A full checkpoint (with WAL pruning) mid-history must not
        lose run tombstones: the manifest persists before the prune."""
        dfs, manager, shadow = setup_stack(seed=78)
        drive(manager, shadow, seed=78, batches=12)
        manager.flush()
        drive(manager, shadow, seed=78 * 5 + 1, batches=12)
        restart_and_check(dfs, shadow)

    def test_double_restart_is_stable(self):
        """Recovery is idempotent: restarting twice changes nothing."""
        dfs, manager, shadow = setup_stack(seed=79)
        dfs.set_fault_plan(FaultPlan(seed=79)
                           .crash_write("wal/", nth=9))
        drive(manager, shadow, seed=79)
        restart_and_check(dfs, shadow)
        restart_and_check(dfs, shadow)
