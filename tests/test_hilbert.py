"""Unit tests for the Hilbert curve codec."""

import pytest

from repro.core.geometry import Rect
from repro.errors import GeometryError
from repro.index.hilbert import (HilbertEncoder, hilbert_index,
                                 hilbert_index_batch, hilbert_point)


class TestHilbertIndex:
    def test_bijective_2d_small(self):
        bits = 3
        seen = set()
        for x in range(1 << bits):
            for y in range(1 << bits):
                key = hilbert_index((x, y), bits)
                assert (x, y) == hilbert_point(key, bits, 2)
                seen.add(key)
        assert seen == set(range(1 << (2 * bits)))

    def test_bijective_3d_small(self):
        bits = 2
        seen = set()
        for x in range(1 << bits):
            for y in range(1 << bits):
                for z in range(1 << bits):
                    key = hilbert_index((x, y, z), bits)
                    assert (x, y, z) == hilbert_point(key, bits, 3)
                    seen.add(key)
        assert seen == set(range(1 << (3 * bits)))

    def test_adjacent_keys_are_adjacent_cells_2d(self):
        """The defining Hilbert property: consecutive curve positions are
        grid neighbours (Manhattan distance 1)."""
        bits = 4
        prev = hilbert_point(0, bits, 2)
        for key in range(1, 1 << (2 * bits)):
            cur = hilbert_point(key, bits, 2)
            dist = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert dist == 1, f"jump at key {key}: {prev} -> {cur}"
            prev = cur

    def test_adjacent_keys_are_adjacent_cells_3d(self):
        bits = 2
        prev = hilbert_point(0, bits, 3)
        for key in range(1, 1 << (3 * bits)):
            cur = hilbert_point(key, bits, 3)
            dist = sum(abs(a - b) for a, b in zip(cur, prev))
            assert dist == 1
            prev = cur

    def test_1d_is_identity(self):
        assert hilbert_index((5,), 4) == 5
        assert hilbert_point(5, 4, 1) == (5,)

    def test_rejects_out_of_grid(self):
        with pytest.raises(GeometryError):
            hilbert_index((8, 0), 3)
        with pytest.raises(GeometryError):
            hilbert_index((-1, 0), 3)

    def test_rejects_bad_index(self):
        with pytest.raises(GeometryError):
            hilbert_point(1 << 10, 3, 2)


class TestHilbertEncoder:
    def test_grid_snapping(self):
        enc = HilbertEncoder(Rect((0, 0), (10, 10)), bits=4)
        assert enc.grid((0, 0)) == (0, 0)
        assert enc.grid((10, 10)) == (15, 15)

    def test_clamps_outside(self):
        enc = HilbertEncoder(Rect((0, 0), (10, 10)), bits=4)
        assert enc.grid((-5, 20)) == (0, 15)

    def test_key_locality(self):
        """Nearby points should usually have nearby keys: compare average
        key distance of near pairs vs far pairs."""
        enc = HilbertEncoder(Rect((0, 0), (100, 100)), bits=10)
        near = abs(enc.key((50, 50)) - enc.key((50.5, 50)))
        far = abs(enc.key((50, 50)) - enc.key((95, 5)))
        assert near < far

    def test_degenerate_axis(self):
        # A zero-extent axis (all points share a coordinate) must not
        # divide by zero.
        enc = HilbertEncoder(Rect((0, 5), (10, 5)), bits=4)
        assert enc.grid((3, 5))[1] == 0

    def test_dim_mismatch(self):
        enc = HilbertEncoder(Rect((0, 0), (1, 1)), bits=4)
        with pytest.raises(GeometryError):
            enc.key((0.5,))

    def test_rejects_silly_bits(self):
        with pytest.raises(GeometryError):
            HilbertEncoder(Rect((0, 0), (1, 1)), bits=0)


class TestBatchCodec:
    """hilbert_index_batch and HilbertEncoder.keys must agree with the
    scalar codec bit-for-bit — the bulk-load fast path is only a fast
    path if it computes the same curve."""

    def test_batch_matches_scalar_all_dims(self):
        import itertools
        import random as _random
        rng = _random.Random(5)
        for dim, bits in itertools.product((1, 2, 3), (4, 8, 16)):
            limit = 1 << bits
            pts = [tuple(rng.randrange(limit) for _ in range(dim))
                   for _ in range(200)]
            want = [hilbert_index(p, bits) for p in pts]
            assert hilbert_index_batch(pts, bits) == want

    def test_overflow_guard_falls_back_to_scalar(self):
        # 3 dims x 21 bits = 63 curve bits > the int64 budget: the
        # batch path must detour through the scalar codec, not wrap.
        pts = [(1, 2, 3), ((1 << 21) - 1,) * 3]
        want = [hilbert_index(p, 21) for p in pts]
        assert hilbert_index_batch(pts, 21) == want

    def test_empty_batch(self):
        assert hilbert_index_batch([], 8) == []

    def test_batch_rejects_out_of_grid(self):
        with pytest.raises(GeometryError):
            hilbert_index_batch([(0, 16)], 4)
        with pytest.raises(GeometryError):
            hilbert_index_batch([(-1, 0)], 4)

    def test_encoder_keys_match_scalar(self):
        import random as _random
        rng = _random.Random(9)
        enc = HilbertEncoder(Rect((0, 0), (100, 50)), bits=10)
        pts = [(rng.uniform(-10, 110), rng.uniform(-10, 60))
               for _ in range(300)]
        assert enc.keys(pts) == [enc.key(p) for p in pts]
        assert enc.keys([]) == []

    def test_encoder_keys_shape_check(self):
        enc = HilbertEncoder(Rect((0, 0), (1, 1)), bits=4)
        with pytest.raises(GeometryError):
            enc.keys([(0.5, 0.5, 0.5)])
