"""Unit tests for the Hilbert curve codec."""

import pytest

from repro.core.geometry import Rect
from repro.errors import GeometryError
from repro.index.hilbert import HilbertEncoder, hilbert_index, hilbert_point


class TestHilbertIndex:
    def test_bijective_2d_small(self):
        bits = 3
        seen = set()
        for x in range(1 << bits):
            for y in range(1 << bits):
                key = hilbert_index((x, y), bits)
                assert (x, y) == hilbert_point(key, bits, 2)
                seen.add(key)
        assert seen == set(range(1 << (2 * bits)))

    def test_bijective_3d_small(self):
        bits = 2
        seen = set()
        for x in range(1 << bits):
            for y in range(1 << bits):
                for z in range(1 << bits):
                    key = hilbert_index((x, y, z), bits)
                    assert (x, y, z) == hilbert_point(key, bits, 3)
                    seen.add(key)
        assert seen == set(range(1 << (3 * bits)))

    def test_adjacent_keys_are_adjacent_cells_2d(self):
        """The defining Hilbert property: consecutive curve positions are
        grid neighbours (Manhattan distance 1)."""
        bits = 4
        prev = hilbert_point(0, bits, 2)
        for key in range(1, 1 << (2 * bits)):
            cur = hilbert_point(key, bits, 2)
            dist = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert dist == 1, f"jump at key {key}: {prev} -> {cur}"
            prev = cur

    def test_adjacent_keys_are_adjacent_cells_3d(self):
        bits = 2
        prev = hilbert_point(0, bits, 3)
        for key in range(1, 1 << (3 * bits)):
            cur = hilbert_point(key, bits, 3)
            dist = sum(abs(a - b) for a, b in zip(cur, prev))
            assert dist == 1
            prev = cur

    def test_1d_is_identity(self):
        assert hilbert_index((5,), 4) == 5
        assert hilbert_point(5, 4, 1) == (5,)

    def test_rejects_out_of_grid(self):
        with pytest.raises(GeometryError):
            hilbert_index((8, 0), 3)
        with pytest.raises(GeometryError):
            hilbert_index((-1, 0), 3)

    def test_rejects_bad_index(self):
        with pytest.raises(GeometryError):
            hilbert_point(1 << 10, 3, 2)


class TestHilbertEncoder:
    def test_grid_snapping(self):
        enc = HilbertEncoder(Rect((0, 0), (10, 10)), bits=4)
        assert enc.grid((0, 0)) == (0, 0)
        assert enc.grid((10, 10)) == (15, 15)

    def test_clamps_outside(self):
        enc = HilbertEncoder(Rect((0, 0), (10, 10)), bits=4)
        assert enc.grid((-5, 20)) == (0, 15)

    def test_key_locality(self):
        """Nearby points should usually have nearby keys: compare average
        key distance of near pairs vs far pairs."""
        enc = HilbertEncoder(Rect((0, 0), (100, 100)), bits=10)
        near = abs(enc.key((50, 50)) - enc.key((50.5, 50)))
        far = abs(enc.key((50, 50)) - enc.key((95, 5)))
        assert near < far

    def test_degenerate_axis(self):
        # A zero-extent axis (all points share a coordinate) must not
        # divide by zero.
        enc = HilbertEncoder(Rect((0, 5), (10, 5)), bits=4)
        assert enc.grid((3, 5))[1] == 0

    def test_dim_mismatch(self):
        enc = HilbertEncoder(Rect((0, 0), (1, 1)), bits=4)
        with pytest.raises(GeometryError):
            enc.key((0.5,))

    def test_rejects_silly_bits(self):
        with pytest.raises(GeometryError):
            HilbertEncoder(Rect((0, 0), (1, 1)), bits=0)
