"""Shared fixtures for the STORM reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.geometry import Rect


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def make_points(n: int, seed: int = 7, dims: int = 2,
                lo: float = 0.0, hi: float = 100.0
                ) -> list[tuple[int, tuple[float, ...]]]:
    """Deterministic uniform random points with sequential ids."""
    r = random.Random(seed)
    return [(i, tuple(r.uniform(lo, hi) for _ in range(dims)))
            for i in range(n)]


def make_clustered_points(n: int, seed: int = 11, dims: int = 2,
                          clusters: int = 5, spread: float = 3.0
                          ) -> list[tuple[int, tuple[float, ...]]]:
    """Gaussian-cluster points (stress for MBR quality)."""
    r = random.Random(seed)
    centers = [tuple(r.uniform(10, 90) for _ in range(dims))
               for _ in range(clusters)]
    points = []
    for i in range(n):
        c = centers[r.randrange(clusters)]
        points.append(
            (i, tuple(r.gauss(cc, spread) for cc in c)))
    return points


def brute_force_range(points, rect: Rect) -> set[int]:
    """Ids of points inside the rect, by linear scan."""
    return {pid for pid, pt in points if rect.contains_point(pt)}


@pytest.fixture
def uniform_points():
    return make_points(2000)


@pytest.fixture
def clustered_points():
    return make_clustered_points(2000)
