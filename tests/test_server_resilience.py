"""Service-layer resilience tests.

Covers the failure modes production traffic produces: per-stream
deadlines (header-driven and defaulted), the quantum watchdog that
fails a wedged stream without stalling other tenants (including the
chi-square check that survivors' draws stay uniform), dead-client
reaping (disconnects over real sockets, abandoned unread streams),
load shedding under saturation with the Retry-After floor, the
one-shot 504 quota-release regression, graceful drain that suspends
— not cancels — detached streams, and the durable-detached-stream
journal: round-trip, torn-tail recovery, and the exact byte-identity
of a resumed stream vs an uninterrupted run.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import struct
import threading
import time

import pytest
from scipy import stats

from repro.core.engine import Dataset, StormEngine
from repro.core.estimators.base import Estimate
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.session import ProgressPoint
from repro.faults import FaultPlan
from repro.index.cost import CostCounter
from repro.server import (QueryService, ServerConfig, StormServer,
                          StreamJournal, StreamTask, TenantQuota)
from repro.server.protocol import ApiError, encode_frame
from repro.server.scheduler import FairScheduler

AVG_Q = ("ESTIMATE AVG(v) FROM pts "
         "WHERE REGION(5, 5, 95, 95) SAMPLES 1200")
LONG_Q = ("ESTIMATE AVG(v) FROM pts "
          "WHERE REGION(5, 5, 95, 95) SAMPLES 100000")


def make_records(n, seed=5):
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10, 2)})
            for i in range(n)]


def make_engine(n=3000, seed=1):
    engine = StormEngine(seed=seed)
    engine.create_dataset("pts", make_records(n), dims=2,
                          build_ls=False)
    return engine


def endless_gen():
    """A stream that never finishes on its own."""
    def gen():
        est = Estimate(value=0.0, std_error=None, interval=None,
                       k=0, q=None)
        for k in itertools.count(1):
            yield ProgressPoint(k=k, elapsed=0.0, estimate=est,
                                cost=CostCounter(), done=False)
    return gen


def counter_total(service, name):
    snapshot = service.obs.registry.snapshot()
    return sum(v for k, v in snapshot["counters"].items()
               if k == name or k.startswith(name + "{"))


# -- deadlines ----------------------------------------------------------


class TestDeadlines:
    def test_active_stream_past_deadline_fails_cleanly(self):
        scheduler = FairScheduler(max_concurrent=2).start()
        try:
            task = StreamTask("t", endless_gen(), detached=True,
                              deadline_seconds=0.2)
            scheduler.submit(task)
            assert task.wait_terminal(timeout=10)
            final = task.frames[-1]
            assert final["frame"] == "error"
            assert final["code"] == "deadline_exceeded"
        finally:
            scheduler.stop()

    def test_queued_stream_past_deadline_fails_too(self):
        """A deadline covers queue wait: a stream that never reached
        the engine still fails at its deadline."""
        scheduler = FairScheduler(max_concurrent=1).start()
        hog = StreamTask("hog", endless_gen(), detached=True)
        try:
            scheduler.submit(hog)
            queued = StreamTask("t", endless_gen(),
                                deadline_seconds=0.2)
            scheduler.submit(queued)
            assert queued.wait_terminal(timeout=10)
            assert queued.frames[-1]["code"] == "deadline_exceeded"
            assert not hog.terminal
        finally:
            scheduler.stop()

    def test_deadline_frees_quota_slot(self):
        engine = make_engine(800)
        # stream_buffer=2 parks the stream on backpressure (nobody
        # pops), so it is deterministically still live at deadline.
        svc = QueryService(engine, ServerConfig(
            max_streams=1, quantum=16, stream_buffer=2,
            quotas={"t": TenantQuota(max_concurrent_streams=1)}))
        try:
            first = svc.submit_stream("t", {"query": LONG_Q},
                                      deadline=0.2)
            assert first.wait_terminal(timeout=10)
            assert first.frames[-1]["code"] == "deadline_exceeded"
            # The slot must be verifiably free for the next stream.
            time.sleep(0.1)
            second = svc.submit_stream("t", {"query": AVG_Q})
            assert second.drain_frames(
                timeout=60)[-1]["frame"] == "end"
            assert counter_total(
                svc, "storm.server.deadline_exceeded") == 1
        finally:
            svc.shutdown(drain=False)

    def test_default_deadline_from_config(self):
        engine = make_engine(800)
        svc = QueryService(engine, ServerConfig(
            max_streams=1, quantum=16, stream_buffer=2,
            default_deadline=0.2))
        try:
            task = svc.submit_stream("t", {"query": LONG_Q})
            assert task.wait_terminal(timeout=10)
            assert task.frames[-1]["code"] == "deadline_exceeded"
        finally:
            svc.shutdown(drain=False)

    def test_bad_deadline_rejected(self):
        engine = make_engine(400)
        svc = QueryService(engine, ServerConfig(max_streams=1))
        try:
            with pytest.raises(ApiError) as err:
                svc.submit_stream("t", {"query": AVG_Q}, deadline=-1)
            assert err.value.status == 400
        finally:
            svc.shutdown(drain=False)


# -- the quantum watchdog -----------------------------------------------


def wedged_task(tenant="wedged", seconds=5.0):
    """A stream whose first quantum blocks the engine thread."""
    def gen():
        time.sleep(seconds)
        return
        yield  # pragma: no cover — makes this a generator
    return StreamTask(tenant, gen, detached=True)


class TestWatchdog:
    def test_wedged_quantum_fails_only_its_stream(self):
        scheduler = FairScheduler(max_concurrent=4,
                                  watchdog_seconds=0.1).start()
        victim = wedged_task()
        bystander = StreamTask("steady", endless_gen(),
                               detached=True)
        try:
            scheduler.submit(victim)
            scheduler.submit(bystander)
            assert victim.wait_terminal(timeout=10)
            final = victim.frames[-1]
            assert final["frame"] == "error"
            assert final["code"] == "watchdog_timeout"
            # The replacement engine thread keeps other tenants
            # drawing while the stale thread is still asleep.
            before = bystander.samples
            deadline = time.monotonic() + 10
            while bystander.samples <= before \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert bystander.samples > before
            assert scheduler.watchdog_kills == 1
        finally:
            scheduler.stop()

    def test_injected_delay_fault_triggers_watchdog(self):
        """FaultPlan's server.quantum delay spec wedges a real
        sampling quantum; the watchdog recovers the engine."""
        engine = make_engine(800)
        plan = FaultPlan().delay("server.quantum", 5.0, nth=3)
        svc = QueryService(engine, ServerConfig(
            max_streams=2, quantum=16, watchdog_seconds=0.1),
            faults=plan)
        try:
            task = svc.submit_stream("t", {"query": AVG_Q})
            frames = task.drain_frames(timeout=30)
            assert frames[-1]["frame"] == "error"
            assert frames[-1]["code"] == "watchdog_timeout"
            # The engine survived: a fresh stream completes.
            again = svc.submit_stream("t", {"query": AVG_Q})
            assert again.drain_frames(
                timeout=60)[-1]["frame"] == "end"
            assert counter_total(
                svc, "storm.server.watchdog_kills") == 1
        finally:
            svc.shutdown(drain=False)


def _recording_task(dataset, rect, seed, draws, quantum, counts,
                    lock):
    def gen():
        rng = random.Random(seed)
        stream = dataset.samplers["rs-tree"].sample_stream(rect, rng)
        est = Estimate(value=0.0, std_error=None, interval=None,
                       k=0, q=None)
        k = 0
        while k < draws:
            batch = list(itertools.islice(stream, quantum))
            if not batch:
                break
            with lock:
                for entry in batch:
                    counts[entry.item_id] = counts.get(
                        entry.item_id, 0) + 1
            k += len(batch)
            yield ProgressPoint(k=k, elapsed=0.0, estimate=est,
                                cost=CostCounter(),
                                done=k >= draws)
    return StreamTask(f"tenant-{seed % 7}", gen)


@pytest.mark.stat
def test_draws_stay_uniform_after_watchdog_kill():
    """Chi-square: a wedged stream killed by the watchdog leaves the
    surviving streams' draws exactly uniform over P ∩ Q — engine
    takeover changes *when* survivors draw, never *what*."""
    dataset = Dataset("pts", make_records(400, seed=21), dims=2,
                      build_ls=False, seed=21)
    rect = Rect((10.0, 10.0), (90.0, 90.0))
    in_range = {rid for rid, r in dataset.records.items()
                if rect.contains_point(r.key(2))}
    assert len(in_range) > 150
    counts: dict[int, int] = {}
    lock = threading.Lock()
    scheduler = FairScheduler(max_concurrent=8,
                              watchdog_seconds=0.1).start()
    draws, streams = 30, 40
    victim = wedged_task(seconds=3.0)
    try:
        scheduler.submit(victim)
        tasks = [_recording_task(dataset, rect, 5000 + i, draws, 10,
                                 counts, lock)
                 for i in range(streams)]
        for task in tasks:
            scheduler.submit(task)
        assert victim.wait_terminal(timeout=10)
        assert victim.frames[-1]["code"] == "watchdog_timeout"
        assert scheduler.wait_idle(timeout=120)
    finally:
        scheduler.stop()
    total = sum(counts.values())
    assert total == draws * streams
    expected = total / len(in_range)
    chi2 = sum((counts.get(rid, 0) - expected) ** 2 / expected
               for rid in in_range)
    pvalue = stats.chi2.sf(chi2, df=len(in_range) - 1)
    assert pvalue > 0.001


# -- dead-client reaping ------------------------------------------------


class TestAbandonReaping:
    def test_blocked_stream_reaped_after_abandon_seconds(self):
        scheduler = FairScheduler(max_concurrent=2,
                                  abandon_seconds=0.2).start()
        task = StreamTask("t", endless_gen(), buffer_frames=2)
        try:
            scheduler.submit(task)  # nobody ever pops
            assert task.wait_terminal(timeout=10)
            final = task.frames[-1]
            assert final["frame"] == "end"
            assert "abandoned" in final["reason"]
            assert scheduler.wait_idle(timeout=5)
        finally:
            scheduler.stop()

    def test_active_reader_is_never_reaped(self):
        """blocked_since resets whenever the consumer drains, so a
        slow-but-alive reader survives arbitrarily long."""
        scheduler = FairScheduler(max_concurrent=2,
                                  abandon_seconds=0.3).start()
        task = StreamTask("t", endless_gen(), buffer_frames=2)
        try:
            scheduler.submit(task)
            for _ in range(6):
                time.sleep(0.1)
                assert task.pop(timeout=5.0) is not None
            assert not task.terminal
            task.cancel()
            assert task.wait_terminal(timeout=5)
        finally:
            scheduler.stop()

    def test_detached_streams_are_exempt(self):
        scheduler = FairScheduler(max_concurrent=2,
                                  abandon_seconds=0.1).start()
        task = StreamTask("t", endless_gen(), detached=True,
                          buffer_frames=2)
        try:
            scheduler.submit(task)
            time.sleep(0.5)
            assert not task.terminal
        finally:
            scheduler.stop()


def test_client_disconnect_counted_and_slot_reclaimed():
    """A client that drops the NDJSON socket mid-stream is counted in
    storm.server.client_disconnects and its stream is cancelled —
    with no handler traceback."""
    engine = make_engine(2000)
    svc = QueryService(engine, ServerConfig(max_streams=2,
                                            quantum=16))
    server = StormServer(svc).start()
    try:
        payload = json.dumps({"query": LONG_Q}).encode()
        sock = socket.create_connection(
            (server.host, server.port), timeout=30)
        head = (f"POST /v1/stream HTTP/1.1\r\nHost: x\r\n"
                f"Content-Type: application/json\r\n"
                f"X-Storm-Tenant: flaky\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n")
        sock.sendall(head.encode() + payload)
        assert sock.recv(1024)  # headers + the first frames flowed
        # RST on close so the server notices on its next write.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if svc.scheduler.live_count == 0 and counter_total(
                    svc, "storm.server.client_disconnects") >= 1:
                break
            time.sleep(0.05)
        assert counter_total(
            svc, "storm.server.client_disconnects") >= 1
        assert svc.scheduler.live_count == 0
    finally:
        server.stop(drain=False)


# -- load shedding and Retry-After --------------------------------------


class TestLoadShedding:
    def make_service(self):
        engine = make_engine(1500)
        return QueryService(engine, ServerConfig(
            max_streams=1, queue_depth=1, quantum=16,
            quotas={"heavy": TenantQuota(weight=4.0)}))

    def test_heavier_tenant_sheds_lightest_queued(self):
        svc = self.make_service()
        try:
            svc.submit_stream("light-1", {"query": AVG_Q, "seed": 1})
            queued = svc.submit_stream("light-2",
                                       {"query": AVG_Q, "seed": 2})
            heavy = svc.submit_stream("heavy",
                                      {"query": AVG_Q, "seed": 3})
            final = queued.drain_frames(timeout=10)[-1]
            assert final["frame"] == "error"
            assert final["code"] == "shed"
            assert heavy.drain_frames(
                timeout=60)[-1]["frame"] == "end"
            assert counter_total(
                svc, "storm.server.shed_streams") == 1
        finally:
            svc.shutdown(drain=False)

    def test_equal_weight_still_rejected_with_retry_floor(self):
        svc = self.make_service()
        try:
            svc.submit_stream("light-1", {"query": AVG_Q, "seed": 1})
            svc.submit_stream("light-2", {"query": AVG_Q, "seed": 2})
            with pytest.raises(ApiError) as err:
                svc.submit_stream("light-3",
                                  {"query": AVG_Q, "seed": 3})
            assert err.value.status == 429
            assert err.value.retry_after >= 1
        finally:
            svc.shutdown(drain=False)

    def test_active_streams_are_never_shed(self):
        """Only queued tasks (no engine work done yet) are shed."""
        scheduler = FairScheduler(max_concurrent=2).start()
        active = StreamTask("light", endless_gen(), weight=1.0,
                            detached=True)
        try:
            scheduler.submit(active)
            assert scheduler.shed_lowest(99.0) is None
            assert not active.terminal
        finally:
            scheduler.stop()


def test_retry_after_floor():
    assert ApiError(429, "x", "y", retry_after=0).retry_after == 1
    assert ApiError(429, "x", "y", retry_after=0.2).retry_after == 1
    assert ApiError(429, "x", "y", retry_after=7).retry_after == 7
    assert ApiError(400, "x", "y").retry_after is None


# -- one-shot 504 regression --------------------------------------------


def test_oneshot_timeout_releases_quota_and_generator():
    """The 504 path must verifiably release the tenant's quota slot
    and close the underlying generator, not just request a cancel."""
    engine = make_engine(2000)
    # Stall the second quantum past the client timeout so the query
    # is deterministically still running when the 504 fires.
    plan = FaultPlan().delay("server.quantum", 0.6, nth=2)
    svc = QueryService(engine, ServerConfig(
        max_streams=1, quantum=16,
        quotas={"t": TenantQuota(max_concurrent_streams=1)}),
        faults=plan)
    try:
        with pytest.raises(ApiError) as err:
            svc.run_query("t", {"query": LONG_Q}, timeout=0.2)
        assert err.value.status == 504
        # Slot released: the same tenant admits a new stream at its
        # max_concurrent_streams=1 quota immediately.
        assert svc._tenant_live("t") == 0
        task = svc.submit_stream("t", {"query": AVG_Q})
        assert task.drain_frames(timeout=60)[-1]["frame"] == "end"
        # Engine slot released too (generator closed by the reap).
        assert svc.scheduler.wait_idle(timeout=10)
        assert counter_total(
            svc, "storm.server.query_timeouts") == 1
    finally:
        svc.shutdown(drain=False)


# -- graceful drain with detached streams -------------------------------


def test_drain_suspends_detached_streams_keeps_frames():
    """Graceful drain must retain a detached stream's frames for
    later polling (suspended), not cancel it as a straggler."""
    engine = make_engine(2000)
    # After a few interleaved quanta the engine stalls for longer
    # than the drain budget, so both streams are deterministically
    # still in flight when shutdown gives up waiting.
    plan = FaultPlan().delay("server.quantum", 5.0, nth=8)
    svc = QueryService(engine, ServerConfig(
        max_streams=2, quantum=16, drain_seconds=0.3), faults=plan)
    session = svc.create_session("t", "mine")["session"]
    detached = svc.submit_stream("t", {"query": LONG_Q, "seed": 4},
                                 detached=True, session_id=session)
    attached = svc.submit_stream("t", {"query": LONG_Q, "seed": 5})
    deadline = time.monotonic() + 10
    while len(detached.frames) < 2 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert len(detached.frames) >= 2
    svc.shutdown(drain=True)
    assert detached.state == "suspended"
    # No terminal frame was appended; every progress frame is still
    # poll-able from any index.
    frames, next_index, state = detached.frames_since(0)
    assert state == "suspended"
    assert frames and all(f["frame"] == "progress" for f in frames)
    assert next_index == len(frames)
    # The non-detached straggler was cancelled with a terminal frame.
    assert attached.state == "cancelled"
    assert attached.frames[-1]["frame"] == "end"
    assert attached.frames[-1]["reason"] == "server shutdown"


# -- the stream journal -------------------------------------------------


class TestStreamJournal:
    def test_round_trip_and_close(self, tmp_path):
        journal = StreamJournal(str(tmp_path / "j"))
        task = StreamTask("t", endless_gen(), detached=True,
                          durable=True)
        assert journal.record_open(
            task, query=AVG_Q, seed=7, session_id="s-1",
            session_name="mine", dataset_version=3)
        pending = journal.pending()
        assert set(pending) == {task.task_id}
        entry = pending[task.task_id]
        assert entry["query"] == AVG_Q
        assert entry["seed"] == 7
        assert entry["session_id"] == "s-1"
        assert entry["dataset_version"] == 3
        task.state = "done"
        journal.record_close(task)
        assert journal.pending() == {}
        # A fresh journal over the same directory sees the same state.
        reopened = StreamJournal(str(tmp_path / "j"))
        assert reopened.pending() == {}

    def test_progress_records_are_throttled(self, tmp_path):
        journal = StreamJournal(str(tmp_path / "j"),
                                progress_every=8)
        task = StreamTask("t", endless_gen(), detached=True,
                          durable=True)
        journal.record_open(task, query=AVG_Q, seed=1,
                            session_id="s-1", session_name="x")
        base = journal.wal.last_lsn
        for _ in range(20):
            task.frames.append({"frame": "progress"})
            journal.record_progress(task)
        # 20 frames at progress_every=8 -> exactly 2 records.
        assert journal.wal.last_lsn == base + 2
        assert journal.pending()[task.task_id]["frames"] == 16

    def test_torn_journal_recovers_open_streams(self, tmp_path):
        """A crash mid-append (injected) tears the tail; a restart
        truncates it and still resumes every stream whose open record
        committed before the tear."""
        root = str(tmp_path / "j")
        plan = FaultPlan().crash_write("journal/", nth=3)
        journal = StreamJournal(root, faults=plan)
        t1 = StreamTask("t", endless_gen(), detached=True,
                        durable=True)
        t2 = StreamTask("t", endless_gen(), detached=True,
                        durable=True)
        assert journal.record_open(t1, query=AVG_Q, seed=1,
                                   session_id="s-1",
                                   session_name="x")
        assert journal.record_open(t2, query=AVG_Q, seed=2,
                                   session_id="s-1",
                                   session_name="x")
        # Third append crashes mid-write: the journal goes dead
        # instead of taking the engine down.
        t1.state = "done"
        assert not journal.record_close(t1)
        assert journal.dead
        recovered = StreamJournal(root)
        assert set(recovered.pending()) == {t1.task_id, t2.task_id}
        assert not recovered.dead


class TestDurableResume:
    RESUME_Q = ("ESTIMATE AVG(v) FROM pts "
                "WHERE REGION(5, 5, 95, 95) SAMPLES 2000")

    def make_service(self, journal_dir):
        engine = make_engine(2000)
        return QueryService(engine, ServerConfig(
            max_streams=2, quantum=16,
            journal_dir=str(journal_dir)))

    def run_to_completion(self, svc, session_id, task):
        deadline = time.monotonic() + 60
        while not task.terminal and time.monotonic() < deadline:
            time.sleep(0.02)
        assert task.state == "done"
        frames, _, _ = task.frames_since(0)
        return frames

    def test_resume_is_byte_identical(self, tmp_path):
        """A detached stream killed mid-flight and resumed after
        restart emits frames byte-identical to an uninterrupted run
        (exact test, the PR's acceptance criterion)."""
        # Reference: the same stream, never interrupted.
        ref_svc = self.make_service(tmp_path / "ref")
        session = ref_svc.create_session("t", "mine")["session"]
        ref_task = ref_svc.submit_stream(
            "t", {"query": self.RESUME_Q, "seed": 31337},
            detached=True, session_id=session)
        reference = self.run_to_completion(ref_svc, session,
                                           ref_task)
        ref_svc.shutdown(drain=False)
        assert len(reference) > 10

        # Victim: killed (no drain) after a handful of frames.
        live_dir = tmp_path / "live"
        svc_a = self.make_service(live_dir)
        session_a = svc_a.create_session("t", "mine")["session"]
        task_a = svc_a.submit_stream(
            "t", {"query": self.RESUME_Q, "seed": 31337},
            detached=True, session_id=session_a)
        deadline = time.monotonic() + 30
        while len(task_a.frames) < 5 and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        before_kill, _, _ = task_a.frames_since(0)
        assert 0 < len(before_kill) < len(reference)
        svc_a.shutdown(drain=False)  # the "kill"
        assert task_a.state == "suspended"

        # Restart over the same journal: the stream is re-admitted
        # under its original session and task ids and replays.
        svc_b = self.make_service(live_dir)
        assert svc_b.recover_streams() == 1
        resumed = svc_b.get_task("t", session_a, task_a.task_id)
        frames = self.run_to_completion(svc_b, session_a, resumed)
        svc_b.shutdown(drain=False)

        def as_bytes(frame_list):
            return b"".join(encode_frame(f) for f in frame_list)

        # Everything the client saw before the kill regenerates
        # identically (its ?from=N cursor stays valid) ...
        assert as_bytes(frames[:len(before_kill)]) == \
            as_bytes(before_kill)
        # ... and the whole stream matches the uninterrupted run.
        assert as_bytes(frames) == as_bytes(reference)

    def test_completed_streams_do_not_resume(self, tmp_path):
        svc = self.make_service(tmp_path / "j")
        session = svc.create_session("t", "mine")["session"]
        task = svc.submit_stream(
            "t", {"query": AVG_Q, "seed": 1},
            detached=True, session_id=session)
        self.run_to_completion(svc, session, task)
        svc.shutdown(drain=False)
        svc2 = self.make_service(tmp_path / "j")
        assert svc2.recover_streams() == 0
        svc2.shutdown(drain=False)

    def test_new_ids_do_not_collide_after_recovery(self, tmp_path):
        svc = self.make_service(tmp_path / "j")
        session = svc.create_session("t", "mine")["session"]
        task = svc.submit_stream(
            "t", {"query": self.RESUME_Q, "seed": 2},
            detached=True, session_id=session)
        svc.shutdown(drain=False)
        svc2 = self.make_service(tmp_path / "j")
        assert svc2.recover_streams() == 1
        fresh = svc2.submit_stream("t", {"query": AVG_Q, "seed": 3})
        assert fresh.task_id != task.task_id
        svc2.shutdown(drain=False)


# -- the deadline header over HTTP --------------------------------------


class TestDeadlineHeader:
    @pytest.fixture()
    def server(self):
        engine = make_engine(1500)
        # The second quantum stalls 0.5s so the stream is
        # deterministically still live when its 0.2s deadline lapses.
        plan = FaultPlan().delay("server.quantum", 0.5, nth=2)
        svc = QueryService(engine, ServerConfig(max_streams=2,
                                                quantum=16),
                           faults=plan)
        server = StormServer(svc).start()
        yield server
        server.stop(drain=False)

    def call(self, server, path, body, headers=None):
        import urllib.request
        all_headers = {"Content-Type": "application/json",
                       "X-Storm-Tenant": "t"}
        if headers:
            all_headers.update(headers)
        req = urllib.request.Request(
            server.url + path, method="POST",
            data=json.dumps(body).encode(), headers=all_headers)
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, resp.read()

    def test_deadline_header_fails_stream_past_it(self, server):
        status, payload = self.call(
            server, "/v1/stream", {"query": LONG_Q},
            headers={"X-Storm-Deadline": "0.2"})
        assert status == 200
        frames = [json.loads(line)
                  for line in payload.splitlines()]
        assert frames[-1]["frame"] == "error"
        assert frames[-1]["code"] == "deadline_exceeded"

    def test_garbage_deadline_header_is_400(self, server):
        import urllib.error
        with pytest.raises(urllib.error.HTTPError) as err:
            self.call(server, "/v1/stream", {"query": AVG_Q},
                      headers={"X-Storm-Deadline": "soon"})
        assert err.value.code == 400

    def test_nonpositive_deadline_header_is_400(self, server):
        import urllib.error
        with pytest.raises(urllib.error.HTTPError) as err:
            self.call(server, "/v1/query", {"query": AVG_Q},
                      headers={"X-Storm-Deadline": "0"})
        assert err.value.code == 400


# -- fault-plan delay specs ---------------------------------------------


class TestDelayFaults:
    def test_delay_round_trips_through_dict(self):
        plan = (FaultPlan(seed=3)
                .delay("server.quantum", 1.5, nth=4)
                .delay("client.read", 30.0))
        spec = plan.to_dict()
        assert spec["delays"] == [
            {"op": "server.quantum", "nth": 4, "seconds": 1.5},
            {"op": "client.read", "nth": 1, "seconds": 30.0}]
        clone = FaultPlan.from_dict(spec)
        assert clone.to_dict() == spec

    def test_take_delay_counts_and_consumes(self):
        plan = FaultPlan().delay("server.quantum", 2.0, nth=3)
        assert plan.take_delay("server.quantum") == 0.0
        assert plan.take_delay("other.op") == 0.0  # exact match only
        assert plan.take_delay("server.quantum") == 0.0
        assert plan.take_delay("server.quantum") == 2.0
        # One-shot: consumed once fired.
        assert plan.take_delay("server.quantum") == 0.0

    def test_stacked_delays_fire_in_configuration_order(self):
        plan = (FaultPlan()
                .delay("op", 1.0, nth=1)
                .delay("op", 2.0, nth=1))
        assert plan.take_delay("op") == 1.0
        assert plan.take_delay("op") == 2.0
        assert plan.take_delay("op") == 0.0
