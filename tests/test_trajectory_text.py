"""Unit tests for the trajectory and short-text estimators."""

import math
import random

import pytest

from repro.core.estimators.text import (STOPWORDS, ShortTextEstimator,
                                        tokenize)
from repro.core.estimators.trajectory import Trajectory, \
    TrajectoryEstimator
from repro.core.records import Record
from repro.errors import EstimatorError


def tweet(i, text, user="alice", lon=0.0, lat=0.0, t=0.0):
    return Record(record_id=i, lon=lon, lat=lat, t=t,
                  attrs={"user": user, "text": text})


class TestTokenize:
    def test_lowercases_and_dedups(self):
        assert tokenize("Snow SNOW snow!") == {"snow"}

    def test_strips_stopwords(self):
        assert tokenize("the snow is here") == {"snow", "here"}

    def test_handles_apostrophes(self):
        assert "don't" in tokenize("don't panic")

    def test_ignores_numbers_and_urls(self):
        toks = tokenize("call 911 at https t.co/xyz")
        assert "911" not in toks
        assert "https" not in toks  # stopword'd


class TestTrajectory:
    def test_position_interpolates(self):
        traj = Trajectory([(0.0, 0.0, 0.0), (10.0, 10.0, 20.0)])
        assert traj.position_at(5.0) == (5.0, 10.0)

    def test_position_clamps_at_ends(self):
        traj = Trajectory([(0.0, 1.0, 1.0), (10.0, 2.0, 2.0)])
        assert traj.position_at(-5.0) == (1.0, 1.0)
        assert traj.position_at(15.0) == (2.0, 2.0)

    def test_length(self):
        traj = Trajectory([(0.0, 0.0, 0.0), (1.0, 3.0, 4.0)])
        assert traj.length() == pytest.approx(5.0)

    def test_mean_gap(self):
        traj = Trajectory([(0.0, 0, 0), (2.0, 0, 0), (4.0, 0, 0)])
        assert traj.mean_gap() == pytest.approx(2.0)

    def test_empty_position_raises(self):
        with pytest.raises(EstimatorError):
            Trajectory([]).position_at(0.0)

    def test_discrepancy_of_identical_is_zero(self):
        verts = [(float(t), float(t), 0.0) for t in range(10)]
        assert Trajectory(verts).discrepancy(Trajectory(verts)) \
            == pytest.approx(0.0)

    def test_discrepancy_disjoint_times_raises(self):
        a = Trajectory([(0.0, 0, 0), (1.0, 0, 0)])
        b = Trajectory([(5.0, 0, 0), (6.0, 0, 0)])
        with pytest.raises(EstimatorError):
            a.discrepancy(b)


class TestTrajectoryEstimator:
    def _walk(self, n=200, seed=13):
        """A smooth ground-truth walk for user alice."""
        rng = random.Random(seed)
        x = y = 0.0
        out = []
        for t in range(n):
            x += rng.gauss(0.3, 0.1)
            y += rng.gauss(0.1, 0.1)
            out.append((float(t), x, y))
        return out

    def test_filters_by_key(self):
        est = TrajectoryEstimator("user", "alice")
        est.absorb(tweet(0, "hi", user="alice", t=1.0))
        est.absorb(tweet(1, "hi", user="bob", t=2.0))
        assert est.matched == 1

    def test_reconstruction_error_shrinks_with_samples(self):
        walk = self._walk()
        truth = Trajectory(walk)
        records = [tweet(i, "x", lon=x, lat=y, t=t)
                   for i, (t, x, y) in enumerate(walk)]
        order = random.Random(14).sample(records, len(records))
        est = TrajectoryEstimator("user", "alice")
        for r in order[:10]:
            est.absorb(r)
        early = est.trajectory().discrepancy(truth)
        for r in order[10:120]:
            est.absorb(r)
        late = est.trajectory().discrepancy(truth)
        assert late < early

    def test_estimate_reports_resolution(self):
        est = TrajectoryEstimator()
        est.absorb(tweet(0, "a", t=0.0))
        est.absorb(tweet(1, "b", t=10.0))
        e = est.estimate()
        assert e.std_error == pytest.approx(10.0)

    def test_no_match_raises(self):
        est = TrajectoryEstimator("user", "nobody")
        est.absorb(tweet(0, "hi", user="alice"))
        with pytest.raises(EstimatorError):
            est.estimate()


class TestShortTextEstimator:
    def test_counts_document_frequency(self):
        est = ShortTextEstimator()
        est.absorb(tweet(0, "snow snow snow"))
        est.absorb(tweet(1, "snow day"))
        est.absorb(tweet(2, "sunny"))
        stat = est.term_stat("snow")
        assert stat.hits == 2  # document frequency, not term count
        assert stat.frequency == pytest.approx(2 / 3)

    def test_top_terms_ranked(self):
        est = ShortTextEstimator(min_hits=1)
        for i in range(10):
            est.absorb(tweet(i, "snow ice"))
        for i in range(10, 13):
            est.absorb(tweet(i, "ice"))
        top = est.top_terms(2)
        assert top[0].term == "ice"
        assert top[1].term == "snow"

    def test_interval_contains_frequency(self):
        est = ShortTextEstimator(min_hits=1)
        for i in range(20):
            est.absorb(tweet(i, "snow" if i % 2 == 0 else "sun"))
        stat = est.term_stat("snow")
        assert stat.interval.lo <= 0.5 <= stat.interval.hi

    def test_lift_against_background(self):
        est = ShortTextEstimator(min_hits=1,
                                 background={"snow": 0.01, "lunch": 0.5})
        for i in range(10):
            est.absorb(tweet(i, "snow lunch"))
        top = est.top_terms(2, by_lift=True)
        assert top[0].term == "snow"
        assert top[0].lift > top[1].lift

    def test_lift_requires_background(self):
        est = ShortTextEstimator(min_hits=1)
        est.absorb(tweet(0, "snow"))
        with pytest.raises(EstimatorError):
            est.top_terms(by_lift=True)

    def test_non_string_text_ignored(self):
        est = ShortTextEstimator()
        est.absorb(Record(0, 0.0, 0.0, attrs={"text": 42}))
        assert est.texts_seen == 0

    def test_no_texts_raises(self):
        with pytest.raises(EstimatorError):
            ShortTextEstimator().term_stat("snow")

    def test_stopwords_configurable(self):
        est = ShortTextEstimator(stopwords=frozenset({"snow"}),
                                 min_hits=1)
        est.absorb(tweet(0, "snow ice"))
        assert "snow" not in est.term_hits
        assert "ice" in est.term_hits
