"""Online aggregation over the distributed cluster, end to end."""

import random

import pytest

from repro.core.estimators.aggregates import AvgEstimator
from repro.core.records import Record, STRange, attribute_getter
from repro.core.session import OnlineQuerySession, StopCondition
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler


def make_records(n=5000, seed=131):
    rng = random.Random(seed)
    return [Record(i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(42.0, 7.0)})
            for i in range(n)]


RECORDS = make_records()
QUERY = STRange(15, 15, 85, 85, 50, 950)


def truth():
    vals = [r.attrs["v"] for r in RECORDS if QUERY.contains(r)]
    return sum(vals) / len(vals)


class TestDistributedOnlineAggregation:
    def test_session_over_cluster(self):
        index = DistributedSTIndex(RECORDS, n_workers=4, seed=5,
                                   rs_buffer_size=32)
        sampler = DistributedSampler(index, batch_size=16)
        estimator = AvgEstimator(attribute_getter("v"))
        session = OnlineQuerySession(
            sampler, estimator, index.to_rect(QUERY), index.lookup,
            rng=random.Random(6), report_every=32)
        final = session.run_to_stop(
            StopCondition(target_relative_error=0.02))
        assert final.done
        assert final.estimate.value == pytest.approx(truth(), rel=0.05)
        assert final.estimate.k < final.estimate.q

    def test_exhaustive_session_is_exact(self):
        small = make_records(400, seed=132)
        index = DistributedSTIndex(small, n_workers=3, seed=7,
                                   rs_buffer_size=16)
        sampler = DistributedSampler(index, batch_size=8)
        estimator = AvgEstimator(attribute_getter("v"))
        session = OnlineQuerySession(
            sampler, estimator, index.to_rect(QUERY), index.lookup,
            rng=random.Random(8), report_every=16)
        final = session.run_to_stop(StopCondition())
        assert final.estimate.exact
        vals = [r.attrs["v"] for r in small if QUERY.contains(r)]
        assert final.estimate.value == pytest.approx(
            sum(vals) / len(vals))


class TestDistributedDataset:
    def test_registers_in_engine_and_serves_analytics(self):
        from repro.core.engine import StormEngine
        from repro.core.session import StopCondition
        from repro.distributed.dataset import DistributedDataset
        engine = StormEngine(seed=10)
        dd = DistributedDataset("cluster_pts", RECORDS, n_workers=4,
                                seed=11, rs_buffer_size=32)
        engine.register(dd)
        point = engine.avg("cluster_pts", "v", QUERY,
                           stop=StopCondition(max_samples=500),
                           rng=random.Random(12))
        assert point.estimate.value == pytest.approx(truth(), rel=0.05)
        count = engine.count("cluster_pts", QUERY,
                             rng=random.Random(13))
        assert count.estimate.exact

    def test_len_and_updates(self):
        from repro.distributed.dataset import DistributedDataset
        dd = DistributedDataset("dd", make_records(400, seed=133),
                                n_workers=2)
        assert len(dd) == 400
        dd.insert(Record(9_000, lon=50, lat=50, t=500,
                         attrs={"v": 1.0}))
        assert len(dd) == 401
        assert dd.delete(9_000)

    def test_method_forcing_rejected(self):
        from repro.core.estimators.aggregates import AvgEstimator
        from repro.distributed.dataset import DistributedDataset
        from repro.errors import StormError
        dd = DistributedDataset("dd2", make_records(200, seed=134),
                                n_workers=2)
        est = AvgEstimator(attribute_getter("v"))
        with pytest.raises(StormError):
            dd.session(QUERY, est, method="rs-tree")
        with pytest.raises(StormError):
            dd.session(QUERY, est, with_replacement=True)

    def test_ls_worker_kind(self):
        from repro.core.session import StopCondition
        from repro.distributed.dataset import DistributedDataset
        dd = DistributedDataset("dd3", RECORDS, n_workers=3,
                                sampler_kind="ls", seed=14)
        est = AvgEstimator(attribute_getter("v"))
        final = dd.session(QUERY, est,
                           rng=random.Random(15)).run_to_stop(
            StopCondition(max_samples=300))
        assert final.estimate.value == pytest.approx(truth(), rel=0.1)


class TestEngineExecuteConvenience:
    def test_execute_on_engine(self):
        from repro.core.engine import StormEngine
        engine = StormEngine(seed=9)
        engine.create_dataset("pts", RECORDS)
        result = engine.execute(
            "ESTIMATE AVG(v) FROM pts WHERE REGION(15, 15, 85, 85) "
            "AND TIME(50, 950) SAMPLES 500")
        assert result.value == pytest.approx(truth(), rel=0.05)
