"""Edge cases across the stack: empty datasets, degenerate queries,
cost model arithmetic."""

import random

import pytest

from repro.core.engine import Dataset, StormEngine
from repro.core.records import Record, STRange
from repro.core.session import StopCondition
from repro.index.cost import CostCounter, CostModel


class TestEmptyDataset:
    def test_builds_and_answers_empty(self):
        engine = StormEngine(seed=1)
        engine.create_dataset("empty", [])
        point = engine.avg("empty", "v", STRange(0, 0, 10, 10),
                           rng=random.Random(2))
        assert point.reason == "empty range"
        assert point.estimate.exact
        assert point.estimate.value is None

    def test_all_samplers_yield_nothing(self, rng):
        ds = Dataset("void", [], build_ls=True)
        box = STRange(0, 0, 10, 10).to_rect(3)
        for name, sampler in ds.samplers.items():
            assert sampler.range_count(box) == 0
            if name == "sample-first":
                continue  # raises on empty range by design
            assert list(sampler.sample_stream(box, rng)) == []

    def test_grows_from_empty(self):
        ds = Dataset("seed", [], build_ls=True, rs_buffer_size=8)
        for i in range(50):
            ds.insert(Record(i, lon=float(i % 10), lat=float(i // 10),
                             t=0.0, attrs={"v": float(i)}))
        ds.tree.validate()
        box = STRange(0, 0, 10, 10).to_rect(3)
        assert ds.tree.range_count(box) == 50
        got = {e.item_id for e in
               ds.samplers["rs-tree"].sample_stream(
                   box, random.Random(3))}
        assert got == set(range(50))


class TestDegenerateQueries:
    @pytest.fixture()
    def ds(self):
        rng = random.Random(4)
        return Dataset("pts", [
            Record(i, lon=rng.uniform(0, 10), lat=rng.uniform(0, 10),
                   t=rng.uniform(0, 10), attrs={"v": 1.0})
            for i in range(300)], rs_buffer_size=8)

    def test_point_query(self, ds):
        record = ds.lookup(0)
        window = STRange(record.lon, record.lat, record.lon,
                         record.lat, record.t, record.t)
        assert ds.tree.range_count(window.to_rect(3)) >= 1

    def test_zero_duration_time_window(self, ds):
        window = STRange(0, 0, 10, 10, 5.0, 5.0)
        q = ds.tree.range_count(window.to_rect(3))
        assert q >= 0  # no crash; almost surely 0 points

    def test_single_record_dataset_session(self):
        ds = Dataset("one", [Record(0, lon=1.0, lat=1.0, t=1.0,
                                    attrs={"v": 42.0})])
        from repro.core.estimators.aggregates import AvgEstimator
        from repro.core.records import attribute_getter
        session = ds.session(STRange(0, 0, 2, 2),
                             AvgEstimator(attribute_getter("v")),
                             method="rs-tree", rng=random.Random(5),
                             report_every=1)
        final = session.run_to_stop(StopCondition())
        assert final.estimate.exact
        assert final.estimate.value == 42.0


class TestCostModelArithmetic:
    def test_simulated_seconds_formula(self):
        model = CostModel(random_read_seconds=1.0,
                          sequential_read_seconds=0.1,
                          entry_scan_seconds=0.01,
                          per_sample_cpu_seconds=0.001)
        cost = CostCounter()
        cost.charge_node(100)     # random
        cost.charge_node(101)     # sequential
        cost.charge_entries(10)
        cost.charge_sample(5)
        assert model.simulated_seconds(cost) == pytest.approx(
            1.0 + 0.1 + 0.1 + 0.005)

    def test_reset_clears_everything(self):
        cost = CostCounter()
        cost.charge_node(1)
        cost.charge_rejection()
        cost.charge_report(3)
        cost.reset()
        assert cost.node_reads == 0
        assert cost.rejections == 0
        assert cost.points_reported == 0
        # After reset the next read is random again (no stale block).
        cost.charge_node(2)
        assert cost.random_reads == 1

    def test_first_read_is_random(self):
        cost = CostCounter()
        cost.charge_node(0)
        assert cost.random_reads == 1
        assert cost.sequential_reads == 0
