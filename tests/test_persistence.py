"""Tests for saving/loading engines through the storage engine."""

import random

import pytest

from repro.core.engine import StormEngine
from repro.core.records import Record, STRange
from repro.core.session import StopCondition
from repro.errors import StorageError
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.persistence import (DATASET_PREFIX, load_engine,
                                       save_engine)


def sample_records(n=600, seed=95):
    rng = random.Random(seed)
    return [Record(i, lon=rng.uniform(0, 100), lat=rng.uniform(0, 100),
                   t=rng.uniform(0, 100),
                   attrs={"v": round(rng.gauss(5, 2), 6),
                          "tag": rng.choice(["x", "y"])})
            for i in range(n)]


def build_engine():
    engine = StormEngine(seed=11)
    engine.create_dataset("alpha", sample_records(600, 95))
    engine.create_dataset("beta", sample_records(300, 96), dims=2,
                          build_ls=False)
    return engine


class TestSaveLoadRoundTrip:
    def test_records_survive(self):
        engine = build_engine()
        store = DocumentStore()
        save_engine(engine, store)
        again = load_engine(store)
        assert set(again.datasets) == {"alpha", "beta"}
        for name in ("alpha", "beta"):
            a = engine.dataset(name).records
            b = again.dataset(name).records
            assert a == b

    def test_index_parameters_survive(self):
        engine = build_engine()
        store = DocumentStore()
        save_engine(engine, store)
        again = load_engine(store)
        assert again.dataset("beta").dims == 2
        assert again.dataset("beta").forest is None
        assert again.dataset("alpha").forest is not None

    def test_queries_agree_after_reload(self):
        engine = build_engine()
        store = DocumentStore()
        save_engine(engine, store)
        again = load_engine(store)
        window = STRange(10, 10, 90, 90, 0, 100)
        exact_a = engine.avg("alpha", "v", window,
                             stop=StopCondition(max_samples=10**9),
                             rng=random.Random(1))
        exact_b = again.avg("alpha", "v", window,
                            stop=StopCondition(max_samples=10**9),
                            rng=random.Random(2))
        assert exact_a.estimate.value \
            == pytest.approx(exact_b.estimate.value)
        assert exact_a.estimate.q == exact_b.estimate.q

    def test_persists_through_dfs(self, tmp_path):
        """Full durability: engine -> store -> real files -> reload."""
        root = str(tmp_path / "dfs")
        engine = build_engine()
        save_engine(engine, DocumentStore(SimulatedDFS(root=root)))
        again = load_engine(DocumentStore(SimulatedDFS(root=root)))
        assert len(again.dataset("alpha")) == 600

    def test_resave_overwrites(self):
        engine = build_engine()
        store = DocumentStore()
        save_engine(engine, store)
        engine.dataset("alpha").insert(
            Record(10_000, lon=1.0, lat=1.0, attrs={"v": 0.0,
                                                    "tag": "x"}))
        save_engine(engine, store)
        again = load_engine(store)
        assert len(again.dataset("alpha")) == 601

    def test_missing_collection_detected(self):
        engine = build_engine()
        store = DocumentStore()
        save_engine(engine, store)
        store.drop(DATASET_PREFIX + "alpha")
        with pytest.raises(StorageError):
            load_engine(store)

    def test_count_mismatch_detected(self):
        engine = build_engine()
        store = DocumentStore()
        save_engine(engine, store)
        store.collection(DATASET_PREFIX + "alpha").delete_one(0)
        with pytest.raises(StorageError):
            load_engine(store)
