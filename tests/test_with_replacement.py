"""Tests for the with-replacement sampling mode of Definition 1."""

import random
from collections import Counter

import pytest
from scipy import stats

from repro.core.geometry import Rect
from repro.core.sampling import (LSTree, LSTreeSampler, QueryFirstSampler,
                                 RandomPathSampler, RSTreeSampler,
                                 SampleFirstSampler)
from repro.core.sampling.base import take
from repro.index.hilbert_rtree import HilbertRTree

from tests.conftest import brute_force_range, make_points

BOUNDS = Rect((0, 0), (100, 100))
POINTS = make_points(300, seed=88)
BOX = Rect((20, 20), (80, 80))
IN_RANGE = sorted(brute_force_range(POINTS, BOX))


def make_sampler(name):
    tree = HilbertRTree(2, BOUNDS, leaf_capacity=16, branch_capacity=8)
    tree.bulk_load(POINTS)
    if name == "query-first":
        return QueryFirstSampler(tree)
    if name == "sample-first":
        return SampleFirstSampler(tree)
    if name == "random-path":
        return RandomPathSampler(tree)
    if name == "rs-tree":
        sampler = RSTreeSampler(tree, buffer_size=16,
                                rng=random.Random(1))
        sampler.prepare()
        return sampler
    if name == "ls-tree":
        forest = LSTree(2, rng=random.Random(2), leaf_capacity=16,
                        branch_capacity=8)
        forest.bulk_load(POINTS)
        return LSTreeSampler(forest)
    raise AssertionError(name)


ALL = ["query-first", "sample-first", "random-path", "rs-tree",
       "ls-tree"]


@pytest.mark.parametrize("name", ALL)
class TestWithReplacement:
    def test_stream_is_unbounded_and_in_range(self, name, rng):
        sampler = make_sampler(name)
        k = 3 * len(IN_RANGE)  # more than q — impossible without repl.
        got = take(sampler.sample_stream_with_replacement(BOX, rng), k)
        assert len(got) == k
        assert all(BOX.contains_point(e.point) for e in got)

    def test_duplicates_occur(self, name, rng):
        sampler = make_sampler(name)
        k = 3 * len(IN_RANGE)
        got = take(sampler.sample_stream_with_replacement(BOX, rng), k)
        ids = [e.item_id for e in got]
        assert len(set(ids)) < len(ids), "birthday paradox failed?"

    def test_empty_range_terminates(self, name, rng):
        sampler = make_sampler(name)
        empty = Rect((500, 500), (600, 600))
        if name == "sample-first":
            from repro.errors import EmptyRangeError
            with pytest.raises(EmptyRangeError):
                take(sampler.sample_stream_with_replacement(empty, rng),
                     1)
        else:
            assert take(sampler.sample_stream_with_replacement(
                empty, rng), 1) == []


class TestWithReplacementUniformity:
    @pytest.mark.parametrize("name", ["random-path", "rs-tree",
                                      "sample-first"])
    def test_long_run_frequencies_uniform(self, name):
        """Chi-square on a long with-replacement run."""
        sampler = make_sampler(name)
        rng = random.Random(99)
        draws = 40 * len(IN_RANGE)
        counts = Counter(
            e.item_id for e in take(
                sampler.sample_stream_with_replacement(BOX, rng),
                draws))
        expected = draws / len(IN_RANGE)
        chi2 = sum((counts.get(pid, 0) - expected) ** 2 / expected
                   for pid in IN_RANGE)
        p = stats.chi2.sf(chi2, df=len(IN_RANGE) - 1)
        assert p > 1e-3, f"{name}: p={p}"
