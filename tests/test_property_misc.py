"""Property-based tests: shuffles, intervals, document filters, codec."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimators.base import RunningStats
from repro.core.estimators.intervals import (hoeffding_interval,
                                             mean_interval,
                                             proportion_interval)
from repro.core.records import Record
from repro.core.sampling.permutation import (sample_without_replacement,
                                             streaming_shuffle)
from repro.storage.document_store import Collection, matches_filter
from repro.storage.json_codec import flatten


class TestShuffleProperties:
    @given(st.lists(st.integers(), max_size=200), st.integers(0, 2**32))
    def test_streaming_shuffle_is_permutation(self, items, seed):
        out = list(streaming_shuffle(items, random.Random(seed)))
        assert sorted(out) == sorted(items)

    @given(st.lists(st.integers(), max_size=100),
           st.integers(0, 300), st.integers(0, 2**32))
    def test_sample_without_replacement_size(self, items, k, seed):
        out = sample_without_replacement(items, k, random.Random(seed))
        assert len(out) == min(k, len(items))

    @given(st.lists(st.integers(), min_size=1, max_size=50),
           st.integers(0, 2**32))
    def test_shuffle_does_not_mutate_input(self, items, seed):
        original = list(items)
        list(streaming_shuffle(items, random.Random(seed)))
        assert items == original


class TestIntervalProperties:
    variance = st.floats(min_value=0.0, max_value=1e6,
                         allow_nan=False)
    mean = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)

    @given(mean, variance, st.integers(2, 10_000))
    def test_mean_interval_contains_mean(self, mu, var, k):
        ci = mean_interval(mu, var, k)
        assert ci.lo <= mu <= ci.hi

    @given(mean, variance, st.integers(2, 1000))
    def test_more_samples_never_widen(self, mu, var, k):
        a = mean_interval(mu, var, k)
        b = mean_interval(mu, var, 4 * k)
        assert b.width <= a.width + 1e-9

    @given(mean, variance, st.integers(2, 1000),
           st.integers(2, 100_000))
    def test_fpc_never_widens(self, mu, var, k, q):
        plain = mean_interval(mu, var, k)
        fpc = mean_interval(mu, var, k, q=max(k, q))
        assert fpc.width <= plain.width + 1e-9

    @given(st.integers(1, 500), st.data())
    def test_proportion_interval_valid(self, k, data):
        successes = data.draw(st.integers(0, k))
        ci = proportion_interval(successes, k)
        assert 0.0 <= ci.lo <= ci.hi <= 1.0 + 1e-12
        assert ci.lo - 1e-9 <= successes / k <= ci.hi + 1e-9

    @given(st.floats(0, 1), st.integers(1, 10_000))
    def test_hoeffding_symmetric(self, mu, k):
        ci = hoeffding_interval(mu, k, 0.0, 1.0)
        assert math.isclose(ci.center, mu, abs_tol=1e-9)


class TestRunningStatsProperties:
    values = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                allow_nan=False),
                      min_size=2, max_size=200)

    @given(values)
    def test_matches_two_pass(self, xs):
        stats = RunningStats()
        for x in xs:
            stats.add(x)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert math.isclose(stats.mean, mean, rel_tol=1e-6,
                            abs_tol=1e-6)
        assert math.isclose(stats.variance, var, rel_tol=1e-4,
                            abs_tol=1e-4)

    @given(values, st.integers(1, 100))
    def test_merge_equals_sequential(self, xs, cut):
        cut = min(cut, len(xs) - 1)
        a, b = RunningStats(), RunningStats()
        for x in xs[:cut]:
            a.add(x)
        for x in xs[cut:]:
            b.add(x)
        whole = RunningStats()
        for x in xs:
            whole.add(x)
        merged = a.merge(b)
        assert merged.n == whole.n
        assert math.isclose(merged.mean, whole.mean, rel_tol=1e-6,
                            abs_tol=1e-6)


json_scalars = st.one_of(st.none(), st.booleans(),
                         st.integers(-1000, 1000),
                         st.floats(-100, 100, allow_nan=False),
                         st.text(max_size=8))


class TestDocumentStoreProperties:
    @given(st.lists(st.dictionaries(
        st.sampled_from(["a", "b", "c"]), json_scalars, max_size=3),
        max_size=15), st.integers(-1000, 1000))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_filter_matches_brute_force(self, docs, threshold):
        coll = Collection("t")
        coll.insert_many(docs)
        got = sorted(d["_id"] for d in coll.find(
            {"a": {"$gte": threshold}}))

        def brute(doc):
            value = doc.get("a")
            if value is None:
                return False
            try:
                return value >= threshold
            except TypeError:
                return False

        want = sorted(d["_id"] for d in coll.find() if brute(d))
        assert got == want

    @given(st.lists(st.dictionaries(
        st.text(st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=4),
        json_scalars, max_size=4), max_size=20))
    def test_jsonl_roundtrip_preserves_documents(self, docs):
        coll = Collection("t")
        coll.insert_many(docs)
        again = Collection.from_jsonl("t", coll.to_jsonl())
        assert sorted((d["_id"] for d in coll.find()), key=repr) \
            == sorted((d["_id"] for d in again.find()), key=repr)
        assert len(coll) == len(again)

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           json_scalars, max_size=5))
    def test_flatten_flat_dict_is_identity(self, doc):
        assert flatten(doc) == {str(k): v for k, v in doc.items()}

    @given(st.dictionaries(st.sampled_from(["x", "y"]),
                           json_scalars, max_size=2))
    def test_equality_filter_matches_itself(self, doc):
        assert matches_filter(doc, dict(doc))


class TestRecordProperties:
    @given(st.integers(0, 10**9),
           st.floats(-180, 180, allow_nan=False),
           st.floats(-90, 90, allow_nan=False),
           st.floats(0, 10**9, allow_nan=False))
    def test_document_roundtrip(self, rid, lon, lat, t):
        record = Record(rid, lon=lon, lat=lat, t=t,
                        attrs={"v": 1})
        assert Record.from_document(record.to_document()) == record
