"""Property-based tests for geometry and the Hilbert codec."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.index.hilbert import hilbert_index, hilbert_point

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


@st.composite
def rects(draw, dims=2):
    lo = [draw(finite) for _ in range(dims)]
    hi = [l + draw(st.floats(min_value=0, max_value=1e6)) for l in lo]
    return Rect(lo, hi)


@st.composite
def points_in(draw, rect: Rect):
    return tuple(draw(st.floats(min_value=l, max_value=h))
                 for l, h in zip(rect.lo, rect.hi))


class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_consistent_with_intersects(self, a, b):
        inter = a.intersection(b)
        if a.intersects(b):
            assert inter is not None
            assert a.contains(inter) and b.contains(inter)
        else:
            assert inter is None

    @given(rects(), rects())
    def test_containment_implies_intersection(self, a, b):
        if a.contains(b):
            assert a.intersects(b)
            assert a.union(b) == a

    @given(rects())
    def test_contains_self_and_center(self, r):
        assert r.contains(r)
        assert r.contains_point(r.center)

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-6

    @given(st.data())
    def test_bounding_covers_points(self, data):
        pts = data.draw(st.lists(
            st.tuples(finite, finite), min_size=1, max_size=30))
        box = Rect.bounding(pts)
        assert all(box.contains_point(p) for p in pts)

    @given(st.data())
    def test_min_distance_zero_iff_inside(self, data):
        r = data.draw(rects())
        inside = data.draw(points_in(r))
        assert r.min_distance(inside) == 0.0

    @given(rects())
    def test_area_margin_nonnegative(self, r):
        assert r.area() >= 0.0
        assert r.margin() >= 0.0


class TestHilbertProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=200)
    def test_roundtrip(self, bits, dims, data):
        coords = tuple(
            data.draw(st.integers(0, (1 << bits) - 1))
            for _ in range(dims))
        key = hilbert_index(coords, bits)
        assert hilbert_point(key, bits, dims) == coords
        assert 0 <= key < (1 << (bits * dims))

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=100)
    def test_consecutive_keys_adjacent_2d(self, bits, data):
        top = (1 << (2 * bits)) - 1
        key = data.draw(st.integers(0, top - 1))
        a = hilbert_point(key, bits, 2)
        b = hilbert_point(key + 1, bits, 2)
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(st.integers(min_value=1, max_value=4), st.data())
    @settings(max_examples=60)
    def test_consecutive_keys_adjacent_3d(self, bits, data):
        top = (1 << (3 * bits)) - 1
        key = data.draw(st.integers(0, top - 1))
        a = hilbert_point(key, bits, 3)
        b = hilbert_point(key + 1, bits, 3)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=50)
    def test_distinct_points_distinct_keys(self, bits, data):
        p1 = (data.draw(st.integers(0, (1 << bits) - 1)),
              data.draw(st.integers(0, (1 << bits) - 1)))
        p2 = (data.draw(st.integers(0, (1 << bits) - 1)),
              data.draw(st.integers(0, (1 << bits) - 1)))
        k1 = hilbert_index(p1, bits)
        k2 = hilbert_index(p2, bits)
        assert (p1 == p2) == (k1 == k2)
