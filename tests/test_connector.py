"""Unit tests for the data connector (schema discovery, parsers, sources,
importer)."""

import sqlite3

import pytest

from repro.connector.importer import Importer
from repro.connector.parsers import (coerce, looks_like, parse_bool,
                                     parse_timestamp)
from repro.connector.schema import (FieldMapping, FieldType,
                                    SchemaDiscovery)
from repro.connector.sources import (CSVSource, DocumentStoreSource,
                                     JSONLinesSource, KeyValueSource,
                                     KeyValueStore, SQLSource)
from repro.core.engine import StormEngine
from repro.core.records import STRange
from repro.errors import ConnectorError, SchemaError
from repro.storage.document_store import DocumentStore


class TestParsers:
    def test_parse_bool(self):
        assert parse_bool("Yes") and parse_bool("1") and parse_bool("t")
        assert not parse_bool("no") and not parse_bool("False")
        with pytest.raises(SchemaError):
            parse_bool("maybe")

    def test_parse_timestamp_epoch(self):
        assert parse_timestamp(1_000.5) == 1_000.5
        assert parse_timestamp("1000") == 1000.0

    def test_parse_timestamp_iso(self):
        t = parse_timestamp("2014-02-10T12:00:00")
        assert parse_timestamp("2014-02-10 12:00:00") == t
        assert parse_timestamp("2014-02-10") < t

    def test_parse_timestamp_us_format(self):
        assert parse_timestamp("02/10/2014") \
            == parse_timestamp("2014-02-10")

    def test_parse_timestamp_bad(self):
        with pytest.raises(SchemaError):
            parse_timestamp("not a date")
        with pytest.raises(SchemaError):
            parse_timestamp("")

    def test_looks_like(self):
        assert looks_like("42") == "int"
        assert looks_like("4.2") == "float"
        assert looks_like("true") == "bool"
        assert looks_like("2014-02-10") == "timestamp"
        assert looks_like("hello") == "str"
        assert looks_like("") == "str"

    def test_coerce(self):
        assert coerce("42", "int") == 42
        assert coerce("4.5", "float") == 4.5
        assert coerce("yes", "bool") is True
        assert coerce(None, "int") is None
        assert coerce(7, "str") == "7"
        with pytest.raises(SchemaError):
            coerce("x", "mystery")


class TestSchemaDiscovery:
    ROWS = [
        {"lon": "1.5", "lat": "2.5", "time": "100", "name": "a",
         "flag": "true"},
        {"lon": "3.5", "lat": "4.5", "time": "200", "name": "b",
         "flag": "false"},
    ]

    def test_types_inferred(self):
        schema = SchemaDiscovery().discover(self.ROWS)
        assert schema.type_of("lon") == FieldType.FLOAT
        assert schema.type_of("time") == FieldType.INT
        assert schema.type_of("name") == FieldType.STR
        assert schema.type_of("flag") == FieldType.BOOL

    def test_widening_int_float(self):
        schema = SchemaDiscovery().discover(
            [{"v": "1"}, {"v": "1.5"}])
        assert schema.type_of("v") == FieldType.FLOAT

    def test_widening_to_str(self):
        schema = SchemaDiscovery().discover(
            [{"v": "1"}, {"v": "hello"}])
        assert schema.type_of("v") == FieldType.STR

    def test_mapping_by_name(self):
        schema = SchemaDiscovery().discover(self.ROWS)
        mapping = SchemaDiscovery().detect_mapping(schema, self.ROWS)
        assert mapping == FieldMapping("lon", "lat", "time")

    def test_mapping_by_range(self):
        rows = [{"a": -100.0 + i, "b": 40.0 + i / 10, "v": "x"}
                for i in range(5)]
        schema = SchemaDiscovery().discover(rows)
        mapping = SchemaDiscovery().detect_mapping(schema, rows)
        assert mapping.lon_field == "a"
        assert mapping.lat_field == "b"

    def test_mapping_failure(self):
        rows = [{"name": "x"}]
        schema = SchemaDiscovery().discover(rows)
        with pytest.raises(SchemaError):
            SchemaDiscovery().detect_mapping(schema, rows)

    def test_zero_rows(self):
        with pytest.raises(SchemaError):
            SchemaDiscovery().discover([])

    def test_typed_rows(self):
        schema = SchemaDiscovery().discover(
            [{"lon": 1.0, "lat": 2, "ok": True}])
        assert schema.type_of("lon") == FieldType.FLOAT
        assert schema.type_of("lat") == FieldType.INT
        assert schema.type_of("ok") == FieldType.BOOL


class TestSources:
    def test_csv_source(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("lon,lat,v\n1.0,2.0,a\n3.0,4.0,b\n")
        source = CSVSource(str(path))
        rows = list(source.scan())
        assert rows == [{"lon": "1.0", "lat": "2.0", "v": "a"},
                        {"lon": "3.0", "lat": "4.0", "v": "b"}]
        assert source.count() == 2

    def test_csv_missing_file(self):
        with pytest.raises(ConnectorError):
            list(CSVSource("/nope/missing.csv").scan())

    def test_jsonl_source(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"lon": 1, "lat": 2}\n\n{"lon": 3, "lat": 4}\n')
        rows = list(JSONLinesSource(str(path)).scan())
        assert len(rows) == 2

    def test_jsonl_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{oops}\n")
        with pytest.raises(ConnectorError):
            list(JSONLinesSource(str(path)).scan())

    def test_jsonl_non_object(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ConnectorError):
            list(JSONLinesSource(str(path)).scan())

    def _make_db(self, tmp_path):
        db = str(tmp_path / "my.db")
        conn = sqlite3.connect(db)
        conn.execute("CREATE TABLE pts (lon REAL, lat REAL, v TEXT)")
        conn.executemany("INSERT INTO pts VALUES (?, ?, ?)",
                         [(1.0, 2.0, "a"), (3.0, 4.0, "b")])
        conn.commit()
        conn.close()
        return db

    def test_sql_source_table(self, tmp_path):
        source = SQLSource(self._make_db(tmp_path), table="pts")
        rows = list(source.scan())
        assert rows[0] == {"lon": 1.0, "lat": 2.0, "v": "a"}
        assert source.count() == 2

    def test_sql_source_query(self, tmp_path):
        source = SQLSource(self._make_db(tmp_path),
                           query="SELECT lon, lat FROM pts WHERE lon > 2")
        assert list(source.scan()) == [{"lon": 3.0, "lat": 4.0}]

    def test_sql_requires_exactly_one(self, tmp_path):
        with pytest.raises(ConnectorError):
            SQLSource("x.db")
        with pytest.raises(ConnectorError):
            SQLSource("x.db", table="t", query="SELECT 1")

    def test_sql_rejects_weird_table(self):
        with pytest.raises(ConnectorError):
            SQLSource("x.db", table="pts; DROP TABLE pts")

    def test_kv_store_and_source(self):
        kv = KeyValueStore(partitions=4)
        kv.put("users", "u1", {"lon": 1.0, "lat": 2.0})
        kv.put("users", "u2", {"lon": 3.0, "lat": 4.0})
        assert kv.get("users", "u1")["lon"] == 1.0
        assert kv.get("users", "zz") is None
        assert len(kv) == 2
        rows = list(KeyValueSource(kv).scan())
        assert {r["row_key"] for r in rows} == {"u1", "u2"}
        assert kv.delete("users", "u1")
        assert not kv.delete("users", "u1")

    def test_document_store_source(self):
        store = DocumentStore()
        store.collection("c").insert_many(
            [{"lon": 1.0, "lat": 2.0}, {"lon": 3.0, "lat": 4.0}])
        source = DocumentStoreSource(store, "c")
        assert source.count() == 2
        with pytest.raises(ConnectorError):
            DocumentStoreSource(store, "missing")


class TestImporter:
    def _csv(self, tmp_path, rows="lon,lat,t,kwh\n"
             "1.0,2.0,100,950\n3.0,4.0,200,1010\n5.0,6.0,300,870\n"):
        path = tmp_path / "meters.csv"
        path.write_text(rows)
        return CSVSource(str(path))

    def test_import_mode(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        dataset, report = importer.run(self._csv(tmp_path), "meters")
        assert report.imported == 3
        assert report.mode == "import"
        assert len(dataset) == 3
        # Documents were copied into the store.
        assert importer.store.collection("meters").count() == 3
        # Catalog knows about it.
        assert importer.catalog.get("meters").record_count == 3
        # And the data is queryable.
        q = STRange(0, 0, 10, 10)
        assert dataset.tree.range_count(q.to_rect(3)) == 3

    def test_index_mode_copies_nothing(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        _, report = importer.run(self._csv(tmp_path), "meters",
                                 mode="index")
        assert report.mode == "index"
        assert "meters" not in importer.store.list_collections()
        assert importer.catalog.get("meters").mode == "index"

    def test_attributes_typed(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        dataset, _ = importer.run(self._csv(tmp_path), "meters")
        record = dataset.lookup(0)
        assert record.attrs["kwh"] == 950

    def test_dirty_rows_skipped(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        source = self._csv(tmp_path, "lon,lat,v\n1.0,2.0,a\n"
                                     "oops,4.0,b\n5.0,6.0,c\n")
        _, report = importer.run(source, "dirty")
        assert report.imported == 2
        assert report.skipped == 1
        assert report.errors

    def test_no_importable_rows(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        source = self._csv(tmp_path, "lon,lat\nx,y\n")
        with pytest.raises(ConnectorError):
            importer.run(source, "junk",
                         mapping=FieldMapping("lon", "lat"))

    def test_duplicate_dataset_rejected(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        importer.run(self._csv(tmp_path), "meters")
        with pytest.raises(ConnectorError):
            importer.run(self._csv(tmp_path), "meters")

    def test_bad_mode_rejected(self, tmp_path):
        engine = StormEngine()
        importer = Importer(engine)
        with pytest.raises(ConnectorError):
            importer.run(self._csv(tmp_path), "meters", mode="copy")

    def test_sql_end_to_end(self, tmp_path):
        db = str(tmp_path / "geo.db")
        conn = sqlite3.connect(db)
        conn.execute(
            "CREATE TABLE obs (longitude REAL, latitude REAL, "
            "ts REAL, temp REAL)")
        conn.executemany("INSERT INTO obs VALUES (?, ?, ?, ?)",
                         [(i * 1.0, i * 1.0, i * 10.0, 20.0 + i)
                          for i in range(20)])
        conn.commit()
        conn.close()
        engine = StormEngine()
        importer = Importer(engine)
        dataset, report = importer.run(SQLSource(db, table="obs"), "obs")
        assert report.imported == 20
        assert report.mapping.lon_field == "longitude"
        point = engine.avg("obs", "temp", STRange(0, 0, 100, 100))
        assert point.estimate.exact
