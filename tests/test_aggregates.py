"""Unit tests for the aggregate estimators."""

import math
import random

import pytest

from repro.core.estimators.aggregates import (AvgEstimator, CountEstimator,
                                              ProportionEstimator,
                                              QuantileEstimator,
                                              SumEstimator,
                                              VarianceEstimator)
from repro.core.estimators.base import RunningStats
from repro.core.records import Record, attribute_getter
from repro.errors import EstimatorError


def make_records(values, attr="x"):
    return [Record(record_id=i, lon=0.0, lat=0.0, t=0.0,
                   attrs={attr: v}) for i, v in enumerate(values)]


class TestRunningStats:
    def test_matches_direct_computation(self):
        rng = random.Random(1)
        xs = [rng.gauss(10, 3) for _ in range(500)]
        stats = RunningStats()
        for x in xs:
            stats.add(x)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(var)
        assert stats.min == min(xs)
        assert stats.max == max(xs)

    def test_merge(self):
        rng = random.Random(2)
        xs = [rng.gauss(0, 1) for _ in range(300)]
        a, b, whole = RunningStats(), RunningStats(), RunningStats()
        for x in xs[:100]:
            a.add(x)
        for x in xs[100:]:
            b.add(x)
        for x in xs:
            whole.add(x)
        merged = a.merge(b)
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)

    def test_merge_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.add(5.0)
        assert a.merge(b).mean == 5.0

    def test_variance_of_single(self):
        s = RunningStats()
        s.add(3.0)
        assert s.variance == 0.0


class TestAvgEstimator:
    def test_value_is_sample_mean(self):
        est = AvgEstimator(attribute_getter("x"))
        for r in make_records([1.0, 2.0, 3.0, 4.0]):
            est.absorb(r)
        e = est.estimate()
        assert e.value == pytest.approx(2.5)
        assert e.k == 4

    def test_interval_contains_truth_usually(self):
        rng = random.Random(3)
        values = [rng.gauss(100, 15) for _ in range(2000)]
        truth = sum(values) / len(values)
        est = AvgEstimator(attribute_getter("x"))
        est.set_population_size(len(values))
        records = make_records(values)
        hits = 0
        for trial in range(100):
            est.reset()
            for r in random.Random(trial).sample(records, 50):
                est.absorb(r)
            if est.estimate().interval.contains(truth):
                hits += 1
        assert hits > 85

    def test_exact_when_all_consumed(self):
        est = AvgEstimator(attribute_getter("x"))
        est.set_population_size(3)
        for r in make_records([1.0, 2.0, 3.0]):
            est.absorb(r)
        e = est.estimate()
        assert e.exact
        assert e.interval.width == pytest.approx(0.0)

    def test_raises_with_no_samples(self):
        est = AvgEstimator(attribute_getter("x"))
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_missing_attribute_raises(self):
        est = AvgEstimator(attribute_getter("missing"))
        with pytest.raises(KeyError):
            est.absorb(make_records([1.0])[0])

    def test_builtin_coordinates_accessible(self):
        est = AvgEstimator(attribute_getter("lat"))
        est.absorb(Record(0, lon=1.0, lat=7.0))
        assert est.estimate().value == 7.0


class TestSumEstimator:
    def test_scales_mean_by_q(self):
        est = SumEstimator(attribute_getter("x"))
        est.set_population_size(100)
        for r in make_records([2.0, 4.0]):
            est.absorb(r)
        assert est.estimate().value == pytest.approx(300.0)

    def test_requires_q(self):
        est = SumEstimator(attribute_getter("x"))
        for r in make_records([2.0, 4.0]):
            est.absorb(r)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_interval_scaled(self):
        est = SumEstimator(attribute_getter("x"))
        est.set_population_size(10)
        for r in make_records([1.0, 2.0, 3.0]):
            est.absorb(r)
        e = est.estimate()
        assert e.interval.contains(e.value)

    def test_reset(self):
        est = SumEstimator(attribute_getter("x"))
        est.set_population_size(10)
        for r in make_records([1.0, 2.0]):
            est.absorb(r)
        est.reset()
        assert est.k == 0


class TestCountEstimator:
    def test_unfiltered_exact(self):
        est = CountEstimator()
        est.set_population_size(1234)
        e = est.estimate()
        assert e.value == 1234
        assert e.exact

    def test_predicate_estimation(self):
        est = CountEstimator(lambda r: r.attrs["x"] > 0)
        est.set_population_size(1000)
        values = [1.0] * 30 + [-1.0] * 70
        for r in make_records(values):
            est.absorb(r)
        e = est.estimate()
        assert e.value == pytest.approx(300.0)
        assert e.interval.lo <= 300.0 <= e.interval.hi

    def test_requires_q(self):
        est = CountEstimator()
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_predicate_requires_samples(self):
        est = CountEstimator(lambda r: True)
        est.set_population_size(10)
        with pytest.raises(EstimatorError):
            est.estimate()


class TestProportionEstimator:
    def test_basic(self):
        est = ProportionEstimator(lambda r: r.attrs["x"] >= 5)
        for r in make_records([1.0, 6.0, 7.0, 2.0]):
            est.absorb(r)
        e = est.estimate()
        assert e.value == pytest.approx(0.5)
        assert 0.0 <= e.interval.lo <= 0.5 <= e.interval.hi <= 1.0


class TestVarianceEstimator:
    def test_estimates_variance(self):
        rng = random.Random(5)
        values = [rng.gauss(0, 3) for _ in range(400)]
        est = VarianceEstimator(attribute_getter("x"))
        for r in make_records(values):
            est.absorb(r)
        e = est.estimate()
        assert e.value == pytest.approx(9.0, rel=0.3)
        assert e.interval.lo < e.value < e.interval.hi

    def test_std_mode(self):
        est = VarianceEstimator(attribute_getter("x"), std=True)
        for r in make_records([0.0, 2.0, 4.0, 6.0]):
            est.absorb(r)
        e = est.estimate()
        assert e.value == pytest.approx(math.sqrt(
            est.stats.variance))

    def test_needs_two_samples(self):
        est = VarianceEstimator(attribute_getter("x"))
        est.absorb(make_records([1.0])[0])
        with pytest.raises(EstimatorError):
            est.estimate()


class TestQuantileEstimator:
    def test_median_of_known_data(self):
        est = QuantileEstimator(attribute_getter("x"), 0.5)
        for r in make_records(list(range(1, 102))):  # 1..101
            est.absorb(r)
        e = est.estimate()
        assert e.value == 51

    def test_interval_brackets_quantile(self):
        rng = random.Random(6)
        values = [rng.uniform(0, 100) for _ in range(500)]
        est = QuantileEstimator(attribute_getter("x"), 0.9)
        for r in make_records(values):
            est.absorb(r)
        e = est.estimate()
        truth = sorted(values)[int(0.9 * len(values))]
        assert e.interval.lo <= truth <= e.interval.hi

    def test_rejects_bad_quantile(self):
        with pytest.raises(EstimatorError):
            QuantileEstimator(attribute_getter("x"), 1.5)

    def test_empty_raises(self):
        est = QuantileEstimator(attribute_getter("x"))
        with pytest.raises(EstimatorError):
            est.estimate()
