"""Tests for the simulated distributed substrate."""

import random

import pytest

from repro.core.geometry import Rect
from repro.core.records import Record, STRange
from repro.distributed.cluster import NetworkModel, NetworkStats, \
    SimulatedCluster
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler
from repro.distributed.partitioner import HilbertRangePartitioner
from repro.errors import ClusterError


def make_records(n, seed=71):
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.random()})
            for i in range(n)]


RECORDS = make_records(4000)
BOUNDS = Rect((0, 0, 0), (100, 100, 1000))
QUERY = STRange(20, 20, 80, 80, 100, 900)


def truth_ids(query=QUERY):
    return {r.record_id for r in RECORDS if query.contains(r)}


class TestPartitioner:
    def test_balanced(self):
        part = HilbertRangePartitioner(BOUNDS, shards=5)
        shards = part.split(RECORDS)
        assert sum(len(s) for s in shards) == len(RECORDS)
        assert part.balance(shards) < 1.01

    def test_covers_everything_once(self):
        part = HilbertRangePartitioner(BOUNDS, shards=4)
        shards = part.split(RECORDS)
        ids = [r.record_id for shard in shards for r in shard]
        assert sorted(ids) == list(range(len(RECORDS)))

    def test_spatial_coherence(self):
        """Each shard's bounding box should be far smaller than the
        whole domain (contiguous curve ranges are compact)."""
        part = HilbertRangePartitioner(BOUNDS, shards=8)
        shards = part.split(RECORDS)
        domain_area = 100.0 * 100.0
        areas = []
        for shard in shards:
            box = Rect.bounding([(r.lon, r.lat) for r in shard])
            areas.append(box.area())
        assert sum(areas) / len(areas) < 0.6 * domain_area

    def test_routing_matches_split(self):
        part = HilbertRangePartitioner(BOUNDS, shards=4)
        shards = part.split(RECORDS)
        for i, shard in enumerate(shards):
            for r in shard[:50]:
                assert part.shard_of(r) == i

    def test_routing_before_split_rejected(self):
        part = HilbertRangePartitioner(BOUNDS, shards=4)
        with pytest.raises(ClusterError):
            part.shard_of(RECORDS[0])

    def test_empty_split(self):
        part = HilbertRangePartitioner(BOUNDS, shards=3)
        assert part.split([]) == [[], [], []]

    def test_rejects_bad_config(self):
        with pytest.raises(ClusterError):
            HilbertRangePartitioner(BOUNDS, shards=0)
        with pytest.raises(ClusterError):
            HilbertRangePartitioner(Rect((0, 0), (1, 1)), shards=2)


class TestCluster:
    def test_network_model(self):
        model = NetworkModel(latency_seconds=1e-3,
                             bandwidth_bytes_per_second=1e6)
        assert model.seconds(2, 1_000_000) == pytest.approx(1.002)

    def test_network_stats_delta(self):
        stats = NetworkStats()
        stats.charge(messages=3, payload_bytes=100)
        snap = stats.snapshot()
        stats.charge(messages=1, payload_bytes=50)
        delta = stats.delta_from(snap)
        assert delta.messages == 1 and delta.payload_bytes == 50

    def test_rejects_zero_workers(self):
        with pytest.raises(ClusterError):
            SimulatedCluster(0, BOUNDS)


class TestDistributedIndex:
    INDEX = DistributedSTIndex(RECORDS, n_workers=4)

    def test_all_records_placed(self):
        assert len(self.INDEX) == len(RECORDS)
        sizes = [len(w) for w in self.INDEX.cluster.workers]
        assert max(sizes) - min(sizes) <= 1

    def test_distributed_count_exact(self):
        assert self.INDEX.range_count(QUERY) == len(truth_ids())

    def test_lookup(self):
        record = self.INDEX.lookup(17)
        assert record.record_id == 17
        with pytest.raises(ClusterError):
            self.INDEX.lookup(10**9)

    def test_insert_and_delete(self):
        index = DistributedSTIndex(make_records(500, seed=72),
                                   n_workers=3)
        index.insert(Record(9_000, lon=50, lat=50, t=500))
        assert index.range_count(
            STRange(49, 49, 51, 51, 499, 501)) == \
            1 + sum(1 for r in make_records(500, seed=72)
                    if STRange(49, 49, 51, 51, 499, 501).contains(r))
        assert index.delete(9_000)
        assert not index.delete(9_000)

    def test_network_charged(self):
        index = DistributedSTIndex(make_records(200, seed=73),
                                   n_workers=2)
        before = index.cluster.network.messages
        index.range_count(QUERY)
        assert index.cluster.network.messages > before

    def test_empty_rejected(self):
        with pytest.raises(ClusterError):
            DistributedSTIndex([], n_workers=2)


class TestDistributedSampler:
    def test_stream_is_complete_and_unique(self):
        index = DistributedSTIndex(RECORDS, n_workers=4, seed=5)
        sampler = DistributedSampler(index, batch_size=16)
        rng = random.Random(74)
        got = [e.item_id for e in sampler.sample_stream(QUERY, rng)]
        assert len(got) == len(set(got))
        assert set(got) == truth_ids()

    def test_prefix_sampling(self):
        index = DistributedSTIndex(RECORDS, n_workers=4, seed=6)
        sampler = DistributedSampler(index)
        samples = sampler.sample(QUERY, 50, random.Random(75))
        assert len(samples) == 50
        assert sampler.last_query_seconds() > 0

    def test_first_sample_uniform_across_workers(self):
        """Worker choice must be count-proportional: over many draws the
        per-worker share of first samples ~ its in-range share."""
        index = DistributedSTIndex(RECORDS, n_workers=4, seed=7)
        sampler = DistributedSampler(index, batch_size=4)
        owner = {}
        for w in index.cluster.workers:
            for rid in w.records:
                owner[rid] = w.worker_id
        shares = {w.worker_id: w.range_count(QUERY.to_rect(3))
                  for w in index.cluster.workers}
        total = sum(shares.values())
        counts = {w: 0 for w in shares}
        trials = 2000
        for t in range(trials):
            (entry,) = sampler.sample(QUERY, 1, random.Random(1000 + t))
            counts[owner[entry.item_id]] += 1
        for w, share in shares.items():
            expected = trials * share / total
            assert abs(counts[w] - expected) < 5 * (expected ** 0.5) + 5

    def test_more_workers_cut_simulated_time(self):
        """The scaling property: simulated per-query time shrinks as
        workers are added (parallel I/O), for a fixed k."""
        times = {}
        for workers in (1, 4):
            index = DistributedSTIndex(RECORDS, n_workers=workers,
                                       seed=8)
            sampler = DistributedSampler(index, batch_size=32)
            sampler.sample(QUERY, 512, random.Random(76))
            times[workers] = sampler.last_query_seconds()
        assert times[4] < times[1]

    def test_ls_workers_complete_and_unique(self):
        """The paper's distributed LS-tree variant: per-shard forests."""
        index = DistributedSTIndex(RECORDS, n_workers=4, seed=10,
                                   sampler_kind="ls")
        sampler = DistributedSampler(index, batch_size=16)
        got = [e.item_id for e in
               sampler.sample_stream(QUERY, random.Random(79))]
        assert len(got) == len(set(got))
        assert set(got) == truth_ids()

    def test_ls_workers_support_updates(self):
        index = DistributedSTIndex(make_records(300, seed=80),
                                   n_workers=2, sampler_kind="ls")
        from repro.core.records import Record as R
        index.insert(R(9_999, lon=50, lat=50, t=500))
        assert index.delete(9_999)

    def test_bad_sampler_kind_rejected(self):
        with pytest.raises(ClusterError):
            DistributedSTIndex(make_records(50, seed=81), n_workers=2,
                               sampler_kind="quantum")

    def test_rejects_bad_batch(self):
        index = DistributedSTIndex(make_records(100, seed=77),
                                   n_workers=2)
        with pytest.raises(ClusterError):
            DistributedSampler(index, batch_size=0)

    def test_timing_requires_a_query(self):
        index = DistributedSTIndex(make_records(100, seed=78),
                                   n_workers=2)
        sampler = DistributedSampler(index)
        with pytest.raises(ClusterError):
            sampler.last_query_seconds()
