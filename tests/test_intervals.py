"""Unit tests for confidence interval machinery."""

import math
import random

import pytest

from repro.core.estimators.intervals import (ConfidenceInterval,
                                             finite_population_correction,
                                             hoeffding_interval,
                                             mean_interval,
                                             proportion_interval,
                                             required_sample_size)
from repro.errors import EstimatorError


class TestConfidenceInterval:
    def test_width_and_center(self):
        ci = ConfidenceInterval(1.0, 3.0, 0.95)
        assert ci.width == 2.0
        assert ci.half_width == 1.0
        assert ci.center == 2.0

    def test_contains(self):
        ci = ConfidenceInterval(1.0, 3.0, 0.95)
        assert ci.contains(2.0)
        assert ci.contains(1.0)
        assert not ci.contains(3.5)

    def test_relative_half_width(self):
        ci = ConfidenceInterval(9.0, 11.0, 0.95)
        assert ci.relative_half_width() == pytest.approx(0.1)

    def test_relative_half_width_zero_center(self):
        ci = ConfidenceInterval(-1.0, 1.0, 0.95)
        assert ci.relative_half_width() == math.inf


class TestFPC:
    def test_no_population(self):
        assert finite_population_correction(10, None) == 1.0

    def test_full_sample_is_exact(self):
        assert finite_population_correction(100, 100) == 0.0

    def test_shrinks_with_k(self):
        values = [finite_population_correction(k, 1000)
                  for k in (1, 100, 500, 999)]
        assert values == sorted(values, reverse=True)


class TestMeanInterval:
    def test_basic_shrinkage(self):
        wide = mean_interval(10.0, 4.0, 10)
        narrow = mean_interval(10.0, 4.0, 1000)
        assert narrow.width < wide.width

    def test_single_sample_unbounded(self):
        ci = mean_interval(5.0, 0.0, 1)
        assert ci.lo == -math.inf and ci.hi == math.inf

    def test_exact_when_k_equals_q(self):
        ci = mean_interval(5.0, 4.0, 100, q=100)
        assert ci.width == 0.0

    def test_coverage_simulation(self):
        """~95% of intervals must contain the true mean."""
        rng = random.Random(55)
        population = [rng.gauss(50, 10) for _ in range(5000)]
        mu = sum(population) / len(population)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = [rng.choice(population) for _ in range(60)]
            mean = sum(sample) / len(sample)
            var = (sum((x - mean) ** 2 for x in sample)
                   / (len(sample) - 1))
            if mean_interval(mean, var, len(sample), 0.95).contains(mu):
                hits += 1
        assert hits / trials > 0.90

    def test_rejects_bad_level(self):
        with pytest.raises(EstimatorError):
            mean_interval(0.0, 1.0, 10, level=1.5)

    def test_rejects_negative_variance(self):
        with pytest.raises(EstimatorError):
            mean_interval(0.0, -1.0, 10)

    def test_rejects_zero_samples(self):
        with pytest.raises(EstimatorError):
            mean_interval(0.0, 1.0, 0)

    def test_t_wider_than_normal_for_small_k(self):
        t_ci = mean_interval(0.0, 1.0, 5, use_t=True)
        n_ci = mean_interval(0.0, 1.0, 5, use_t=False)
        assert t_ci.width > n_ci.width


class TestHoeffding:
    def test_valid_and_conservative(self):
        h = hoeffding_interval(0.5, 100, 0.0, 1.0)
        assert h.contains(0.5)
        clt = mean_interval(0.5, 0.25, 100)
        assert h.width >= clt.width  # Hoeffding is conservative

    def test_shrinks_with_k(self):
        assert hoeffding_interval(0.5, 1000, 0.0, 1.0).width \
            < hoeffding_interval(0.5, 10, 0.0, 1.0).width

    def test_rejects_inverted_bounds(self):
        with pytest.raises(EstimatorError):
            hoeffding_interval(0.5, 10, 1.0, 0.0)


class TestProportion:
    def test_bounded_to_unit_interval(self):
        ci = proportion_interval(0, 10)
        assert ci.lo == 0.0
        ci = proportion_interval(10, 10)
        assert ci.hi == pytest.approx(1.0)
        assert ci.hi <= 1.0

    def test_contains_sample_proportion(self):
        ci = proportion_interval(30, 100)
        assert ci.contains(0.3)

    def test_rejects_bad_successes(self):
        with pytest.raises(EstimatorError):
            proportion_interval(11, 10)


class TestRequiredSampleSize:
    def test_more_precision_needs_more_samples(self):
        loose = required_sample_size(100.0, 5.0)
        tight = required_sample_size(100.0, 0.5)
        assert tight > loose

    def test_capped_by_population(self):
        assert required_sample_size(1e9, 1e-6, q=500) <= 500

    def test_zero_variance(self):
        assert required_sample_size(0.0, 1.0) == 1

    def test_rejects_bad_target(self):
        with pytest.raises(EstimatorError):
            required_sample_size(1.0, 0.0)

    def test_prediction_is_adequate(self):
        """Drawing the predicted number of samples should reach the
        target half-width (on average)."""
        rng = random.Random(66)
        population = [rng.gauss(0, 5) for _ in range(20_000)]
        var = 25.0
        target = 0.5
        k = required_sample_size(var, target)
        sample = [rng.choice(population) for _ in range(k)]
        mean = sum(sample) / k
        s2 = sum((x - mean) ** 2 for x in sample) / (k - 1)
        ci = mean_interval(mean, s2, k)
        assert ci.half_width < target * 1.3
