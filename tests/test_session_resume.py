"""Resumable sessions: "s/he could also wait a bit longer"."""

import itertools
import random

import pytest

from repro.core.engine import Dataset
from repro.core.estimators.aggregates import AvgEstimator
from repro.core.records import Record, STRange, attribute_getter
from repro.core.session import OnlineQuerySession, StopCondition


def make_dataset(n=2500, seed=161):
    rng = random.Random(seed)
    records = [Record(i, lon=rng.uniform(0, 100),
                      lat=rng.uniform(0, 100), t=rng.uniform(0, 100),
                      attrs={"v": rng.gauss(20.0, 4.0)})
               for i in range(n)]
    return Dataset("resume", records, rs_buffer_size=32)


DATASET = make_dataset()
AREA = STRange(10, 10, 90, 90)


class TestResume:
    def test_wait_a_bit_longer_tightens_the_interval(self):
        """The paper's example: stop at 1s-quality, then resume for
        better quality — same session, same stream, k keeps growing."""
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="rs-tree",
                                  rng=random.Random(1), report_every=16)
        first = session.run_to_stop(StopCondition(max_samples=100))
        assert first.reason == "sample budget reached"
        width_1 = first.estimate.interval.width
        k_1 = first.k
        second = session.run_to_stop(StopCondition(max_samples=800))
        assert second.k > k_1, "resume must continue, not restart"
        assert second.estimate.interval.width < width_1
        assert est.k == second.k  # one estimator, accumulated

    def test_resume_with_accuracy_target(self):
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="ls-tree",
                                  rng=random.Random(2), report_every=16)
        session.run_to_stop(StopCondition(max_samples=64))
        final = session.run_to_stop(
            StopCondition(target_relative_error=0.01))
        assert final.estimate.interval.relative_half_width() <= 0.01

    def test_resume_already_satisfied_returns_immediately(self):
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="rs-tree",
                                  rng=random.Random(3), report_every=16)
        session.run_to_stop(StopCondition(max_samples=320))
        again = session.run_to_stop(StopCondition(max_samples=100))
        assert again.done
        assert again.k == 320  # no extra samples were drawn

    def test_resume_to_exhaustion_is_exact(self):
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="query-first",
                                  rng=random.Random(4), report_every=32)
        session.run_to_stop(StopCondition(max_samples=50))
        final = session.run_to_stop(StopCondition())
        assert final.estimate.exact
        truth = [r.attrs["v"] for r in DATASET.records.values()
                 if AREA.contains(r)]
        assert final.estimate.value == pytest.approx(
            sum(truth) / len(truth))

    def test_resume_after_exhaustion_stays_exact(self):
        est = AvgEstimator(attribute_getter("v"))
        small = STRange(45, 45, 55, 55)
        session = DATASET.session(small, est, method="query-first",
                                  rng=random.Random(5), report_every=8)
        first = session.run_to_stop(StopCondition())
        again = session.run_to_stop(StopCondition(max_samples=10**6))
        assert again.reason == "exhausted (exact result)"
        assert again.k == first.k

    def test_clock_spans_resumes(self):
        ticker = itertools.count()
        clock = lambda: next(ticker) * 1.0  # noqa: E731
        est = AvgEstimator(attribute_getter("v"))
        session = OnlineQuerySession(
            DATASET.samplers["rs-tree"], est, DATASET.to_rect(AREA),
            DATASET.lookup, rng=random.Random(6), clock=clock,
            report_every=4)
        a = session.run_to_stop(StopCondition(max_samples=8))
        b = session.run_to_stop(StopCondition(max_samples=16))
        assert b.elapsed > a.elapsed

    def test_user_break_then_resume(self):
        """Breaking out of run() (user stop) and coming back later."""
        est = AvgEstimator(attribute_getter("v"))
        session = DATASET.session(AREA, est, method="rs-tree",
                                  rng=random.Random(7), report_every=8)
        for point in session.run(StopCondition()):
            if point.k >= 24:
                break
        final = session.run_to_stop(StopCondition(max_samples=48))
        assert final.k >= 48
