"""Property-based tests: R-tree invariants under arbitrary workloads."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.index.hilbert_rtree import HilbertRTree
from repro.index.rtree import RTree

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
point = st.tuples(coord, coord)

BOUNDS = Rect((0, 0), (100, 100))


@st.composite
def query_box(draw):
    x0, y0 = draw(point)
    x1 = draw(st.floats(min_value=x0, max_value=100.0))
    y1 = draw(st.floats(min_value=y0, max_value=100.0))
    return Rect((x0, y0), (x1, y1))


@st.composite
def op_sequence(draw):
    """A sequence of insert/delete ops over small ids."""
    n = draw(st.integers(5, 120))
    ops = []
    live: set[int] = set()
    next_id = 0
    for _ in range(n):
        if live and draw(st.booleans()) and draw(st.booleans()):
            victim = draw(st.sampled_from(sorted(live)))
            live.discard(victim)
            ops.append(("delete", victim))
        else:
            ops.append(("insert", next_id, draw(point)))
            live.add(next_id)
            next_id += 1
    return ops


def apply_ops(tree, ops):
    live: dict[int, tuple] = {}
    for op in ops:
        if op[0] == "insert":
            _, pid, pt = op
            tree.insert(pid, pt)
            live[pid] = pt
        else:
            _, pid = op
            assert tree.delete(pid, live.pop(pid))
    return live


class TestRTreeProperties:
    @given(st.lists(point, min_size=0, max_size=200), query_box())
    @settings(max_examples=60, deadline=None)
    def test_bulk_load_query_matches_brute_force(self, pts, box):
        items = list(enumerate(pts))
        tree = RTree(2, leaf_capacity=8, branch_capacity=4)
        tree.bulk_load(items)
        tree.validate()
        got = {e.item_id for e in tree.range_query(box)}
        want = {i for i, p in items if box.contains_point(p)}
        assert got == want
        assert tree.range_count(box) == len(want)

    @given(op_sequence(), query_box())
    @settings(max_examples=40, deadline=None)
    def test_dynamic_ops_keep_invariants(self, ops, box):
        tree = RTree(2, leaf_capacity=4, branch_capacity=4)
        live = apply_ops(tree, ops)
        tree.validate()
        assert len(tree) == len(live)
        got = {e.item_id for e in tree.range_query(box)}
        want = {pid for pid, p in live.items()
                if box.contains_point(p)}
        assert got == want

    @given(op_sequence(), query_box())
    @settings(max_examples=25, deadline=None)
    def test_rstar_dynamic_ops(self, ops, box):
        from repro.index.rstar import RStarTree
        tree = RStarTree(2, leaf_capacity=4, branch_capacity=4)
        live = apply_ops(tree, ops)
        tree.validate()
        got = {e.item_id for e in tree.range_query(box)}
        want = {pid for pid, p in live.items()
                if box.contains_point(p)}
        assert got == want

    @given(op_sequence(), query_box())
    @settings(max_examples=30, deadline=None)
    def test_hilbert_dynamic_ops(self, ops, box):
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=4,
                            branch_capacity=4)
        live = apply_ops(tree, ops)
        tree.validate()
        got = {e.item_id for e in tree.range_query(box)}
        want = {pid for pid, p in live.items()
                if box.contains_point(p)}
        assert got == want

    @given(st.lists(point, min_size=1, max_size=150), query_box())
    @settings(max_examples=40, deadline=None)
    def test_canonical_set_partitions_range(self, pts, box):
        items = list(enumerate(pts))
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=4,
                            branch_capacity=4)
        tree.bulk_load(items)
        canon = tree.canonical_set(box)
        covered = [e.item_id for e in canon.residual]
        for node in canon.nodes:
            stack = [node]
            while stack:
                n = stack.pop()
                if n.is_leaf:
                    covered.extend(e.item_id for e in n.entries)
                else:
                    stack.extend(n.children)
        want = {i for i, p in items if box.contains_point(p)}
        assert sorted(covered) == sorted(set(covered))
        assert set(covered) == want
        assert canon.count == len(want)

    @given(st.lists(point, min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_counts_sum_to_size(self, pts):
        tree = RTree(2, leaf_capacity=4, branch_capacity=4)
        tree.bulk_load(list(enumerate(pts)))
        assert tree.root.count == len(pts)

    @given(st.lists(point, min_size=1, max_size=120), query_box())
    @settings(max_examples=30, deadline=None)
    def test_sampler_drain_equals_brute_force(self, pts, box):
        """The without-replacement contract for every sampler, under
        arbitrary point sets (duplicates included)."""
        from repro.core.sampling import (LSTree, LSTreeSampler,
                                         QueryFirstSampler,
                                         RandomPathSampler,
                                         RSTreeSampler)
        items = list(enumerate(pts))
        want = {i for i, p in items if box.contains_point(p)}
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=4,
                            branch_capacity=4)
        tree.bulk_load(items)
        forest = LSTree(2, rng=random.Random(1), leaf_capacity=4,
                        branch_capacity=4)
        forest.bulk_load(items)
        rs = RSTreeSampler(tree, buffer_size=4, rng=random.Random(2))
        rs.prepare()
        samplers = [QueryFirstSampler(tree), RandomPathSampler(tree),
                    LSTreeSampler(forest), rs]
        for sampler in samplers:
            got = [e.item_id for e in
                   sampler.sample_stream(box, random.Random(3))]
            assert len(got) == len(set(got)), sampler.name
            assert set(got) == want, sampler.name
