"""Regression tests for the sampling fast-path caches.

Two caches were added for repeated-query workloads:

* the R-tree's **canonical-set cache** (LRU per query rect, keyed to a
  structural ``version`` that every insert / delete / bulk load bumps);
* the simulated DFS's **block cache** (opt-in LRU over
  ``(file, block)``; hits never charge the owning machine).

Both must be *exactly* invisible semantically: a cached answer equals a
recomputed one, and any mutation invalidates before the next read.
"""

import random

import pytest

from repro.core.engine import Dataset
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.errors import StorageError
from repro.index.cost import CostCounter
from repro.index.rtree import RTree
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.storage.dfs import SimulatedDFS
from repro.updates.manager import UpdateBatch, UpdateManager

from tests.conftest import make_points

POINTS = make_points(500, seed=31)
BOX = Rect((20, 20), (80, 80))


def build_tree(**kwargs) -> RTree:
    tree = RTree(2, leaf_capacity=16, branch_capacity=8, **kwargs)
    tree.bulk_load(POINTS)
    return tree


def canon_ids(canon) -> set[int]:
    ids = {e.item_id for e in canon.residual}
    for node in canon.nodes:
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                ids.update(e.item_id for e in n.entries)
            else:
                stack.extend(n.children)
    return ids


class TestCanonicalSetCache:
    def test_repeat_query_hits_and_matches(self):
        tree = build_tree()
        first = tree.canonical_set(BOX)
        assert (tree.canon_hits, tree.canon_misses) == (0, 1)
        again = tree.canonical_set(BOX)
        assert (tree.canon_hits, tree.canon_misses) == (1, 1)
        assert again is first  # served from cache, not recomputed

    def test_hit_charges_cache_not_device(self):
        tree = build_tree()
        tree.canonical_set(BOX)
        cost = CostCounter()
        tree.canonical_set(BOX, cost)
        assert cost.node_reads == 0
        assert cost.cached_reads == 1

    def test_equal_rect_new_object_still_hits(self):
        tree = build_tree()
        tree.canonical_set(Rect((20, 20), (80, 80)))
        tree.canonical_set(Rect((20, 20), (80, 80)))
        assert tree.canon_hits == 1

    def test_insert_invalidates(self):
        tree = build_tree()
        before = canon_ids(tree.canonical_set(BOX))
        version = tree.version
        tree.insert(10_000, (50.0, 50.0))
        assert tree.version == version + 1
        after = tree.canonical_set(BOX)
        assert tree.canon_hits == 0  # recomputed, not served stale
        assert canon_ids(after) == before | {10_000}

    def test_delete_invalidates(self):
        tree = build_tree()
        ids = canon_ids(tree.canonical_set(BOX))
        victim = next(iter(ids))
        point = dict(POINTS)[victim]
        assert tree.delete(victim, point)
        after = canon_ids(tree.canonical_set(BOX))
        assert tree.canon_hits == 0
        assert after == ids - {victim}

    def test_failed_delete_keeps_cache(self):
        tree = build_tree()
        tree.canonical_set(BOX)
        assert not tree.delete(999_999, (1.0, 1.0))
        tree.canonical_set(BOX)
        assert tree.canon_hits == 1

    def test_bulk_load_invalidates(self):
        tree = build_tree()
        tree.canonical_set(BOX)
        tree.bulk_load(POINTS[:100])
        tree.canonical_set(BOX)
        assert tree.canon_hits == 0

    def test_lru_eviction(self):
        tree = build_tree(canonical_cache_size=2)
        a = Rect((0, 0), (30, 30))
        b = Rect((30, 30), (60, 60))
        c = Rect((60, 60), (90, 90))
        tree.canonical_set(a)
        tree.canonical_set(b)
        tree.canonical_set(c)  # evicts a (LRU)
        tree.canonical_set(c)
        tree.canonical_set(b)
        assert tree.canon_hits == 2
        tree.canonical_set(a)  # must recompute
        assert tree.canon_misses == 4

    def test_capacity_zero_disables(self):
        tree = build_tree(canonical_cache_size=0)
        tree.canonical_set(BOX)
        tree.canonical_set(BOX)
        assert tree.canon_hits == 0
        assert tree.canon_misses == 2

    def test_registry_counters(self):
        tree = build_tree()
        obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
        tree.bind_observability(obs)
        tree.canonical_set(BOX)
        tree.canonical_set(BOX)
        reg = obs.registry
        assert reg.counter("storm.cache.canonical.misses").value == 1
        assert reg.counter("storm.cache.canonical.hits").value == 1


def make_records(n, seed=41):
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": 1.0})
            for i in range(n)]


class TestUpdateManagerInvalidation:
    def test_update_batch_bumps_tree_version(self):
        ds = Dataset("cachetest", make_records(400), rs_buffer_size=16)
        manager = UpdateManager(ds)
        rect = ds.to_rect(Rect((20.0, 20.0, 0.0), (80.0, 80.0, 1000.0)))
        ds.tree.canonical_set(rect)
        version = ds.tree.version
        manager.apply(UpdateBatch(
            inserts=[Record(10_000, 50.0, 50.0, t=500.0,
                            attrs={"v": 1.0})],
            deletes=[0]))
        assert ds.tree.version == version + 2  # delete + insert
        count_after = ds.tree.canonical_set(rect).count
        assert ds.tree.canon_hits == 0
        assert count_after == ds.tree.range_count(rect)


class TestDFSBlockCache:
    def test_cache_off_by_default(self):
        dfs = SimulatedDFS(machines=2, replication=1)
        dfs.write_file("f", b"x" * 20_000)
        dfs.read_file("f")
        reads = dfs.total_blocks_read()
        dfs.read_file("f")
        assert dfs.total_blocks_read() == 2 * reads
        assert dfs.cache_stats.hits == 0

    def test_hits_skip_machine_charges(self):
        dfs = SimulatedDFS(machines=2, replication=1, cache_blocks=8)
        dfs.write_file("f", b"x" * 20_000)  # 3 blocks
        data = dfs.read_file("f")
        reads = dfs.total_blocks_read()
        assert reads == 3
        assert dfs.read_file("f") == data
        assert dfs.total_blocks_read() == reads  # all hits, no device
        assert dfs.cache_stats.hits == 3
        assert dfs.cache_stats.misses == 3
        assert dfs.cache_stats.hit_rate == 0.5

    def test_read_block_hit(self):
        dfs = SimulatedDFS(machines=2, replication=1, cache_blocks=4)
        dfs.write_file("f", b"ab" * 10_000)
        first = dfs.read_block("f", 1)
        reads = dfs.total_blocks_read()
        assert dfs.read_block("f", 1) == first
        assert dfs.total_blocks_read() == reads

    def test_write_invalidates(self):
        dfs = SimulatedDFS(machines=2, replication=1, cache_blocks=8)
        dfs.write_file("f", b"old" * 4000)
        dfs.read_file("f")
        dfs.write_file("f", b"new" * 4000)
        assert dfs.read_file("f") == b"new" * 4000
        # The post-write read must be misses, not stale hits.
        assert dfs.cache_stats.hits == 0

    def test_delete_invalidates(self):
        dfs = SimulatedDFS(machines=2, replication=1, cache_blocks=8)
        dfs.write_file("f", b"z" * 100)
        dfs.read_file("f")
        dfs.delete_file("f")
        dfs.write_file("f", b"y" * 100)
        assert dfs.read_file("f") == b"y" * 100
        assert dfs.cache_stats.hits == 0

    def test_lru_eviction_counted(self):
        dfs = SimulatedDFS(machines=2, replication=1, block_size=100,
                           cache_blocks=2)
        dfs.write_file("f", b"q" * 400)  # 4 blocks, capacity 2
        dfs.read_file("f")
        assert dfs.cache_stats.evictions == 2
        # Blocks 2 and 3 survive; 0 and 1 were evicted.
        dfs.read_block("f", 3)
        assert dfs.cache_stats.hits == 1
        dfs.read_block("f", 0)
        assert dfs.cache_stats.misses == 5

    def test_registry_counters(self):
        obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
        dfs = SimulatedDFS(machines=2, replication=1, cache_blocks=4,
                           obs=obs)
        dfs.write_file("f", b"k" * 100)
        dfs.read_file("f")
        dfs.read_file("f")
        reg = obs.registry
        assert reg.counter("storm.dfs.cache.misses").value == 1
        assert reg.counter("storm.dfs.cache.hits").value == 1
        # Device reads counted only for the miss.
        assert reg.counter("storm.dfs.blocks_read").value == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDFS(cache_blocks=-1)


class TestExplainReportsCaches:
    def test_repeat_explain_shows_canonical_hits(self):
        from repro.core.engine import StormEngine
        from repro.query.executor import QueryExecutor
        from repro.workloads.osm import OSMWorkload

        engine = StormEngine(seed=7)
        engine.create_dataset(
            "osm", OSMWorkload(n=2000, seed=7).generate(), dims=2)
        executor = QueryExecutor(engine, rng=random.Random(7))
        query = ("ESTIMATE COUNT FROM osm "
                 "WHERE REGION(-125, 25, -65, 50) "
                 "USING rs-tree SAMPLES 64")
        executor.explain_report(query)  # warm the canonical-set cache
        report = executor.explain_report(query)
        assert "caches:" in report
        assert "canonical-set" in report
        assert "hit_rate=100.0%" in report
