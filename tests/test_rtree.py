"""Unit tests for the R-tree substrate."""

import random

import pytest

from repro.core.geometry import Rect
from repro.errors import IndexError_
from repro.index.cost import CostCounter
from repro.index.rtree import RTree

from tests.conftest import brute_force_range, make_clustered_points, \
    make_points


def build(points, **kwargs) -> RTree:
    tree = RTree(dims=len(points[0][1]) if points else 2, **kwargs)
    tree.bulk_load(points)
    return tree


class TestBulkLoad:
    def test_empty(self):
        tree = RTree(2)
        tree.bulk_load([])
        assert len(tree) == 0
        assert tree.root is None
        tree.validate()

    def test_single_point(self):
        tree = build([(1, (3.0, 4.0))])
        assert len(tree) == 1
        assert tree.height == 1
        tree.validate()

    def test_sizes_and_validation(self, uniform_points):
        tree = build(uniform_points)
        assert len(tree) == len(uniform_points)
        tree.validate()

    def test_clustered_validation(self, clustered_points):
        tree = build(clustered_points)
        tree.validate()

    def test_height_grows_logarithmically(self):
        small = build(make_points(100))
        large = build(make_points(20_000))
        assert small.height <= large.height <= small.height + 4

    def test_iter_entries_roundtrip(self, uniform_points):
        tree = build(uniform_points)
        got = {(e.item_id, e.point) for e in tree.iter_entries()}
        want = {(pid, pt) for pid, pt in uniform_points}
        assert got == want

    def test_3d(self):
        pts = make_points(500, dims=3)
        tree = build(pts)
        tree.validate()
        rect = Rect((10, 10, 10), (60, 60, 60))
        got = {e.item_id for e in tree.range_query(rect)}
        assert got == brute_force_range(pts, rect)

    def test_wrong_dim_rejected(self):
        tree = RTree(2)
        with pytest.raises(IndexError_):
            tree.bulk_load([(0, (1.0, 2.0, 3.0))])


class TestRangeQuery:
    @pytest.mark.parametrize("box", [
        Rect((0, 0), (100, 100)),      # everything
        Rect((25, 25), (75, 75)),      # interior
        Rect((0, 0), (10, 10)),        # corner
        Rect((200, 200), (300, 300)),  # empty
        Rect((50, 50), (50, 50)),      # degenerate
    ])
    def test_matches_brute_force(self, uniform_points, box):
        tree = build(uniform_points)
        got = {e.item_id for e in tree.range_query(box)}
        assert got == brute_force_range(uniform_points, box)

    def test_count_matches_query(self, clustered_points):
        tree = build(clustered_points)
        for box in [Rect((20, 20), (80, 80)), Rect((0, 0), (30, 99))]:
            assert tree.range_count(box) == len(tree.range_query(box))

    def test_count_cheaper_than_report(self, uniform_points):
        tree = build(uniform_points, leaf_capacity=8, branch_capacity=4)
        box = Rect((10, 10), (90, 90))
        c_report = CostCounter()
        tree.range_query(box, c_report)
        c_count = CostCounter()
        tree.range_count(box, c_count)
        assert c_count.node_reads < c_report.node_reads
        assert c_count.leaf_entries_scanned < c_report.leaf_entries_scanned


class TestCanonicalSet:
    def test_covers_exactly_once(self, uniform_points):
        tree = build(uniform_points)
        box = Rect((20, 20), (85, 85))
        canon = tree.canonical_set(box)
        ids = [e.item_id for e in canon.residual]
        for node in canon.nodes:
            assert box.contains(node.mbr)
            stack = [node]
            while stack:
                n = stack.pop()
                if n.is_leaf:
                    ids.extend(e.item_id for e in n.entries)
                else:
                    stack.extend(n.children)
        assert len(ids) == len(set(ids)), "duplicate coverage"
        assert set(ids) == brute_force_range(uniform_points, box)

    def test_count_property(self, uniform_points):
        tree = build(uniform_points)
        box = Rect((30, 10), (70, 95))
        canon = tree.canonical_set(box)
        assert canon.count == tree.range_count(box)

    def test_nodes_are_maximal(self, uniform_points):
        tree = build(uniform_points)
        box = Rect((20, 20), (85, 85))
        canon = tree.canonical_set(box)
        for node in canon.nodes:
            parent = node.parent
            if parent is not None:
                assert not box.contains(parent.mbr)

    def test_cheaper_than_full_report(self, uniform_points):
        tree = build(uniform_points, leaf_capacity=8, branch_capacity=4)
        box = Rect((5, 5), (95, 95))
        c_canon = CostCounter()
        tree.canonical_set(box, c_canon)
        c_report = CostCounter()
        tree.range_query(box, c_report)
        assert c_canon.node_reads < c_report.node_reads


class TestInsert:
    def test_incremental_build_matches_brute_force(self):
        pts = make_points(800, seed=3)
        tree = RTree(2, leaf_capacity=8, branch_capacity=4)
        for pid, pt in pts:
            tree.insert(pid, pt)
        tree.validate()
        box = Rect((25, 25), (60, 90))
        got = {e.item_id for e in tree.range_query(box)}
        assert got == brute_force_range(pts, box)

    def test_counts_maintained(self):
        pts = make_points(300, seed=5)
        tree = RTree(2, leaf_capacity=8, branch_capacity=4)
        for i, (pid, pt) in enumerate(pts, start=1):
            tree.insert(pid, pt)
            assert tree.root.count == i
        tree.validate()

    def test_insert_into_bulk_loaded(self, uniform_points):
        tree = build(uniform_points)
        tree.insert(10_000, (50.0, 50.0))
        tree.validate()
        assert len(tree) == len(uniform_points) + 1
        got = tree.range_query(Rect((49.9, 49.9), (50.1, 50.1)))
        assert 10_000 in {e.item_id for e in got}

    def test_duplicate_points_allowed(self):
        tree = RTree(2, leaf_capacity=4, branch_capacity=4)
        for i in range(50):
            tree.insert(i, (1.0, 1.0))
        tree.validate()
        assert tree.range_count(Rect((1, 1), (1, 1))) == 50


class TestDelete:
    def test_delete_all(self):
        pts = make_points(200, seed=9)
        tree = RTree(2, leaf_capacity=8, branch_capacity=4)
        for pid, pt in pts:
            tree.insert(pid, pt)
        r = random.Random(1)
        order = list(pts)
        r.shuffle(order)
        for i, (pid, pt) in enumerate(order):
            assert tree.delete(pid, pt)
            if i % 25 == 0:
                tree.validate()
        assert len(tree) == 0
        assert tree.root is None

    def test_delete_missing_returns_false(self, uniform_points):
        tree = build(uniform_points)
        assert not tree.delete(999_999, (1.0, 1.0))
        assert len(tree) == len(uniform_points)

    def test_delete_keeps_queries_correct(self):
        pts = make_points(600, seed=13)
        tree = build(pts, leaf_capacity=8, branch_capacity=4)
        r = random.Random(2)
        removed = set()
        for pid, pt in r.sample(pts, 250):
            assert tree.delete(pid, pt)
            removed.add(pid)
        tree.validate()
        box = Rect((10, 10), (90, 90))
        got = {e.item_id for e in tree.range_query(box)}
        want = brute_force_range(pts, box) - removed
        assert got == want

    def test_mixed_workload(self):
        """Interleaved inserts and deletes keep every invariant."""
        tree = RTree(2, leaf_capacity=8, branch_capacity=4)
        r = random.Random(3)
        live: dict[int, tuple] = {}
        next_id = 0
        for step in range(1500):
            if live and r.random() < 0.4:
                pid = r.choice(list(live))
                assert tree.delete(pid, live.pop(pid))
            else:
                pt = (r.uniform(0, 100), r.uniform(0, 100))
                tree.insert(next_id, pt)
                live[next_id] = pt
                next_id += 1
            if step % 200 == 0:
                tree.validate()
                assert len(tree) == len(live)
        tree.validate()
        got = {e.item_id for e in tree.iter_entries()}
        assert got == set(live)


class TestCostAccounting:
    def test_node_reads_charged(self, uniform_points):
        tree = build(uniform_points)
        cost = CostCounter()
        tree.range_query(Rect((0, 0), (100, 100)), cost)
        assert cost.node_reads == tree.node_count()

    def test_sequential_vs_random(self):
        cost = CostCounter()
        cost.charge_node(10)
        cost.charge_node(11)
        cost.charge_node(12)
        cost.charge_node(50)
        assert cost.sequential_reads == 2
        assert cost.random_reads == 2

    def test_snapshot_delta(self):
        cost = CostCounter()
        cost.charge_node(1)
        snap = cost.snapshot()
        cost.charge_node(2)
        cost.charge_node(3)
        delta = cost.delta_from(snap)
        assert delta.node_reads == 2


class TestParams:
    def test_rejects_bad_dims(self):
        with pytest.raises(IndexError_):
            RTree(0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(IndexError_):
            RTree(2, leaf_capacity=1)

    def test_rejects_bad_min_fill(self):
        with pytest.raises(IndexError_):
            RTree(2, min_fill=0.9)

    def test_node_count_positive(self, uniform_points):
        tree = build(uniform_points)
        assert tree.node_count() >= len(uniform_points) // 64
