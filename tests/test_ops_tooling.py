"""Operational tooling: the bench regression gate and the new CLI
telemetry surface (stats --watch, --metrics-port, serve-metrics)."""

import importlib.util
import json
import pathlib

import pytest

from repro.cli import main

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"

_spec = importlib.util.spec_from_file_location(
    "check_bench", TOOLS / "check_bench.py")
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


SAMPLING_DOC = {"samplers": {"rs-tree": {"samples_per_sec": 1000.0},
                             "query-first": {"samples_per_sec": 800.0}}}


class TestCheckBench:
    def test_passes_when_at_baseline(self, tmp_path, capsys):
        fresh = _write(tmp_path / "fresh.json", SAMPLING_DOC)
        base = _write(tmp_path / "base.json", SAMPLING_DOC)
        assert check_bench.main([fresh, "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "gate passed" in out

    def test_improvement_never_fails(self, tmp_path):
        better = {"samplers": {
            "rs-tree": {"samples_per_sec": 9999.0}}}
        fresh = _write(tmp_path / "fresh.json", better)
        base = _write(tmp_path / "base.json", SAMPLING_DOC)
        assert check_bench.main([fresh, "--baseline", base]) == 0

    def test_regression_past_tolerance_fails(self, tmp_path, capsys):
        slow = {"samplers": {
            "rs-tree": {"samples_per_sec": 100.0},
            "query-first": {"samples_per_sec": 790.0}}}
        fresh = _write(tmp_path / "fresh.json", slow)
        base = _write(tmp_path / "base.json", SAMPLING_DOC)
        assert check_bench.main(
            [fresh, "--baseline", base, "--tolerance", "0.5"]) == 1
        err = capsys.readouterr().err
        assert "rs-tree" in err and "regressed" in err
        # query-first only dropped ~1%: inside the band.
        assert "query-first" not in err

    def test_correctness_flags_have_no_tolerance(self, tmp_path,
                                                 capsys):
        # A recovery bench that got *faster* but recovered the wrong
        # state must still fail.
        doc = {"ok": False,
               "scenarios": [
                   {"scenario": "torn_tail", "ok": True},
                   {"scenario": "kill_mid_checkpoint", "ok": False}],
               "replay": {"ops_per_second": 1e9}}
        base = dict(doc, ok=True)
        fresh = _write(tmp_path / "fresh.json", doc)
        baseline = _write(tmp_path / "base.json", base)
        rc = check_bench.main([fresh, "--baseline", baseline])
        assert rc == 1
        err = capsys.readouterr().err
        assert "ok is false" in err
        assert "kill_mid_checkpoint" in err
        assert "torn_tail" not in err

    def test_missing_baseline_skips_gate(self, tmp_path, capsys):
        fresh = _write(tmp_path / "fresh.json", SAMPLING_DOC)
        rc = check_bench.main(
            [fresh, "--baseline", str(tmp_path / "nope.json")])
        assert rc == 0
        assert "skipping throughput gate" in capsys.readouterr().out

    def test_unreadable_fresh_file_fails(self, tmp_path):
        assert check_bench.main([str(tmp_path / "missing.json")]) == 1

    def test_bad_tolerance_rejected(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", SAMPLING_DOC)
        with pytest.raises(SystemExit):
            check_bench.main([fresh, "--tolerance", "1.5"])

    def test_baseline_with_multiple_files_rejected(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", SAMPLING_DOC)
        with pytest.raises(SystemExit):
            check_bench.main([fresh, fresh, "--baseline", fresh])

    def test_committed_baselines_pass_for_committed_files(self):
        # The real gate, exactly as `make check-bench` runs it: the
        # committed files compared against themselves via git show.
        repo = TOOLS.parent
        sampling = repo / "BENCH_sampling.json"
        recovery = repo / "BENCH_recovery.json"
        if not (sampling.exists() and recovery.exists()):
            pytest.skip("no committed bench files")
        import os
        cwd = os.getcwd()
        os.chdir(repo)
        try:
            rc = check_bench.main(["BENCH_sampling.json",
                                   "BENCH_recovery.json"])
        finally:
            os.chdir(cwd)
        assert rc == 0


INGEST_DOC = {"ok": True,
              "ingest": {"inserts_per_sec": 50_000.0,
                         "speedup_vs_per_record": 12.0,
                         "query_p99_seconds": 0.005}}


class TestCheckBenchIngest:
    """Gating of the updates bench: ingest.* metrics and the
    lower-is-better latency direction."""

    def test_ingest_metrics_extracted(self):
        metrics = check_bench._metrics(INGEST_DOC)
        assert metrics == {"ingest.inserts_per_sec": 50_000.0,
                           "ingest.speedup_vs_per_record": 12.0,
                           "ingest.query_p99_seconds": 0.005}

    def test_throughput_drop_fails(self, tmp_path, capsys):
        slow = {"ok": True,
                "ingest": dict(INGEST_DOC["ingest"],
                               inserts_per_sec=1_000.0)}
        fresh = _write(tmp_path / "fresh.json", slow)
        base = _write(tmp_path / "base.json", INGEST_DOC)
        assert check_bench.main([fresh, "--baseline", base]) == 1
        assert "inserts_per_sec" in capsys.readouterr().err

    def test_p99_latency_gates_upward(self, tmp_path, capsys):
        # Ten times the baseline p99 is a regression even though the
        # raw number "went up" — *_seconds metrics invert direction.
        slow = {"ok": True,
                "ingest": dict(INGEST_DOC["ingest"],
                               query_p99_seconds=0.05)}
        fresh = _write(tmp_path / "fresh.json", slow)
        base = _write(tmp_path / "base.json", INGEST_DOC)
        assert check_bench.main([fresh, "--baseline", base]) == 1
        assert "query_p99_seconds" in capsys.readouterr().err

    def test_p99_inside_ceiling_passes(self, tmp_path):
        near = {"ok": True,
                "ingest": dict(INGEST_DOC["ingest"],
                               query_p99_seconds=0.0051)}
        fresh = _write(tmp_path / "fresh.json", near)
        base = _write(tmp_path / "base.json", INGEST_DOC)
        assert check_bench.main([fresh, "--baseline", base]) == 0

    def test_ok_false_fails_even_without_baseline(self, tmp_path):
        # Correctness is gated unconditionally — "record, don't gate"
        # applies only to throughput comparisons.
        bad = dict(INGEST_DOC, ok=False)
        fresh = _write(tmp_path / "fresh.json", bad)
        rc = check_bench.main(
            [fresh, "--baseline", str(tmp_path / "absent.json")])
        assert rc == 1

    def test_missing_git_binary_skips_gate(self, tmp_path, capsys,
                                           monkeypatch):
        # No git in PATH (bare CI containers) must behave exactly
        # like a baseline absent from HEAD: record, don't gate.
        def no_git(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(check_bench.subprocess, "run", no_git,
                            raising=True)
        fresh = _write(tmp_path / "fresh.json", INGEST_DOC)
        assert check_bench.main([fresh]) == 0
        assert "skipping throughput gate" in capsys.readouterr().out


QUERY = ("ESTIMATE COUNT FROM osm "
         "WHERE REGION(-125, 25, -65, 50)")


class TestCLITelemetry:
    def test_stats_watch_renders_and_exits(self, capsys):
        rc = main(["stats", "--dataset", "osm", "--n", "300",
                   "--query", QUERY,
                   "--watch", "1", "--watch-count", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "storm metrics @ " in out
        assert "storm.query.latency_seconds" in out

    def test_watch_requires_stats_mode(self, capsys):
        rc = main(["--dataset", "osm", "--n", "100", "--watch", "2"])
        assert rc == 1
        assert "--watch" in capsys.readouterr().err

    def test_watch_rejects_zero_interval(self, capsys):
        rc = main(["stats", "--n", "100", "--watch", "0"])
        assert rc == 1

    def test_metrics_port_serves_for_query(self, capsys):
        rc = main(["--dataset", "osm", "--n", "300",
                   "--metrics-port", "0", "--query", QUERY])
        assert rc == 0
        captured = capsys.readouterr()
        assert "metrics: http://127.0.0.1:" in captured.err
        assert "value=300" in captured.out

    def test_profile_writes_collapsed_stacks(self, tmp_path, capsys):
        out = tmp_path / "cli.collapsed"
        rc = main(["--dataset", "osm", "--n", "5000",
                   "--profile", str(out), "--profile-hz", "500",
                   "--query", QUERY])
        assert rc == 0
        assert out.exists()
        # Every line is "frame;frame;... count"; with any luck the
        # run was long enough to catch at least one sample, but an
        # empty file is legal on a fast machine — only the format is
        # asserted.
        for line in out.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack

    def test_serve_metrics_duration_exits(self, capsys):
        rc = main(["serve-metrics", "--dataset", "osm", "--n", "200",
                   "--port", "0", "--duration", "0.05",
                   "--query", QUERY])
        assert rc == 0
        captured = capsys.readouterr()
        assert "serving http://127.0.0.1:" in captured.err
        assert "value=200" in captured.out

    def test_serve_metrics_scrape_while_serving(self):
        # Bind an endpoint the way serve-metrics does and scrape it:
        # the Prometheus page must carry the query's histogram.
        import threading
        import urllib.request

        from repro.cli import build_engine, _health_probe
        from repro.obs import MetricsEndpoint, Observability
        from repro.query.executor import QueryExecutor
        import random as _random

        obs = Observability()
        engine = build_engine(["osm"], 300, 0, obs=obs)
        QueryExecutor(engine, rng=_random.Random(0)).execute(QUERY)
        endpoint = MetricsEndpoint(
            obs.registry, port=0,
            health=_health_probe(obs.registry)).start()
        try:
            with urllib.request.urlopen(
                    f"{endpoint.url}/metrics", timeout=5) as resp:
                body = resp.read().decode()
            assert "storm_sample_latency_seconds_bucket" in body
            assert "storm_query_latency_seconds_count" in body
            with urllib.request.urlopen(
                    f"{endpoint.url}/health", timeout=5) as resp:
                health = json.loads(resp.read())
            assert health["status"] == "ok"
            t = threading.active_count()
            assert t >= 1  # endpoint thread is alive alongside us
        finally:
            endpoint.stop()
