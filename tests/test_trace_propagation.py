"""Distributed trace propagation: trace ids, cross-thread spans,
worker-side tallies and the EXPLAIN per-worker breakdown."""

import random
import threading

import pytest

from repro.core.engine import StormEngine
from repro.core.estimators.aggregates import AvgEstimator
from repro.core.geometry import Rect
from repro.core.records import Record, STRange, attribute_getter
from repro.core.session import OnlineQuerySession, StopCondition
from repro.distributed.dataset import DistributedDataset
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler
from repro.index.cost import CostCounter
from repro.obs import Observability, TraceContext, Tracer
from repro.query.executor import QueryExecutor


def make_records(n=1200, seed=77):
    rng = random.Random(seed)
    return [Record(i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10.0, 2.0)})
            for i in range(n)]


QUERY = STRange(10, 10, 90, 90, 100, 900)


class TestTraceIds:
    def test_root_mints_children_inherit(self):
        tracer = Tracer()
        root = tracer.begin("query")
        child = tracer.begin("phase")
        grand = tracer.begin("leaf")
        assert root.trace_id
        assert child.trace_id == root.trace_id
        assert grand.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        tracer.end(grand)
        tracer.end(child)
        tracer.end(root)
        second = tracer.begin("query")
        assert second.trace_id != root.trace_id

    def test_to_dict_carries_trace_and_parent(self):
        tracer = Tracer()
        root = tracer.begin("query")
        child = tracer.begin("phase")
        tracer.end(child)
        tracer.end(root)
        rows = root.flatten()
        assert rows[0]["parent_id"] is None
        assert rows[1]["parent_id"] == root.span_id
        assert {r["trace_id"] for r in rows} == {root.trace_id}

    def test_context_is_propagatable(self):
        tracer = Tracer()
        span = tracer.begin("fanout")
        ctx = span.context()
        assert ctx == TraceContext(span.trace_id, span.span_id)
        tracer.end(span)

    def test_explicit_parent_pins_without_stacking(self):
        tracer = Tracer()
        root = tracer.begin("fanout")
        pinned = tracer.begin("worker_pull", parent=root, worker=3)
        # The pinned span is a child of root but NOT the innermost
        # open span: a regular begin still lands under root.
        sibling = tracer.begin("other")
        assert pinned in root.children
        assert sibling in root.children
        assert pinned.trace_id == root.trace_id
        tracer.end(pinned)
        tracer.end(sibling)
        tracer.end(root)


class TestThreadIsolation:
    def test_background_spans_become_roots(self):
        tracer = Tracer()
        main_root = tracer.begin("query")
        seen = {}

        def background():
            span = tracer.begin("bg_work")
            seen["span"] = span
            tracer.end(span)

        t = threading.Thread(target=background)
        t.start()
        t.join()
        tracer.end(main_root)
        bg = seen["span"]
        assert bg not in main_root.children
        assert bg in tracer.roots
        assert bg.trace_id != main_root.trace_id
        assert bg.parent_span_id is None

    def test_leaf_deltas_sum_despite_second_thread(self):
        # Satellite: a second thread opening/closing its own spans
        # must never graft into the main thread's open tree — the
        # main trace's leaf deltas must still sum exactly to its
        # session total.
        tracer = Tracer()
        cost = CostCounter()
        stop = threading.Event()

        def noisy():
            while not stop.is_set():
                span = tracer.begin("noise")
                tracer.end(span)

        t = threading.Thread(target=noisy)
        root = tracer.begin("query", cost=cost)
        t.start()
        try:
            for phase in range(5):
                child = tracer.begin("phase", cost=cost)
                cost.charge_node(phase)
                cost.charge_sample(3)
                tracer.end(child)
        finally:
            stop.set()
            t.join()
        tracer.end(root)
        assert [c.name for c in root.children] == ["phase"] * 5
        leaf_reads = sum(c.cost.node_reads for c in root.children)
        leaf_samples = sum(c.cost.samples_emitted
                           for c in root.children)
        assert leaf_reads == root.cost.node_reads == 5
        assert leaf_samples == root.cost.samples_emitted == 15
        noise_roots = [r for r in tracer.roots if r.name == "noise"]
        assert noise_roots
        assert all(r.trace_id != root.trace_id for r in noise_roots)


class TestWorkerTraceTallies:
    def test_fetches_tallied_under_trace(self):
        records = make_records(600)
        index = DistributedSTIndex(records, n_workers=3, seed=3,
                                   rs_buffer_size=16)
        worker = index.cluster.workers[0]
        rect = index.to_rect(QUERY)
        ctx = TraceContext("feedface", 1)
        handle = worker.open_stream(rect, seed=9, trace=ctx)
        batch = worker.fetch_batch(handle, 8)
        worker.fetch_batch(handle, 8)
        worker.close_stream(handle)
        tally = worker.trace_tally("feedface")
        assert tally["batches"] == 2
        assert tally["draws"] >= len(batch)
        assert tally["bytes"] > 0
        assert worker.trace_tally("unknown") == {
            "draws": 0, "batches": 0, "bytes": 0}

    def test_untraced_streams_tally_nothing(self):
        records = make_records(300)
        index = DistributedSTIndex(records, n_workers=2, seed=4,
                                   rs_buffer_size=16)
        worker = index.cluster.workers[0]
        handle = worker.open_stream(index.to_rect(QUERY), seed=1)
        worker.fetch_batch(handle, 4)
        worker.close_stream(handle)
        assert worker.trace_tallies == {}

    def test_retention_is_bounded(self):
        from repro.distributed.cluster import TRACE_TALLY_RETENTION
        records = make_records(300)
        index = DistributedSTIndex(records, n_workers=2, seed=5,
                                   rs_buffer_size=16)
        worker = index.cluster.workers[0]
        rect = index.to_rect(QUERY)
        for i in range(TRACE_TALLY_RETENTION + 10):
            handle = worker.open_stream(
                rect, seed=i, trace=TraceContext(f"t{i:04d}", i))
            worker.close_stream(handle)
        assert len(worker.trace_tallies) == TRACE_TALLY_RETENTION
        assert "t0000" not in worker.trace_tallies
        assert f"t{TRACE_TALLY_RETENTION + 9:04d}" \
            in worker.trace_tallies

    def test_tallies_survive_a_crash(self):
        records = make_records(400)
        index = DistributedSTIndex(records, n_workers=2, seed=6,
                                   rs_buffer_size=16)
        worker = index.cluster.workers[0]
        rect = index.to_rect(QUERY)
        handle = worker.open_stream(rect, seed=2,
                                    trace=TraceContext("cafe", 7))
        worker.fetch_batch(handle, 4)
        worker.crash()
        assert worker.trace_tally("cafe")["batches"] == 1


class TestDistributedTrace:
    def run_session(self, records, n_workers=3):
        obs = Observability()
        index = DistributedSTIndex(records, n_workers=n_workers,
                                   seed=11, rs_buffer_size=16)
        sampler = DistributedSampler(index, batch_size=16)
        sampler.bind_observability(obs)
        session = OnlineQuerySession(
            sampler, AvgEstimator(attribute_getter("v")),
            index.to_rect(QUERY), index.lookup,
            rng=random.Random(12), report_every=32, obs=obs)
        final = session.run_to_stop(StopCondition())
        assert final.estimate.exact
        return obs, index, final

    def test_one_trace_id_spans_the_whole_query(self):
        obs, index, final = self.run_session(make_records(800))
        root = obs.tracer.roots[-1]
        assert root.name == "query"
        ids = {span.trace_id for span in root.walk()}
        assert ids == {root.trace_id}
        assert root.find("dist_fanout") is not None

    def test_worker_pulls_stitched_under_fanout(self):
        obs, index, final = self.run_session(make_records(800))
        root = obs.tracer.roots[-1]
        pulls = root.find_all("worker_pull")
        assert pulls
        assert all(p.trace_id == root.trace_id for p in pulls)
        fanout = root.find("dist_fanout")
        assert all(p in fanout.children for p in pulls)
        drawn = sum(p.attrs["draws"] for p in pulls)
        assert drawn == final.estimate.q
        assert all(p.attrs["bytes"] > 0 for p in pulls)

    def test_worker_side_tallies_match_coordinator(self):
        obs, index, final = self.run_session(make_records(800))
        root = obs.tracer.roots[-1]
        trace_id = root.trace_id
        worker_draws = sum(
            w.trace_tally(trace_id)["draws"]
            for w in index.cluster.workers)
        assert worker_draws == final.estimate.q

    def test_per_worker_draw_counters(self):
        obs, index, final = self.run_session(make_records(800))
        snap = obs.registry.snapshot()
        labelled = {k: v for k, v in snap["counters"].items()
                    if k.startswith("storm.cluster.worker.draws{")}
        assert labelled
        assert sum(labelled.values()) == final.estimate.q

    def test_explain_analyze_shows_worker_breakdown(self):
        records = make_records(900)
        obs = Observability()
        engine = StormEngine(seed=21, obs=obs)
        engine.register(DistributedDataset(
            "pts", records, n_workers=3, seed=22,
            rs_buffer_size=16, obs=obs))
        executor = QueryExecutor(engine, rng=random.Random(23),
                                 obs=obs)
        report = executor.explain_report(
            "ESTIMATE AVG(v) FROM pts WHERE REGION(10, 10, 90, 90)")
        assert "workers (trace " in report
        worker_rows = [ln for ln in report.splitlines()
                       if "draws=" in ln]
        assert len(worker_rows) >= 2
        assert all("bytes=" in ln for ln in worker_rows)

    def test_jsonl_export_carries_trace_ids(self):
        import io

        from repro.obs import write_jsonl
        obs, index, final = self.run_session(make_records(600))
        out = io.StringIO()
        write_jsonl(out, obs.tracer.drain(), registry=obs.registry)
        import json
        rows = [json.loads(line)
                for line in out.getvalue().splitlines()]
        spans = [r for r in rows if r.get("type") == "span"]
        pulls = [r for r in spans if r["name"] == "worker_pull"]
        assert pulls
        trace_ids = {r["trace_id"] for r in spans}
        assert len(trace_ids) == 1
        metrics = [r for r in rows if r.get("type") == "metrics"]
        hist = metrics[0]["histograms"]
        lat = next(v for k, v in hist.items()
                   if k.startswith("storm.sample.latency_seconds"))
        assert "p99" in lat and "buckets" in lat

    def test_session_latency_histogram_recorded(self):
        obs, index, final = self.run_session(make_records(600))
        snap = obs.registry.snapshot()
        keys = [k for k in snap["histograms"]
                if k.startswith("storm.sample.latency_seconds")]
        assert keys
        hist = snap["histograms"][keys[0]]
        assert hist["count"] >= 1
        assert hist["p99"] >= hist["p50"] >= 0.0


class TestDegradedTraceStillStitches:
    def test_failover_attributed_in_pulls(self):
        records = make_records(800)
        obs = Observability()
        index = DistributedSTIndex(records, n_workers=3, seed=31,
                                   rs_buffer_size=16, replication=2)
        sampler = DistributedSampler(index, batch_size=16)
        sampler.bind_observability(obs)
        index.cluster.crash_worker(0)
        session = OnlineQuerySession(
            sampler, AvgEstimator(attribute_getter("v")),
            index.to_rect(QUERY), index.lookup,
            rng=random.Random(32), report_every=32, obs=obs)
        final = session.run_to_stop(StopCondition())
        root = obs.tracer.roots[-1]
        pulls = root.find_all("worker_pull")
        assert pulls
        # The crashed worker's shard was served by a replica holder:
        # its pull row carries served_by and a failover count.
        failed_over = [p for p in pulls
                       if p.attrs.get("served_by") is not None]
        assert failed_over
        assert all(p.attrs["failovers"] >= 1 for p in failed_over)
        assert final.estimate.value == pytest.approx(
            sum(r.attrs["v"] for r in records if QUERY.contains(r))
            / sum(1 for r in records if QUERY.contains(r)),
            rel=0.05)


class TestRectCompat:
    def test_worker_open_stream_signature_backwards_compatible(self):
        # Positional (query, seed) callers predate the trace kwarg.
        records = make_records(200)
        index = DistributedSTIndex(records, n_workers=2, seed=41,
                                   rs_buffer_size=16)
        worker = index.cluster.workers[0]
        rect = index.to_rect(QUERY)
        assert isinstance(rect, Rect)
        handle = worker.open_stream(rect, 5)
        assert worker.fetch_batch(handle, 2) is not None
        worker.close_stream(handle)
