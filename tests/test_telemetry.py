"""Operational telemetry: quantile histograms, Prometheus text, the
live endpoint, the sampling profiler and the regression gate."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (MetricsEndpoint, MetricsRegistry,
                       SamplingProfiler, escape_label_value,
                       metric_key, profiled, render_dashboard,
                       render_prometheus)
from repro.obs.metrics import (Histogram, bucket_index,
                               bucket_upper_bound)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestLabelEscaping:
    def test_sorted_labels(self):
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"

    def test_comma_and_equals_no_longer_collide(self):
        # Regression: these two instrument identities used to render
        # to the same key.
        k1 = metric_key("m", {"a": "1,b=2"})
        k2 = metric_key("m", {"a": "1", "b": "2"})
        assert k1 != k2

    def test_escape_round_trips_distinctness(self):
        values = ["a,b", "a\\,b", "a=b", "{", "}", "a\\"]
        escaped = {escape_label_value(v) for v in values}
        assert len(escaped) == len(values)

    def test_plain_values_untouched(self):
        assert escape_label_value("osm") == "osm"
        assert escape_label_value(42) == "42"

    def test_registry_separates_tricky_labels(self):
        reg = MetricsRegistry()
        reg.counter("m", a="1,b=2").inc()
        reg.counter("m", a="1", b="2").inc(5)
        snap = reg.snapshot()
        assert len(snap["counters"]) == 2


class TestBuckets:
    def test_exact_powers_land_in_own_bucket(self):
        for i in range(-20, 21):
            bound = bucket_upper_bound(i)
            assert bucket_index(bound) == i

    def test_monotone(self):
        last = None
        for v in [0.001, 0.01, 0.5, 1.0, 1.1, 2.0, 100.0, 1e6]:
            idx = bucket_index(v)
            if last is not None:
                assert idx >= last
            last = idx

    def test_value_within_bucket_range(self):
        for v in [0.0037, 1.5, 7.2, 123.456]:
            i = bucket_index(v)
            assert bucket_upper_bound(i - 1) < v <= bucket_upper_bound(i)


class TestHistogramQuantiles:
    def test_exact_aggregates_kept(self):
        h = Histogram(clock=FakeClock())
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_quantiles_within_bucket_width(self):
        h = Histogram(clock=FakeClock())
        values = [float(i) for i in range(1, 1001)]
        for v in values:
            h.observe(v)
        # One log bucket is ~19% wide; allow that relative error.
        assert h.quantile(0.5) == pytest.approx(500, rel=0.2)
        assert h.quantile(0.9) == pytest.approx(900, rel=0.2)
        assert h.quantile(0.99) == pytest.approx(990, rel=0.2)

    def test_quantiles_clamped_to_min_max(self):
        h = Histogram(clock=FakeClock())
        h.observe(3.0)
        assert h.quantile(0.5) == 3.0
        assert h.quantile(0.99) == 3.0

    def test_non_positive_values_counted(self):
        h = Histogram(clock=FakeClock())
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(2.0)
        assert h.count == 3
        assert h.non_positive == 2
        assert h.bucket_counts()[0] == (0.0, 2)

    def test_summary_has_quantiles_and_buckets(self):
        h = Histogram(clock=FakeClock())
        for v in [0.5, 1.0, 2.0]:
            h.observe(v)
        s = h.summary()
        for key in ("count", "sum", "min", "max", "mean",
                    "p50", "p90", "p99", "buckets"):
            assert key in s
        assert sum(n for _, n in s["buckets"]) == 3

    def test_empty_summary_minimal(self):
        s = Histogram(clock=FakeClock()).summary()
        assert s == {"count": 0, "sum": 0.0}

    def test_deterministic_across_orders(self):
        a = Histogram(clock=FakeClock())
        b = Histogram(clock=FakeClock())
        values = [0.1, 5.0, 2.5, 0.9, 100.0, 3.3]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.summary() == b.summary()


class TestHistogramWindow:
    def test_window_sees_only_recent(self):
        clock = FakeClock()
        h = Histogram(clock=clock)
        h.observe(100.0)           # t=0
        clock.t = 120.0
        h.observe(1.0)             # two minutes later
        whole = h.summary()
        recent = h.window_summary(seconds=60)
        assert whole["count"] == 2
        assert recent["count"] == 1
        assert recent["max"] == 1.0

    def test_idle_window_empty(self):
        clock = FakeClock()
        h = Histogram(clock=clock)
        h.observe(5.0)
        clock.t = 1000.0
        assert h.window_summary(seconds=60)["count"] == 0

    def test_registry_window_snapshot(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.histogram("lat").observe(2.0)
        clock.t = 10.0
        reg.histogram("lat").observe(4.0)
        win = reg.window_snapshot(seconds=60)
        assert win["lat"]["count"] == 2


class TestRegistryThreadSafety:
    def test_concurrent_get_or_create_and_observe(self):
        reg = MetricsRegistry()
        errors = []

        def hammer(tid):
            try:
                for i in range(2000):
                    reg.counter("c", t=tid % 4).inc()
                    reg.histogram("h", t=tid % 4).observe(i + 1.0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap = reg.snapshot()
        assert sum(snap["counters"].values()) == 8 * 2000
        assert sum(h["count"] for h in
                   snap["histograms"].values()) == 8 * 2000

    def test_snapshot_during_writes(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                reg.counter(f"w{i % 50}").inc()
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                snap = reg.snapshot()
                assert isinstance(snap["counters"], dict)
        finally:
            stop.set()
            t.join()


class TestPrometheusRender:
    def make_registry(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.counter("storm.session.runs", sampler="rs-tree").inc(3)
        reg.gauge("storm.cluster.coverage").set(0.75)
        h = reg.histogram("storm.sample.latency_seconds",
                          sampler="rs-tree")
        for v in [0.001, 0.002, 0.004, 0.1]:
            h.observe(v)
        return reg

    def test_counter_and_gauge_lines(self):
        text = render_prometheus(self.make_registry())
        assert ('storm_session_runs_total{sampler="rs-tree"} 3'
                in text)
        assert "storm_cluster_coverage 0.75" in text

    def test_histogram_buckets_cumulative_and_inf(self):
        text = render_prometheus(self.make_registry())
        bucket_lines = [ln for ln in text.splitlines()
                        if "storm_sample_latency_seconds_bucket"
                        in ln]
        assert bucket_lines
        assert any('le="+Inf"' in ln for ln in bucket_lines)
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 4
        assert "storm_sample_latency_seconds_count" in text
        assert "storm_sample_latency_seconds_sum" in text

    def test_quantile_lines_match_registry(self):
        reg = self.make_registry()
        text = render_prometheus(reg)
        h = reg.histogram("storm.sample.latency_seconds",
                          sampler="rs-tree")
        p99 = h.quantile(0.99)
        quantile_line = [
            ln for ln in text.splitlines()
            if 'quantile="0.99"' in ln
            and ln.startswith("storm_sample_latency_seconds")]
        assert quantile_line
        assert float(quantile_line[0].rsplit(" ", 1)[1]) \
            == pytest.approx(p99)

    def test_type_headers(self):
        text = render_prometheus(self.make_registry())
        assert "# TYPE storm_session_runs_total counter" in text
        assert "# TYPE storm_cluster_coverage gauge" in text
        assert ("# TYPE storm_sample_latency_seconds histogram"
                in text)

    def test_deterministic(self):
        reg = self.make_registry()
        assert render_prometheus(reg) == render_prometheus(reg)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode()


class TestEndpoint:
    def test_metrics_routes(self):
        reg = MetricsRegistry()
        reg.counter("storm.session.runs").inc(2)
        reg.histogram("storm.sample.latency_seconds").observe(0.01)
        with MetricsEndpoint(reg, port=0) as ep:
            status, text = _get(f"{ep.url}/metrics")
            assert status == 200
            assert "storm_session_runs_total 2" in text
            assert "storm_sample_latency_seconds_bucket" in text
            status, body = _get(f"{ep.url}/metrics.json")
            doc = json.loads(body)
            assert doc["snapshot"]["counters"][
                "storm.session.runs"] == 2
            assert "window" in doc
        # After stop the port is released; a new endpoint can start.
        assert not ep.running

    def test_health_ok_and_degraded(self):
        reg = MetricsRegistry()
        state = {"status": "ok"}
        with MetricsEndpoint(reg, port=0,
                             health=lambda: dict(state)) as ep:
            status, body = _get(f"{ep.url}/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            state["status"] = "degraded"
            try:
                status, body = _get(f"{ep.url}/health")
            except urllib.error.HTTPError as err:
                status, body = err.code, err.read().decode()
            assert status == 503
            assert json.loads(body)["status"] == "degraded"

    def test_unknown_route_404(self):
        reg = MetricsRegistry()
        with MetricsEndpoint(reg, port=0) as ep:
            try:
                status, _ = _get(f"{ep.url}/nope")
            except urllib.error.HTTPError as err:
                status = err.code
            assert status == 404

    def test_http_requests_counted(self):
        reg = MetricsRegistry()
        with MetricsEndpoint(reg, port=0) as ep:
            _get(f"{ep.url}/metrics")
            _get(f"{ep.url}/metrics")
            _get(f"{ep.url}/health")
        snap = reg.snapshot()
        assert snap["counters"][
            'storm.http.requests{route=/metrics}'] == 2
        assert snap["counters"][
            'storm.http.requests{route=/health}'] == 1

    def test_quantile_on_wire_matches_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("storm.sample.latency_seconds")
        for i in range(1, 101):
            h.observe(i / 1000.0)
        with MetricsEndpoint(reg, port=0) as ep:
            _, text = _get(f"{ep.url}/metrics")
        line = [ln for ln in text.splitlines()
                if 'quantile="0.99"' in ln][0]
        assert float(line.rsplit(" ", 1)[1]) == pytest.approx(
            reg.snapshot()["histograms"][
                "storm.sample.latency_seconds"]["p99"])


def _busy(deadline_event, depth=0):
    # A recognisable frame for the profiler to catch.
    total = 0
    while not deadline_event.is_set():
        total += sum(range(200))
    return total


class TestProfiler:
    def test_profiles_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        worker.start()
        try:
            with profiled(hz=500.0) as prof:
                while prof.samples < 5:
                    pass
        finally:
            stop.set()
            worker.join()
        assert prof.samples >= 5
        assert prof.stacks
        assert any("_busy" in stack for stack in prof.stacks)

    def test_collapsed_format_and_file(self, tmp_path):
        prof = SamplingProfiler()
        prof.stacks = {"mod:a;mod:b": 3, "mod:c": 1}
        text = prof.collapsed()
        assert text.splitlines() == ["mod:a;mod:b 3", "mod:c 1"]
        out = tmp_path / "prof.collapsed"
        assert prof.write_collapsed(str(out)) == 2
        assert out.read_text() == text + "\n"

    def test_top_frames_are_leaves(self):
        prof = SamplingProfiler()
        prof.stacks = {"m:root;m:hot": 5, "m:root;m:cold": 1,
                       "m:other;m:hot": 2}
        assert prof.top_frames(1) == [("m:hot", 7)]

    def test_rejects_bad_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_stop_idempotent(self):
        prof = SamplingProfiler(hz=200.0).start()
        prof.stop()
        prof.stop()
        assert not prof.running

    def test_profiler_publishes_only_profile_metrics(self):
        reg = MetricsRegistry()
        reg.counter("storm.session.samples").inc(7)
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        worker.start()
        try:
            with profiled(hz=500.0, registry=reg) as prof:
                while prof.samples < 3:
                    pass
        finally:
            stop.set()
            worker.join()
        snap = reg.snapshot()
        # storm.* engine counters untouched; only storm.profile.*
        # appeared.
        assert snap["counters"]["storm.session.samples"] == 7
        extra = [k for k in snap["counters"]
                 if k != "storm.session.samples"]
        assert extra
        assert all(k.startswith("storm.profile.") for k in extra)


class TestDashboardQuantiles:
    def test_histogram_row_shows_quantiles(self):
        reg = MetricsRegistry(clock=FakeClock())
        h = reg.histogram("lat")
        for v in [1.0, 2.0, 4.0]:
            h.observe(v)
        text = render_dashboard(reg)
        row = [ln for ln in text.splitlines() if "lat" in ln][0]
        for token in ("p50=", "p90=", "p99=", "mean=", "count=3"):
            assert token in row

    def test_byte_stable(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        assert render_dashboard(reg) == render_dashboard(reg)
