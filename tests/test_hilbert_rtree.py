"""Unit tests for the Hilbert R-tree."""

import random

import pytest

from repro.core.geometry import Rect
from repro.errors import IndexError_
from repro.index.cost import CostCounter
from repro.index.hilbert_rtree import HilbertRTree
from repro.index.rtree import RTree

from tests.conftest import brute_force_range, make_clustered_points, \
    make_points

BOUNDS = Rect((0, 0), (100, 100))


def build(points, **kwargs) -> HilbertRTree:
    tree = HilbertRTree(2, BOUNDS, **kwargs)
    tree.bulk_load(points)
    return tree


class TestHilbertBulkLoad:
    def test_valid_and_complete(self, uniform_points):
        tree = build(uniform_points)
        tree.validate()
        assert len(tree) == len(uniform_points)

    def test_queries_match_brute_force(self, clustered_points):
        tree = build(clustered_points)
        for box in [Rect((20, 20), (70, 70)), Rect((0, 0), (5, 5)),
                    Rect((90, 90), (99, 99))]:
            got = {e.item_id for e in tree.range_query(box)}
            assert got == brute_force_range(clustered_points, box)

    def test_leaves_follow_curve_order(self, uniform_points):
        """Leaf node ids in curve order should be (near) consecutive —
        that's the locality the RS-tree relies on."""
        tree = build(uniform_points)
        leaves = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children)
        leaves.sort(key=lambda n: n.lhv)
        ids = [n.node_id for n in leaves]
        assert ids == sorted(ids)

    def test_bounds_dim_mismatch(self):
        with pytest.raises(IndexError_):
            HilbertRTree(3, BOUNDS)


class TestHilbertUpdates:
    def test_incremental_inserts(self):
        pts = make_points(700, seed=21)
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=8, branch_capacity=4)
        for pid, pt in pts:
            tree.insert(pid, pt)
        tree.validate()
        box = Rect((30, 30), (70, 70))
        got = {e.item_id for e in tree.range_query(box)}
        assert got == brute_force_range(pts, box)

    def test_insert_outside_bounds_clamps(self):
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=8, branch_capacity=4)
        tree.insert(0, (150.0, -20.0))
        tree.validate()
        assert tree.range_count(Rect((140, -30), (160, 0))) == 1

    def test_deletes(self):
        pts = make_points(500, seed=23)
        tree = build(pts, leaf_capacity=8, branch_capacity=4)
        r = random.Random(5)
        removed = set()
        for pid, pt in r.sample(pts, 200):
            assert tree.delete(pid, pt)
            removed.add(pid)
        tree.validate()
        got = {e.item_id for e in tree.iter_entries()}
        assert got == {pid for pid, _ in pts} - removed

    def test_mixed_workload(self):
        tree = HilbertRTree(2, BOUNDS, leaf_capacity=8, branch_capacity=4)
        r = random.Random(6)
        live: dict[int, tuple] = {}
        next_id = 0
        for step in range(1200):
            if live and r.random() < 0.4:
                pid = r.choice(list(live))
                assert tree.delete(pid, live.pop(pid))
            else:
                pt = (r.uniform(0, 100), r.uniform(0, 100))
                tree.insert(next_id, pt)
                live[next_id] = pt
                next_id += 1
            if step % 300 == 0:
                tree.validate()
        tree.validate()


class TestHilbertLocality:
    def test_better_scan_locality_than_random_inserted_rtree(self):
        """Range scans over the Hilbert-packed tree should be more
        sequential than over an insertion-built plain R-tree."""
        pts = make_clustered_points(4000, seed=31)
        hil = HilbertRTree(2, BOUNDS)
        hil.bulk_load(pts)
        plain = RTree(2)
        r = random.Random(7)
        shuffled = list(pts)
        r.shuffle(shuffled)
        for pid, pt in shuffled:
            plain.insert(pid, pt)
        box = Rect((20, 20), (80, 80))
        c_h, c_p = CostCounter(), CostCounter()
        hil.range_query(box, c_h)
        plain.range_query(box, c_p)
        frac_h = c_h.sequential_reads / max(1, c_h.node_reads)
        frac_p = c_p.sequential_reads / max(1, c_p.node_reads)
        assert frac_h > frac_p
