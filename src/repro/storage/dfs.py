"""Simulated distributed file system.

Files are byte sequences striped into fixed-size blocks; each block is
placed (with replication) on simulated machines round-robin, mirroring an
HDFS-style layout.  All reads and writes are tallied per machine, which is
what the distributed experiments report.

The DFS is in-memory by default; give it a root directory to also persist
file contents to real disk (the document store uses this for durability
tests).

An optional LRU *block cache* (``cache_blocks > 0``) serves repeated
block reads without charging the owning machine: hits skip the
per-machine ``BlockStats`` charges entirely and are tallied separately
in :class:`CacheStats` (plus ``storm.dfs.cache.*`` registry counters
when observability is live).  Writes and deletes invalidate a file's
cached blocks, so the cache can never serve stale bytes.  The cache is
off by default — existing experiments account raw device I/O.

With a :class:`~repro.faults.FaultPlan` attached, block reads are
*fault-gated*: a read tries the primary replica first and fails over
down the replica list, charging each failed attempt on the machine
that made it (the device did the work even though the payload was
lost; crashed machines charge nothing — the request never reached a
disk).  Failed attempts, failover-served reads and replica-exhausted
reads are tallied in :class:`FailoverStats` and the
``storm.dfs.failover.*`` counters; when every replica fails the read
raises :class:`~repro.errors.BlockReadError`.

Writes are fault-gated too: a :meth:`~repro.faults.FaultPlan.
crash_write` / :meth:`~repro.faults.FaultPlan.torn_write` schedule
kills the ``nth`` write under a file-name prefix, leaving either the
old contents (crash before any byte) or a *torn prefix* of the new
ones, and raises :class:`~repro.errors.WriteCrashError` — the injected
crash the durability layer (:mod:`repro.storage.wal`) recovers from.
:meth:`SimulatedDFS.rename_file` is the atomic commit primitive
(metadata-only, never torn): writers prepare a temp file and rename it
over the target, so readers observe either the old or the new file.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import BlockReadError, StorageError, WriteCrashError
from repro.faults import FaultPlan
from repro.obs import NULL_OBS, Observability

__all__ = ["BlockStats", "CacheStats", "FailoverStats", "SimulatedDFS"]


@dataclass
class BlockStats:
    """I/O tallies for one simulated machine."""

    blocks_read: int = 0
    blocks_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.blocks_read = 0
        self.blocks_written = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def merge(self, other: "BlockStats") -> None:
        """Fold another machine's tallies into this one."""
        self.blocks_read += other.blocks_read
        self.blocks_written += other.blocks_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written

    def snapshot(self) -> "BlockStats":
        """An independent copy of the tallies."""
        return BlockStats(self.blocks_read, self.blocks_written,
                          self.bytes_read, self.bytes_written)

    def delta_from(self, earlier: "BlockStats") -> "BlockStats":
        """Tallies accumulated since an earlier snapshot."""
        return BlockStats(
            self.blocks_read - earlier.blocks_read,
            self.blocks_written - earlier.blocks_written,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written)

    def as_dict(self) -> dict[str, int]:
        """The tallies as a plain dict (for exporters)."""
        return {"blocks_read": self.blocks_read,
                "blocks_written": self.blocks_written,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}


@dataclass
class CacheStats:
    """Block-cache tallies (hits never reach a machine's BlockStats)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def as_dict(self) -> dict[str, float]:
        """The tallies as a plain dict (for exporters)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate}


@dataclass
class FailoverStats:
    """Replica-failover tallies for fault-gated block reads."""

    #: Read attempts that failed (machine down or injected error).
    attempts: int = 0
    #: Reads ultimately served by a non-primary replica.
    reads: int = 0
    #: Reads that failed on every replica (raised BlockReadError).
    exhausted: int = 0

    def reset(self) -> None:
        self.attempts = 0
        self.reads = 0
        self.exhausted = 0

    def as_dict(self) -> dict[str, int]:
        """The tallies as a plain dict (for exporters)."""
        return {"attempts": self.attempts, "reads": self.reads,
                "exhausted": self.exhausted}


@dataclass(slots=True)
class _FileMeta:
    data: bytes
    # block index -> list of machine ids holding a replica
    placement: list[list[int]] = field(default_factory=list)


class SimulatedDFS:
    """Block-oriented file store with replication and I/O accounting."""

    def __init__(self, machines: int = 4, block_size: int = 8192,
                 replication: int = 3, root: str | None = None,
                 obs: "Observability | None" = None,
                 cache_blocks: int = 0,
                 faults: "FaultPlan | None" = None):
        if machines < 1:
            raise StorageError("need at least one machine")
        if block_size < 1:
            raise StorageError("block size must be positive")
        if not 1 <= replication <= machines:
            raise StorageError(
                "replication must be between 1 and the machine count")
        if cache_blocks < 0:
            raise StorageError("cache_blocks cannot be negative")
        self.machines = machines
        self.block_size = block_size
        self.replication = replication
        self.root = root
        self.obs = obs if obs is not None else NULL_OBS
        self.faults = faults
        self.stats = [BlockStats() for _ in range(machines)]
        self.failover = FailoverStats()
        self.cache_blocks = cache_blocks
        self.cache_stats = CacheStats()
        # LRU over (file name, block index) -> block bytes.
        self._cache: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self._files: dict[str, _FileMeta] = {}
        self._next_machine = 0
        self._stride = self._placement_stride(machines, replication)
        if root is not None:
            os.makedirs(root, exist_ok=True)
            self._load_from_root()

    def set_fault_plan(self, faults: "FaultPlan | None") -> None:
        """Attach (or detach) a fault plan after construction."""
        self.faults = faults

    # -- placement ---------------------------------------------------------

    @staticmethod
    def _placement_stride(machines: int, replication: int) -> int:
        """Primary-machine advance between consecutive blocks.

        Must be coprime with the machine count so every machine still
        hosts an equal share of primaries; preferring a stride >= the
        replication factor keeps consecutive blocks' replica *windows*
        as disjoint as the geometry allows, so one machine crash
        degrades scattered blocks instead of replica-0 of a long run.
        """
        if machines == 1:
            return 1
        want = max(replication, 2)
        for stride in range(want, want + machines):
            if math.gcd(stride, machines) == 1:
                return stride % machines
        return 1  # unreachable: some value in any n consecutive is coprime

    def _place_block(self) -> list[int]:
        replicas = []
        for i in range(self.replication):
            replicas.append((self._next_machine + i) % self.machines)
        self._next_machine = (self._next_machine
                              + self._stride) % self.machines
        return replicas

    def _disk_path(self, name: str) -> str:
        assert self.root is not None
        safe = name.replace("/", "__")
        return os.path.join(self.root, safe)

    def _load_from_root(self) -> None:
        assert self.root is not None
        for fname in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, fname)
            if not os.path.isfile(path):
                continue
            with open(path, "rb") as f:
                data = f.read()
            name = fname.replace("__", "/")
            meta = _FileMeta(data=data)
            for _ in range(self._block_count(len(data))):
                meta.placement.append(self._place_block())
            self._files[name] = meta

    def _block_count(self, size: int) -> int:
        return max(1, -(-size // self.block_size))

    # -- block cache -------------------------------------------------------

    def _cache_get(self, name: str, block: int) -> bytes | None:
        """Cached block bytes, or None on a miss (tallies either way)."""
        if self.cache_blocks == 0:
            return None
        data = self._cache.get((name, block))
        registry = self.obs.registry
        if data is not None:
            self._cache.move_to_end((name, block))
            self.cache_stats.hits += 1
            if registry.enabled:
                registry.counter("storm.dfs.cache.hits").inc()
            return data
        self.cache_stats.misses += 1
        if registry.enabled:
            registry.counter("storm.dfs.cache.misses").inc()
        return None

    def _cache_put(self, name: str, block: int, data: bytes) -> None:
        """Admit a block, evicting least-recently-used past capacity."""
        if self.cache_blocks == 0:
            return
        self._cache[(name, block)] = data
        self._cache.move_to_end((name, block))
        evicted = 0
        while len(self._cache) > self.cache_blocks:
            self._cache.popitem(last=False)
            evicted += 1
        if evicted:
            self.cache_stats.evictions += evicted
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.dfs.cache.evictions").inc(
                    evicted)

    def _cache_invalidate(self, name: str) -> None:
        """Drop every cached block of a file (writes and deletes)."""
        if not self._cache:
            return
        stale = [key for key in self._cache if key[0] == name]
        for key in stale:
            del self._cache[key]

    # -- fault gating ------------------------------------------------------

    def _serve_block(self, name: str, block: int,
                     replicas: list[int], nbytes: int) -> int:
        """The machine that serves a block read, walking the replica
        list on faults.

        Without a fault plan this is always the primary.  With one,
        each attempt advances the plan's clock; a failed attempt on a
        *live* machine still charges that machine's ``BlockStats`` (the
        device performed the read — the payload was lost), while a
        crashed machine charges nothing.  Raises
        :class:`~repro.errors.BlockReadError` when every replica fails.
        """
        plan = self.faults
        if plan is None:
            return replicas[0]
        registry = self.obs.registry
        for position, machine in enumerate(replicas):
            plan.tick()
            if plan.is_down(f"machine:{machine}"):
                self.failover.attempts += 1
                if registry.enabled:
                    registry.counter(
                        "storm.dfs.failover.attempts").inc()
                continue
            if plan.should_fail("dfs.read"):
                self.failover.attempts += 1
                self.stats[machine].blocks_read += 1
                self.stats[machine].bytes_read += nbytes
                if registry.enabled:
                    registry.counter(
                        "storm.dfs.failover.attempts").inc()
                continue
            if position:
                self.failover.reads += 1
                if registry.enabled:
                    registry.counter("storm.dfs.failover.reads").inc()
            return machine
        self.failover.exhausted += 1
        if registry.enabled:
            registry.counter("storm.dfs.failover.exhausted").inc()
        raise BlockReadError(
            f"block {block} of {name!r}: all {len(replicas)} replicas "
            f"failed at tick {plan.now}")

    # -- file operations -----------------------------------------------------

    def write_file(self, name: str, data: bytes,
                   _preserve: int = 0) -> None:
        """Create or replace a file (charges writes on every replica).

        ``_preserve`` marks a prefix of ``data`` that is *old* content
        (appends pass the existing length): an injected torn write
        never loses preserved bytes, only a suffix of the new ones —
        mirroring how a real append tears.  Raises
        :class:`~repro.errors.WriteCrashError` when a scheduled write
        fault fires.
        """
        if not name:
            raise StorageError("file name cannot be empty")
        plan = self.faults
        if plan is not None:
            fault = plan.take_write_fault(name)
            if fault is not None:
                plan.tick()
                registry = self.obs.registry
                if registry.enabled:
                    registry.counter("storm.dfs.write_crashes").inc()
                if fault.keep_fraction is None:
                    raise WriteCrashError(
                        f"injected crash before write of {name!r} "
                        f"at tick {plan.now}")
                preserve = min(_preserve, len(data))
                keep = preserve + int(fault.keep_fraction
                                      * (len(data) - preserve))
                self._commit_write(name, data[:keep])
                raise WriteCrashError(
                    f"injected torn write of {name!r}: kept {keep} of "
                    f"{len(data)} bytes at tick {plan.now}")
        self._commit_write(name, data)

    def _commit_write(self, name: str, data: bytes) -> None:
        """Apply a write that survived fault gating."""
        meta = _FileMeta(data=data)
        n_blocks = self._block_count(len(data))
        written_blocks = written_bytes = 0
        for i in range(n_blocks):
            replicas = self._place_block()
            meta.placement.append(replicas)
            chunk = len(data[i * self.block_size:(i + 1)
                             * self.block_size])
            for m in replicas:
                self.stats[m].blocks_written += 1
                self.stats[m].bytes_written += chunk
                written_blocks += 1
                written_bytes += chunk
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.dfs.blocks_written").inc(
                written_blocks)
            registry.counter("storm.dfs.bytes_written").inc(
                written_bytes)
        self._cache_invalidate(name)
        self._files[name] = meta
        if self.root is not None:
            with open(self._disk_path(name), "wb") as f:
                f.write(data)

    def append_file(self, name: str, data: bytes) -> None:
        """Append bytes (new blocks placed fresh, existing untouched).

        An injected torn write can only lose a suffix of the appended
        bytes — the pre-existing contents always survive."""
        if name not in self._files:
            self.write_file(name, data)
            return
        old = self._files[name].data
        self.write_file(name, old + data, _preserve=len(old))

    def rename_file(self, old: str, new: str) -> None:
        """Atomically rename a file, replacing any existing target.

        This is the durability layer's commit primitive: it is
        metadata-only (no block I/O is charged, the placed blocks move
        with the file) and is deliberately *not* fault-gated — a
        rename either happens or it doesn't, it cannot tear.  Writers
        that need atomic replacement write ``name + ".tmp"`` and
        rename it over ``name``.
        """
        if not new:
            raise StorageError("file name cannot be empty")
        meta = self._get(old)
        self._cache_invalidate(old)
        self._cache_invalidate(new)
        del self._files[old]
        self._files[new] = meta
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.dfs.renames").inc()
        if self.root is not None:
            os.replace(self._disk_path(old), self._disk_path(new))

    def read_file(self, name: str) -> bytes:
        """Read a whole file (charges one replica per uncached block —
        the primary, or a failover replica under an active fault
        plan)."""
        meta = self._get(name)
        device_blocks = device_bytes = 0
        for i, replicas in enumerate(meta.placement):
            chunk = meta.data[i * self.block_size:(i + 1)
                              * self.block_size]
            if self._cache_get(name, i) is not None:
                continue
            m = self._serve_block(name, i, replicas, len(chunk))
            self.stats[m].blocks_read += 1
            self.stats[m].bytes_read += len(chunk)
            device_blocks += 1
            device_bytes += len(chunk)
            self._cache_put(name, i, chunk)
        registry = self.obs.registry
        if registry.enabled and device_blocks:
            registry.counter("storm.dfs.blocks_read").inc(device_blocks)
            registry.counter("storm.dfs.bytes_read").inc(device_bytes)
        return meta.data

    def read_block(self, name: str, block: int) -> bytes:
        """Read one block of a file (charges its primary replica on a
        cache miss — failing over down the replica list when a fault
        plan takes machines out; hits never touch a machine)."""
        meta = self._get(name)
        if not 0 <= block < len(meta.placement):
            raise StorageError(
                f"block {block} out of range for {name!r}")
        cached = self._cache_get(name, block)
        if cached is not None:
            return cached
        data = meta.data[block * self.block_size:(block + 1)
                         * self.block_size]
        m = self._serve_block(name, block, meta.placement[block],
                              len(data))
        self.stats[m].blocks_read += 1
        self.stats[m].bytes_read += len(data)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.dfs.blocks_read").inc()
            registry.counter("storm.dfs.bytes_read").inc(len(data))
        self._cache_put(name, block, data)
        return data

    def delete_file(self, name: str) -> None:
        """Remove a file (error when absent)."""
        self._get(name)
        self._cache_invalidate(name)
        del self._files[name]
        if self.root is not None:
            path = self._disk_path(name)
            if os.path.exists(path):
                os.remove(path)

    def exists(self, name: str) -> bool:
        """Whether a file exists."""
        return name in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        """Sorted file names with the given prefix."""
        return sorted(n for n in self._files if n.startswith(prefix))

    def file_size(self, name: str) -> int:
        """File length in bytes."""
        return len(self._get(name).data)

    def block_count(self, name: str) -> int:
        """Number of blocks a file occupies."""
        return len(self._get(name).placement)

    def _get(self, name: str) -> _FileMeta:
        meta = self._files.get(name)
        if meta is None:
            raise StorageError(f"no such file: {name!r}")
        return meta

    # -- accounting ----------------------------------------------------------

    def total_stats(self) -> BlockStats:
        """All machines' tallies merged into one fresh
        :class:`BlockStats` (callers should use this instead of
        hand-summing ``dfs.stats``).  The returned object is an
        independent snapshot, so it also binds directly to trace spans
        (``tracer.span(..., io=dfs.total_stats)``)."""
        total = BlockStats()
        for s in self.stats:
            total.merge(s)
        return total

    def total_blocks_read(self) -> int:
        """Blocks read across all machines."""
        return self.total_stats().blocks_read

    def total_blocks_written(self) -> int:
        """Blocks written across all machines (replicas included)."""
        return self.total_stats().blocks_written

    def reset_stats(self) -> None:
        """Zero every machine's I/O tallies (and the failover ones)."""
        for s in self.stats:
            s.reset()
        self.failover.reset()

    def balance(self) -> float:
        """Storage balance: max/mean blocks written per machine (1.0 is
        perfectly balanced)."""
        written = [s.blocks_written for s in self.stats]
        mean = sum(written) / len(written)
        if mean == 0:
            return 1.0
        return max(written) / mean
