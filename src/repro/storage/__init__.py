"""Storage engine substrate.

The paper's STORM "builds on a cluster of commodity machines ... uses a DFS
(distributed file system) as its storage engine" and keeps records as JSON
documents in a distributed MongoDB.  This package reproduces that stack in
simulation:

``dfs``
    A block-oriented simulated DFS: named files striped into fixed-size
    blocks across simulated machines, with replication and per-machine I/O
    accounting.  Optionally persists to a local directory.
``document_store``
    An embedded JSON document store with Mongo-style filter queries,
    persisted as JSON-lines files on the DFS.
``json_codec``
    The paper's "free data module": conversion between arbitrary source
    record formats and the JSON document format.
``catalog``
    Metadata about imported/indexed datasets, itself stored as documents.
``wal``
    A checksummed, segment-based write-ahead log on the DFS: the commit
    point of every update batch, with atomic checkpoints and torn-tail
    detection.
``recovery``
    The crash-recovery driver: truncate torn WAL tails, replay
    committed-but-unflushed batches, report a ``RecoveryReport``.
``lsm``
    The tiered ingest path: WAL-backed memtable, sealed immutable
    runs (mini RS-trees, committed by temp-write + rename) and
    compaction into the main tree, with snapshot-pinned sampling.
"""

from repro.storage.catalog import Catalog, DatasetInfo
from repro.storage.dfs import BlockStats, SimulatedDFS
from repro.storage.document_store import Collection, DocumentStore
from repro.storage.json_codec import (canonical_json,
                                      documents_to_records,
                                      records_to_documents,
                                      rows_to_documents)
from repro.storage.lsm import LSMTree, Memtable, SealedRun
from repro.storage.recovery import (RecoveryReport, checkpoint_store,
                                    recover_store)
from repro.storage.wal import TornTail, WalRecord, WriteAheadLog

__all__ = [
    "BlockStats",
    "Catalog",
    "Collection",
    "DatasetInfo",
    "DocumentStore",
    "LSMTree",
    "Memtable",
    "RecoveryReport",
    "SealedRun",
    "SimulatedDFS",
    "TornTail",
    "WalRecord",
    "WriteAheadLog",
    "canonical_json",
    "checkpoint_store",
    "documents_to_records",
    "records_to_documents",
    "recover_store",
    "rows_to_documents",
]
