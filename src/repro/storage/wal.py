"""Checksummed, segment-based write-ahead log on the simulated DFS.

STORM's update manager mutates three places — the in-memory indexes,
the document store, and (on flush) the DFS files.  None of those
mutations is durable by itself, so a crash mid-batch loses or tears
state.  The WAL fixes the contract: every batch is appended here
*first*, and the append returning is the commit point.  Recovery
(:mod:`repro.storage.recovery`) replays committed-but-unflushed
batches on top of the last checkpoint and discards torn tails.

Layout
------

The log lives under a DFS prefix (``wal/`` by default) as numbered
segment files (``wal/00000001.seg`` ...).  A segment is a sequence of
framed records::

    +----------------+----------------+------------------------+
    | length (4B BE) | CRC32 (4B BE)  | payload (JSON, length) |
    +----------------+----------------+------------------------+

The payload is one canonical-JSON object carrying a monotonically
increasing ``lsn`` and a ``type``:

``batch``
    One update batch: ``collection``, ``dataset``, ``deletes`` (ids)
    and ``inserts`` (documents).  Deletes are recorded — and replayed —
    before inserts, so a delete+reinsert of the same id is a replace.
``checkpoint``
    A flush-commit marker: every effect up to ``checkpoint_lsn`` is
    durably in the document store, so replay may start after it and
    fully covered segments may be pruned.

A torn tail (truncated header, short payload, CRC mismatch,
undecodable JSON, or an LSN regression) marks the *end of the valid
log*: scanning stops there, and :meth:`WriteAheadLog.truncate_torn`
physically discards the damage.  Appending to a log with a known-torn
tail raises :class:`~repro.errors.WalError` — run recovery first.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import WalError, WriteCrashError
from repro.obs import NULL_OBS, Observability
from repro.storage.dfs import SimulatedDFS
from repro.storage.json_codec import canonical_json

__all__ = ["WalRecord", "TornTail", "WriteAheadLog", "WAL_PREFIX"]

WAL_PREFIX = "wal/"

#: Record framing: payload length + CRC32 of the payload, big-endian.
_HEADER = struct.Struct(">II")


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One decoded, checksum-verified log record."""

    lsn: int
    type: str
    payload: dict[str, Any]
    segment: str
    nbytes: int


@dataclass(frozen=True, slots=True)
class TornTail:
    """Where a scan stopped trusting the log, and what it would cut."""

    segment: str
    offset: int
    bytes_discarded: int
    reason: str


class WriteAheadLog:
    """Append-only, CRC-framed redo log over :class:`SimulatedDFS`.

    ``segment_bytes`` is a soft roll threshold: a segment that has
    reached it is closed and the next append opens a fresh one, which
    bounds the cost of tail truncation and lets checkpoints prune
    whole files.
    """

    def __init__(self, dfs: SimulatedDFS, segment_bytes: int = 65536,
                 prefix: str = WAL_PREFIX,
                 obs: Observability | None = None):
        if segment_bytes < 1:
            raise WalError("segment_bytes must be positive")
        if not prefix:
            raise WalError("WAL prefix cannot be empty")
        self.dfs = dfs
        self.segment_bytes = segment_bytes
        self.prefix = prefix
        self.obs = obs if obs is not None else NULL_OBS
        #: Highest LSN durably appended (0 before any append).
        self.last_lsn = 0
        #: ``checkpoint_lsn`` of the newest checkpoint record seen.
        self.checkpoint_lsn = 0
        self._next_segment_index = 1
        # segment name -> (first LSN, last LSN) for pruning.
        self._segment_lsns: dict[str, tuple[int, int]] = {}
        self._torn: TornTail | None = None
        self._bootstrap()

    # -- scanning ----------------------------------------------------------

    def segments(self) -> list[str]:
        """Sorted segment file names currently on the DFS."""
        return self.dfs.list_files(self.prefix)

    def scan(self) -> tuple[list[WalRecord], TornTail | None]:
        """Every valid record in LSN order, plus the torn tail (if
        any).  Scanning stops at the first frame that fails length,
        CRC, JSON or LSN-monotonicity checks; everything from that
        offset on (including later segments) counts as discarded."""
        records: list[WalRecord] = []
        segs = self.segments()
        last_lsn = 0
        for i, seg in enumerate(segs):
            data = self.dfs.read_file(seg)
            offset = 0
            reason = None
            while offset < len(data):
                if len(data) - offset < _HEADER.size:
                    reason = "truncated header"
                    break
                length, crc = _HEADER.unpack_from(data, offset)
                payload = data[offset + _HEADER.size:
                               offset + _HEADER.size + length]
                if len(payload) < length:
                    reason = "truncated payload"
                    break
                if zlib.crc32(payload) != crc:
                    reason = "CRC mismatch"
                    break
                try:
                    obj = json.loads(payload)
                    lsn = int(obj["lsn"])
                    rtype = str(obj["type"])
                except (ValueError, KeyError, TypeError):
                    reason = "undecodable payload"
                    break
                if lsn <= last_lsn:
                    reason = "LSN regression"
                    break
                last_lsn = lsn
                nbytes = _HEADER.size + length
                records.append(WalRecord(lsn=lsn, type=rtype,
                                         payload=obj, segment=seg,
                                         nbytes=nbytes))
                offset += nbytes
            if reason is not None:
                discarded = len(data) - offset
                discarded += sum(self.dfs.file_size(later)
                                 for later in segs[i + 1:])
                return records, TornTail(segment=seg, offset=offset,
                                         bytes_discarded=discarded,
                                         reason=reason)
        return records, None

    def truncate_torn(self) -> TornTail | None:
        """Physically discard the torn tail (no-op on a clean log).

        The damaged segment is rewritten up to its last valid record
        (deleted outright when nothing valid precedes the tear), and
        every later segment is deleted.  After truncation the log is
        clean and appendable again."""
        records, torn = self.scan()
        if torn is not None:
            segs = self.segments()
            cut = segs.index(torn.segment)
            if torn.offset == 0:
                self.dfs.delete_file(torn.segment)
            else:
                data = self.dfs.read_file(torn.segment)
                self.dfs.write_file(torn.segment, data[:torn.offset])
            for later in segs[cut + 1:]:
                self.dfs.delete_file(later)
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.wal.truncations").inc()
                registry.counter("storm.wal.bytes_truncated").inc(
                    torn.bytes_discarded)
        self._rebuild_state(records)
        return torn

    def _bootstrap(self) -> None:
        """Adopt whatever log is already on the DFS (crash restart)."""
        records, torn = self.scan()
        self._rebuild_state(records)
        self._torn = torn

    def _rebuild_state(self, records: list[WalRecord]) -> None:
        self._torn = None
        self._segment_lsns = {}
        self.last_lsn = 0
        self.checkpoint_lsn = 0
        for rec in records:
            self.last_lsn = rec.lsn
            first, _ = self._segment_lsns.get(rec.segment,
                                              (rec.lsn, rec.lsn))
            self._segment_lsns[rec.segment] = (first, rec.lsn)
            if rec.type == "checkpoint":
                self.checkpoint_lsn = int(
                    rec.payload.get("checkpoint_lsn", 0))
        indices = [int(name[len(self.prefix):].split(".")[0])
                   for name in self.segments()]
        self._next_segment_index = max(indices, default=0) + 1

    @property
    def torn(self) -> TornTail | None:
        """The torn tail detected at construction (None once clean)."""
        return self._torn

    # -- appending ---------------------------------------------------------

    def _segment_name(self, index: int) -> str:
        return f"{self.prefix}{index:08d}.seg"

    def _current_segment(self) -> str:
        """The segment the next record lands in (rolling on size)."""
        segs = self.segments()
        if segs:
            tail = segs[-1]
            if self.dfs.file_size(tail) < self.segment_bytes:
                return tail
        name = self._segment_name(self._next_segment_index)
        self._next_segment_index += 1
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.wal.segments_opened").inc()
        return name

    def append(self, record_type: str,
               fields: Mapping[str, Any]) -> int:
        """Frame, checksum and durably append one record; its LSN.

        The append returning *is* the commit point: a crash afterwards
        can always be recovered from the log, a crash during the write
        (a :class:`~repro.errors.WriteCrashError` from the DFS) leaves
        the record uncommitted and the log torn — this WAL object then
        refuses further appends until :meth:`truncate_torn`.
        """
        if self._torn is not None:
            raise WalError(
                f"WAL tail is torn ({self._torn.reason} in "
                f"{self._torn.segment!r}); run recovery before "
                f"appending")
        lsn = self.last_lsn + 1
        obj = {"lsn": lsn, "type": record_type, **fields}
        payload = canonical_json(obj).encode()
        frame = _HEADER.pack(len(payload),
                             zlib.crc32(payload)) + payload
        segment = self._current_segment()
        try:
            self.dfs.append_file(segment, frame)
        except WriteCrashError:
            # The simulated process died mid-append; the segment may
            # hold a torn prefix of this frame.  Poison this handle so
            # a buggy caller cannot keep appending after the tear.
            self._torn = TornTail(segment=segment, offset=-1,
                                  bytes_discarded=0,
                                  reason="crashed append")
            raise
        self.last_lsn = lsn
        first, _ = self._segment_lsns.get(segment, (lsn, lsn))
        self._segment_lsns[segment] = (first, lsn)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.wal.appends").inc()
            registry.counter("storm.wal.bytes_appended").inc(len(frame))
            registry.counter(f"storm.wal.records.{record_type}").inc()
        return lsn

    def append_batch(self, collection: str, deletes: Iterable[int],
                     inserts: Iterable[Mapping[str, Any]],
                     dataset: str | None = None) -> int:
        """Log one update batch (the commit point of an update).

        Deletes are recorded before inserts and replay applies them in
        that order, so a batch deleting and re-inserting the same id
        is durably a *replace*."""
        return self.append("batch", {
            "collection": collection,
            "dataset": dataset,
            "deletes": [int(i) for i in deletes],
            "inserts": [dict(d) for d in inserts],
        })

    def append_checkpoint(self, checkpoint_lsn: int) -> int:
        """Log a flush-commit marker: all effects up to
        ``checkpoint_lsn`` are durable in the document store."""
        lsn = self.append("checkpoint",
                          {"checkpoint_lsn": int(checkpoint_lsn)})
        self.checkpoint_lsn = int(checkpoint_lsn)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.wal.checkpoints").inc()
        return lsn

    # -- maintenance -------------------------------------------------------

    def prune(self, upto_lsn: int) -> int:
        """Delete segments whose every record has LSN <= ``upto_lsn``
        (they are fully covered by a checkpoint); how many went.

        The newest segment is always kept so the log retains its
        checkpoint marker and the LSN high-water mark across
        restarts."""
        segs = self.segments()
        pruned = 0
        for seg in segs[:-1]:
            span = self._segment_lsns.get(seg)
            if span is not None and span[1] <= upto_lsn:
                self.dfs.delete_file(seg)
                self._segment_lsns.pop(seg, None)
                pruned += 1
        registry = self.obs.registry
        if registry.enabled and pruned:
            registry.counter("storm.wal.segments_pruned").inc(pruned)
        return pruned

    def size_bytes(self) -> int:
        """Total bytes the log currently occupies on the DFS."""
        return sum(self.dfs.file_size(s) for s in self.segments())

    def __repr__(self) -> str:
        return (f"<WriteAheadLog prefix={self.prefix!r} "
                f"segments={len(self.segments())} "
                f"last_lsn={self.last_lsn} "
                f"checkpoint_lsn={self.checkpoint_lsn}"
                f"{' TORN' if self._torn else ''}>")
