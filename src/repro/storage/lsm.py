"""LSM-style tiered ingest path over the WAL.

STORM's "management" story is sustained heavy ingest (the live Twitter
and MesoWest firehoses) concurrent with online sampling.  Inserting
records one-by-one into the R-tree bumps its structural version on
every record, which nukes the canonical-set cache and invalidates
in-flight sample streams — exactly what a firehose workload thrashes.
This module layers a tiered, log-structured index on top of the PR 5
durability stack, adapting the hybrid tiered design of "A hybrid index
model for efficient spatio-temporal search in HBase" to sampling:

**Memtable** — new records land in a small in-memory buffer kept in
Hilbert-key order.  No tree mutation, no version bump: an insert is a
dict put plus a sorted-list insertion.

**Sealed runs** — a full memtable is *sealed* into an immutable run:
its records are bulk-loaded into a mini RS-tree (so the run is itself
a sampling-ready index) and flushed to the DFS with the temp-write +
``rename_file`` commit primitive.  A ``MANIFEST.json`` (also committed
by rename) names the live runs, the persisted tombstones and the WAL
LSN from which replay must resume.

**Compaction** — sealed runs and tombstones fold into the main tree in
one atomic swap (a single bulk load = one version bump for thousands
of records), the manifest empties, and — via the update manager's
checkpoint — covered WAL segments are pruned.

**Snapshots** — a sample stream pins the tiers it opened with: the
main tree's canonical set, the list of sealed runs, a frozen copy of
the memtable's in-range records and the tombstone map
(:class:`~repro.core.sampling.tiered.TieredSampler` builds these).
Because sealed runs are immutable and a compaction *replaces* the main
tree's node graph rather than mutating it, pinned snapshots survive
both sealing and compaction: concurrent ingest never invalidates an
in-flight stream, and the canonical-set cache stays hot between
compactions.

Deletes are routed by residence tier: a memtable-resident record is
removed in place; a run- or main-resident record gets a *tombstone*
tagged with the tier that holds the dead copy.  Samplers filter drawn
entries against the tombstones of their own tier, which keeps the
merged stream exactly uniform over the live set (rejecting a fixed
subset of a uniform without-replacement stream is itself uniform
without replacement over the remainder).

Crash recovery (:meth:`LSMTree.open` on a recovered store) rebuilds
runs from the manifest, replays committed WAL batches **into the
memtable** (not the main tree), and bulk-loads the main tree from the
remaining live records — see ``docs/architecture.md`` ("Tiered ingest
& snapshots") for the torn-state analysis at each crash point.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

from repro.core.blocks import RecordBlock, is_block_payload
from repro.core.records import Record
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.errors import StorageError
from repro.index.hilbert_rtree import HilbertRTree
from repro.storage.json_codec import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import Dataset
    from repro.core.geometry import Rect
    from repro.storage.dfs import SimulatedDFS
    from repro.storage.wal import WriteAheadLog

__all__ = ["Memtable", "SealedRun", "LSMTree", "LSM_PREFIX",
           "MAIN_TIER"]

LSM_PREFIX = "lsm/"

#: Tombstone victim tag for the main tree (runs use their integer id).
MAIN_TIER = "main"


class Memtable:
    """In-memory ingest buffer: a plain insertion-order dict.

    An insert is one dict put — this is what makes the tiered path
    fast, so nothing else happens here.  Hilbert ordering is deferred
    to the seal, whose bulk load batch-encodes and sorts the whole
    buffer at once (far cheaper than keeping the buffer sorted with a
    per-insert scalar encode + ``insort``).
    """

    __slots__ = ("records", "_dims")

    def __init__(self, dims: int):
        self.records: dict[int, Record] = {}
        self._dims = dims

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self.records

    def insert(self, record: Record) -> None:
        if record.record_id in self.records:
            raise StorageError(
                f"record {record.record_id} already in memtable")
        self.records[record.record_id] = record

    def remove(self, record_id: int) -> Record | None:
        return self.records.pop(record_id, None)

    def in_range(self, rect: "Rect") -> list[Record]:
        """Live memtable records inside the query rect."""
        dims = self._dims
        return [r for r in self.records.values()
                if rect.contains_point(r.key(dims))]

    def clear(self) -> None:
        self.records.clear()


class SealedRun:
    """An immutable sealed memtable: a sampling-ready mini RS-tree.

    Runs never change after sealing; a tombstone tagged with this
    run's id masks a dead copy inside it until compaction retires the
    whole run.

    The mini tree and its sampler materialise on first query, not at
    seal time.  Sealing is on the ingest hot path and many runs are
    compacted before any query touches them — those never pay for an
    index build at all, and the ones that are queried pay a small
    one-off (bounded by the memtable limit) folded into that query's
    latency.
    """

    __slots__ = ("run_id", "records", "file", "_bounds", "_dims",
                 "_bits", "_rs_buffer_size", "_rng", "_tree",
                 "_sampler")

    def __init__(self, run_id: int, records: Iterable[Record],
                 bounds: "Rect", dims: int, bits: int = 16,
                 rs_buffer_size: int = 32, rng=None,
                 file: str | None = None):
        self.run_id = run_id
        self.records: dict[int, Record] = {
            r.record_id: r for r in records}
        self._bounds = bounds
        self._dims = dims
        self._bits = bits
        self._rs_buffer_size = rs_buffer_size
        self._rng = rng
        self._tree: HilbertRTree | None = None
        self._sampler: RSTreeSampler | None = None
        self.file = file

    @property
    def tree(self) -> HilbertRTree:
        """The run's mini Hilbert R-tree, bulk-loaded on first use."""
        if self._tree is None:
            tree = HilbertRTree(self._dims, self._bounds,
                                bits=self._bits)
            tree.bulk_load((r.record_id, r.key(self._dims))
                           for r in self.records.values())
            self._tree = tree
        return self._tree

    @property
    def sampler(self) -> RSTreeSampler:
        """The run's RS-tree sampler, prepared on first use."""
        if self._sampler is None:
            self._sampler = RSTreeSampler(
                self.tree, buffer_size=self._rs_buffer_size,
                rng=self._rng)
            self._sampler.prepare()
        return self._sampler

    def __len__(self) -> int:
        return len(self.records)

    def range_count(self, rect: "Rect") -> int:
        """Entries inside the rect (including tombstone-masked ones —
        the snapshot subtracts its own mask counts)."""
        return self.tree.range_count(rect)

    def to_payload(self) -> bytes:
        """Serialised run file contents (columnar block wire format).

        One :class:`~repro.core.blocks.RecordBlock` per run: packed
        id/lon/lat/t columns plus the JSON attrs side-table, ~5-10x
        denser than the per-record JSON documents it replaced.
        Restores still accept the legacy JSON layout (see
        ``LSMTree._restore_runs``), so pre-existing run files load.
        """
        block = RecordBlock.from_records(
            self.records[rid] for rid in sorted(self.records))
        return block.encode(meta={"run_id": self.run_id})


class LSMTree:
    """Coordinator of the tiered ingest path for one dataset.

    Attach with :meth:`LSMTree.open`; afterwards the dataset routes
    ``insert``/``delete`` here instead of mutating the main tree, and
    ``Dataset.sampler_for`` answers every query with the snapshot-
    pinned :class:`~repro.core.sampling.tiered.TieredSampler`.

    Parameters
    ----------
    dataset:
        The owning :class:`~repro.core.engine.Dataset`.
    dfs / prefix:
        Where runs and the manifest persist (``None`` keeps the tiers
        purely in memory — placement is then reconstructed from the
        WAL alone after a crash).
    wal:
        The write-ahead log whose LSNs stamp the manifest.  The LSM
        never appends to it — the update manager's batch append is
        still the single commit point.
    memtable_limit:
        Seal threshold: an insert that fills the memtable to this size
        seals it into a run.
    compact_after_runs:
        ``should_compact()`` turns true once this many sealed runs
        accumulate (the update manager checkpoints, then compacts).
    """

    def __init__(self, dataset: "Dataset",
                 dfs: "SimulatedDFS | None" = None,
                 wal: "WriteAheadLog | None" = None,
                 prefix: str = LSM_PREFIX,
                 memtable_limit: int = 1024,
                 compact_after_runs: int = 4,
                 run_buffer_size: int = 32):
        if memtable_limit < 1:
            raise StorageError("memtable_limit must be >= 1")
        if compact_after_runs < 1:
            raise StorageError("compact_after_runs must be >= 1")
        if not prefix:
            raise StorageError("LSM prefix cannot be empty")
        self.dataset = dataset
        self.dfs = dfs
        self.wal = wal
        self.prefix = prefix
        self.memtable_limit = memtable_limit
        self.compact_after_runs = compact_after_runs
        self.run_buffer_size = run_buffer_size
        self.obs = dataset.obs
        self.memtable = Memtable(dataset.dims)
        self.runs: list[SealedRun] = []
        #: record id -> run id holding its live copy.
        self._run_of: dict[int, int] = {}
        #: record id -> {tier: key of the dead copy it masks}.  Tiers
        #: are :data:`MAIN_TIER` or an integer run id.
        self.tombstones: dict[int, dict[object, tuple]] = {}
        self._next_run_id = 1
        #: LSN of the last fully applied batch (the update manager
        #: advances it); seals stamp it into the manifest so replay
        #: never splits a batch between a run and the memtable.
        self.applied_lsn = 0
        #: Manifest replay origin: WAL batches with LSN above this are
        #: replayed into the memtable on recovery.
        self.replay_lsn = 0
        self.seals = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # attach / recover
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, dataset: "Dataset",
             dfs: "SimulatedDFS | None" = None,
             wal: "WriteAheadLog | None" = None,
             prefix: str = LSM_PREFIX, **kwargs) -> "LSMTree":
        """Attach a tiered ingest path to a dataset, recovering tiers.

        On a fresh dataset this is a cheap attach.  On a restart after
        a crash (the dataset rebuilt from a recovered document store)
        it is the LSM half of recovery: load the manifest, rebuild the
        sealed runs from their files, replay committed WAL batches
        above the manifest's replay LSN **into the memtable**, carve
        the run- and memtable-resident records out of the main tree
        with one bulk load, and sweep orphan files from interrupted
        seals.  Every crash point of seal/flush/compact lands in a
        state this procedure repairs (see the crash-matrix suite).
        """
        lsm = cls(dataset, dfs=dfs, wal=wal, prefix=prefix, **kwargs)
        manifest = lsm._load_manifest()
        if manifest is not None:
            lsm._restore_runs(manifest)
            if wal is not None:
                lsm._replay_wal_tail()
        elif wal is not None:
            # No manifest: nothing ever reached an LSM tier, so every
            # committed WAL record is already applied conventionally
            # (the dataset's own bulk load covers it).  Replaying the
            # log into the memtable would double-place those records.
            lsm.replay_lsn = lsm.applied_lsn = wal.last_lsn
        if lsm.runs or lsm.memtable.records:
            lsm._rebuild_main_tier()
        lsm._sweep_orphans(manifest)
        dataset.attach_lsm(lsm)
        lsm._publish_gauges()
        return lsm

    def _manifest_name(self) -> str:
        return self.prefix + "MANIFEST.json"

    def _run_file_name(self, run_id: int) -> str:
        return f"{self.prefix}run-{run_id:08d}.run"

    def _load_manifest(self) -> dict | None:
        if self.dfs is None or not self.dfs.exists(self._manifest_name()):
            return None
        try:
            manifest = json.loads(self.dfs.read_file(
                self._manifest_name()))
        except ValueError as exc:
            raise StorageError(f"corrupt LSM manifest: {exc}")
        self.replay_lsn = int(manifest.get("replay_lsn", 0))
        self.applied_lsn = self.replay_lsn
        self._next_run_id = int(manifest.get("next_run_id", 1))
        return manifest

    def _restore_runs(self, manifest: dict) -> None:
        """Rebuild sealed runs and their tombstones from the manifest.

        Tombstones whose victim is the main tree are dropped: the main
        tier is rebuilt from the live document set, so the dead copies
        they masked no longer exist.  Run-victim tombstones survive —
        run files still physically hold the dead copies.
        """
        assert self.dfs is not None
        for spec in manifest.get("runs", []):
            name = spec["file"]
            if not self.dfs.exists(name):
                # Crash between manifest write and run rename cannot
                # happen (the run renames first); a missing file means
                # external damage — fail loudly rather than under-count.
                raise StorageError(f"manifest names missing run {name!r}")
            data = self.dfs.read_file(name)
            if is_block_payload(data):
                block, meta = RecordBlock.decode(data)
                records = list(block.records())
                run_id = int(meta["run_id"])
                registry = self.obs.registry
                if registry.enabled:
                    registry.counter("storm.blocks.decoded").inc()
            else:
                # Legacy canonical-JSON run file from before the
                # columnar wire format.
                doc = json.loads(data)
                records = [Record.from_document(d)
                           for d in doc["records"]]
                run_id = int(doc["run_id"])
            run = self._build_run(run_id, records, file=name)
            self.runs.append(run)
        live_runs = {run.run_id for run in self.runs}
        for spec in manifest.get("tombstones", []):
            rid = int(spec["id"])
            for tier_name, key in spec["victims"].items():
                if tier_name == MAIN_TIER:
                    continue
                tier = int(tier_name)
                if tier not in live_runs:
                    continue
                self.tombstones.setdefault(rid, {})[tier] = tuple(key)
        # The recovered document store is the authority on liveness:
        # recovery replays every committed batch into it, and its own
        # re-checkpoint may prune the WAL segments carrying deletes
        # whose run-victim tombstones were never manifest-persisted.
        # Cross-check each run copy against the store-backed records
        # and tombstone any copy that is dead or stale there.
        records = self.dataset.records
        for run in self.runs:
            for rid, rec in run.records.items():
                if run.run_id in self.tombstones.get(rid, {}):
                    continue
                live = records.get(rid)
                if live is None \
                        or live.to_document() != rec.to_document():
                    self.tombstones.setdefault(rid, {})[run.run_id] = \
                        rec.key(self.dataset.dims)
                    continue
                self._run_of[rid] = run.run_id

    def _replay_wal_tail(self) -> None:
        """Replay committed batches above ``replay_lsn`` into the
        memtable — never into the main tree.

        Inserts whose record already lives in a sealed run are skipped
        (a seal that raced the crash already made them durable);
        deletes route exactly like live deletes.  Replay is idempotent
        because routing looks at the reconstructed tier state.
        """
        assert self.wal is not None
        records, _ = self.wal.scan()
        replayed = 0
        for rec in records:
            if rec.type != "batch" or rec.lsn <= self.replay_lsn:
                continue
            for rid in rec.payload.get("deletes", ()):
                rid = int(rid)
                if rid in self.memtable:
                    self.memtable.remove(rid)
                elif rid in self._run_of:
                    run_id = self._run_of.pop(rid)
                    run = next(r for r in self.runs
                               if r.run_id == run_id)
                    key = run.records[rid].key(self.dataset.dims)
                    self.tombstones.setdefault(rid, {})[run_id] = key
                # else: the document store already applied it and the
                # main tier rebuild below never sees the record.
                replayed += 1
            for doc in rec.payload.get("inserts", ()):
                rid = int(doc["_id"])
                if rid in self._run_of or rid in self.memtable:
                    continue
                self.memtable.insert(Record.from_document(doc))
                replayed += 1
            self.applied_lsn = rec.lsn
        registry = self.obs.registry
        if registry.enabled and replayed:
            registry.counter("storm.lsm.replayed_ops").inc(replayed)

    def _rebuild_main_tier(self) -> None:
        """Bulk-load the main tree from records no other tier holds."""
        tiered = set(self._run_of) | set(self.memtable.records)
        self.dataset._rebuild_indexes(
            [r for rid, r in self.dataset.records.items()
             if rid not in tiered])

    def _sweep_orphans(self, manifest: dict | None) -> None:
        """Delete files an interrupted seal/compact left behind."""
        if self.dfs is None:
            return
        keep = {self._manifest_name()}
        keep.update(run.file for run in self.runs
                    if run.file is not None)
        swept = 0
        for name in self.dfs.list_files(self.prefix):
            if name not in keep:
                self.dfs.delete_file(name)
                swept += 1
        registry = self.obs.registry
        if registry.enabled and swept:
            registry.counter("storm.lsm.orphans_swept").inc(swept)

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Route one insert into the memtable (sealing when full).

        The caller (``Dataset.insert``) has already stored the record
        in ``dataset.records``; durability comes from the update
        manager's WAL append, which precedes every call here.
        """
        self.memtable.insert(record)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.lsm.inserts").inc()
        if len(self.memtable) >= self.memtable_limit:
            self.seal()
        elif registry.enabled:
            registry.gauge("storm.lsm.memtable.records").set(
                len(self.memtable))

    def delete(self, record: Record) -> None:
        """Route one delete: in-place for memtable residents, a
        tier-tagged tombstone for run or main residents."""
        rid = record.record_id
        if rid in self.memtable:
            self.memtable.remove(rid)
        elif rid in self._run_of:
            run_id = self._run_of.pop(rid)
            self.tombstones.setdefault(rid, {})[run_id] = \
                record.key(self.dataset.dims)
        else:
            self.tombstones.setdefault(rid, {})[MAIN_TIER] = \
                record.key(self.dataset.dims)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.lsm.deletes").inc()
            registry.gauge("storm.lsm.tombstones").set(
                len(self.tombstones))
            registry.gauge("storm.lsm.memtable.records").set(
                len(self.memtable))

    def _build_run(self, run_id: int, records: Iterable[Record],
                   file: str | None = None) -> SealedRun:
        import random as _random
        tree = self.dataset.tree
        return SealedRun(run_id, records, tree.encoder.bounds,
                         self.dataset.dims, bits=tree.encoder.bits,
                         rs_buffer_size=self.run_buffer_size,
                         rng=_random.Random(
                             self.dataset._build_rng.getrandbits(32)),
                         file=file)

    def seal(self) -> SealedRun | None:
        """Freeze the memtable into an immutable run and persist it.

        Durable order: run temp file → run rename → manifest temp →
        manifest rename (the commit point).  A crash before the
        manifest rename leaves at worst an orphan run file that the
        WAL tail still covers; recovery sweeps the orphan and replays
        the records back into the memtable.
        """
        if not self.memtable.records:
            return None
        run_id = self._next_run_id
        self._next_run_id += 1
        frozen = list(self.memtable.records.values())
        file = self._run_file_name(run_id) if self.dfs is not None \
            else None
        run = self._build_run(run_id, frozen, file=file)
        if self.dfs is not None:
            payload = run.to_payload()
            tmp = run.file + ".tmp"
            self.dfs.write_file(tmp, payload)
            self.dfs.rename_file(tmp, run.file)
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.blocks.encoded").inc()
                registry.counter("storm.blocks.encoded_bytes").inc(
                    len(payload))
                registry.counter("storm.blocks.encoded_points").inc(
                    len(run.records))
        self.runs.append(run)
        for rid in run.records:
            self._run_of[rid] = run_id
        self.memtable.clear()
        self.replay_lsn = max(self.replay_lsn, self.applied_lsn)
        self._write_manifest()
        self.seals += 1
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.lsm.seals").inc()
        self._publish_gauges()
        return run

    def should_compact(self) -> bool:
        """Whether enough runs accumulated to warrant a compaction."""
        return len(self.runs) >= self.compact_after_runs

    def compact(self) -> int:
        """Fold every sealed run and tombstone into the main tree.

        One atomic swap: the new record set bulk-loads into a fresh
        node graph (a single structural version bump), the old graph
        stays alive for pinned snapshots, runs and tombstones clear,
        and the manifest empties.  Returns how many run records moved.

        WAL segment pruning rides on the update manager's checkpoint
        (it persists the manifest *before* pruning); a standalone
        compaction only rewrites the manifest.
        """
        if not self.runs and not self.tombstones:
            return 0
        moved = sum(len(run) for run in self.runs)
        old_files = [run.file for run in self.runs
                     if run.file is not None]
        self.runs.clear()
        self._run_of.clear()
        self.tombstones.clear()
        self.replay_lsn = max(self.replay_lsn, self.applied_lsn)
        self._rebuild_main_tier()
        self._write_manifest()
        if self.dfs is not None:
            for name in old_files:
                if self.dfs.exists(name):
                    self.dfs.delete_file(name)
        self.compactions += 1
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.lsm.compactions").inc()
            registry.counter("storm.lsm.compacted_records").inc(moved)
        self._publish_gauges()
        return moved

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def _manifest_payload(self) -> bytes:
        tombs = []
        for rid in sorted(self.tombstones):
            victims = {str(tier): list(key) for tier, key
                       in self.tombstones[rid].items()}
            tombs.append({"id": rid, "victims": victims})
        return canonical_json({
            "replay_lsn": self.replay_lsn,
            "next_run_id": self._next_run_id,
            "runs": [{"id": run.run_id, "file": run.file,
                      "count": len(run)} for run in self.runs],
            "tombstones": tombs,
        }).encode()

    def _write_manifest(self) -> None:
        """Atomically commit the tier state (temp write + rename)."""
        if self.dfs is None:
            return
        name = self._manifest_name()
        self.dfs.write_file(name + ".tmp", self._manifest_payload())
        self.dfs.rename_file(name + ".tmp", name)

    def checkpoint_manifest(self, replay_lsn: int) -> None:
        """Advance the replay origin as part of a store checkpoint.

        Called by :func:`~repro.storage.recovery.checkpoint_store`
        *before* WAL pruning: once the store durably holds every batch
        up to ``replay_lsn``, recovery no longer needs to replay them
        into the memtable (the main-tier rebuild reads them from the
        store), and the tombstones they produced are persisted here —
        so pruning those segments is safe.
        """
        self.replay_lsn = max(self.replay_lsn, int(replay_lsn))
        self._write_manifest()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def run_records(self) -> int:
        """Records currently held by sealed runs (incl. masked)."""
        return sum(len(run) for run in self.runs)

    def tier_shape(self) -> dict[str, int]:
        """Gauge snapshot of the tier sizes (EXPLAIN / metrics)."""
        return {
            "memtable_records": len(self.memtable),
            "sealed_runs": len(self.runs),
            "run_records": self.run_records(),
            "tombstones": len(self.tombstones),
            "seals": self.seals,
            "compactions": self.compactions,
        }

    def _publish_gauges(self) -> None:
        registry = self.obs.registry
        if not registry.enabled:
            return
        registry.gauge("storm.lsm.memtable.records").set(
            len(self.memtable))
        registry.gauge("storm.lsm.runs").set(len(self.runs))
        registry.gauge("storm.lsm.run_records").set(self.run_records())
        registry.gauge("storm.lsm.tombstones").set(len(self.tombstones))

    def __repr__(self) -> str:
        return (f"<LSMTree memtable={len(self.memtable)} "
                f"runs={len(self.runs)} "
                f"tombstones={len(self.tombstones)} "
                f"replay_lsn={self.replay_lsn}>")
