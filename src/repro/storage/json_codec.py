"""The free data module: record format conversion.

The paper: "the free data module is used to convert between different
record formats and JSON format, as used by the storage engine of STORM."

Three conversions live here:

* source rows (possibly nested, stringly-typed) → flat JSON documents;
* JSON documents → :class:`~repro.core.records.Record` (given a field
  mapping that names the lon/lat/time fields);
* records → documents (for persisting an indexed dataset).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, Mapping

from repro.core.records import Record
from repro.errors import SchemaError, StorageError

__all__ = ["canonical_json", "flatten", "rows_to_documents",
           "documents_to_records", "records_to_documents"]


def canonical_json(obj: Any) -> str:
    """Serialise to deterministic JSON, or raise a typed error.

    This is the one encoder the durable write path uses (document
    store flushes, WAL records): keys are sorted so equal documents
    produce byte-identical lines, ``NaN``/``±Infinity`` round-trip via
    Python's extended literals, and a value JSON cannot represent
    raises :class:`~repro.errors.StorageError` instead of being
    silently coerced to a string — a coerced value would *load* fine
    and corrupt the dataset quietly, which is worse than failing the
    write.
    """
    try:
        return json.dumps(obj, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise StorageError(
            f"value is not JSON-serialisable: {exc}") from exc


def flatten(doc: Mapping[str, Any], separator: str = ".",
            prefix: str = "") -> dict[str, Any]:
    """Flatten nested mappings into dotted keys (lists kept verbatim)."""
    out: dict[str, Any] = {}
    for key, value in doc.items():
        full = f"{prefix}{separator}{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten(value, separator, full))
        else:
            out[full] = value
    return out


def rows_to_documents(rows: Iterable[Mapping[str, Any]]
                      ) -> Iterator[dict[str, Any]]:
    """Normalise arbitrary source rows into flat JSON documents."""
    for row in rows:
        yield flatten(row)


def documents_to_records(docs: Iterable[Mapping[str, Any]],
                         lon_field: str, lat_field: str,
                         time_field: str | None = None,
                         id_field: str = "_id",
                         start_id: int = 0) -> Iterator[Record]:
    """Turn documents into records given the spatial/temporal mapping.

    Documents missing a coordinate raise :class:`SchemaError` — the data
    connector filters/flags such rows before calling this.  Ids come from
    ``id_field`` when present and integral, otherwise sequentially.
    """
    next_id = start_id
    for doc in docs:
        if lon_field not in doc or lat_field not in doc:
            raise SchemaError(
                f"document missing {lon_field!r}/{lat_field!r}: "
                f"{dict(doc)!r}")
        raw_id = doc.get(id_field)
        if isinstance(raw_id, int):
            record_id = raw_id
        else:
            record_id = next_id
            next_id += 1
        t = 0.0
        if time_field is not None and time_field in doc \
                and doc[time_field] is not None:
            t = float(doc[time_field])
        attrs = {k: v for k, v in doc.items()
                 if k not in (lon_field, lat_field, time_field, id_field)}
        try:
            yield Record(record_id=record_id,
                         lon=float(doc[lon_field]),
                         lat=float(doc[lat_field]), t=t, attrs=attrs)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"non-numeric coordinates in document "
                f"{dict(doc)!r}") from exc


def records_to_documents(records: Iterable[Record]
                         ) -> Iterator[dict[str, Any]]:
    """Serialise records back to the storage engine's document shape."""
    for record in records:
        yield record.to_document()
