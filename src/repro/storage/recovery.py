"""Crash recovery: checkpointing and WAL replay for the document store.

The durability protocol has two halves:

**Checkpoint** (:func:`checkpoint_store`) — the flush-commit path.  The
WAL's current high-water LSN is stamped into the ``_wal`` meta
collection, every collection is flushed atomically (temp-write +
rename, data first, the meta collection *last* — its rename is the
commit point of the whole checkpoint), a ``checkpoint`` record is
appended to the WAL, and fully covered segments are pruned.  A crash
anywhere in the sequence is safe: either the old checkpoint LSN is
still the committed one (replay covers the gap), or the new one is and
the extra replay work is skipped.

**Recovery** (:func:`recover_store`) — the restart path.  The WAL's
torn tail (if any) is truncated, every committed batch record with an
LSN above the store's checkpoint is replayed into its collection
(deletes before inserts, idempotently — replaying a batch that already
reached the store is a no-op), dataset manifest record counts are
refreshed, and a fresh checkpoint makes the recovered state durable.
The :class:`RecoveryReport` says exactly what happened: segments
scanned, records replayed, bytes discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import NULL_OBS, Observability
from repro.storage.document_store import DocumentStore
from repro.storage.wal import WriteAheadLog

__all__ = ["RecoveryReport", "checkpoint_store", "recover_store",
           "stored_checkpoint_lsn", "WAL_META_COLLECTION"]

#: Collection holding the store-side checkpoint LSN (the authoritative
#: one: its atomic flush is what commits a checkpoint).
WAL_META_COLLECTION = "_wal"
_CHECKPOINT_DOC_ID = "checkpoint"


@dataclass(slots=True)
class RecoveryReport:
    """What one recovery pass scanned, replayed and discarded."""

    #: WAL segment files scanned.
    segments_scanned: int = 0
    #: Valid records seen in the log (all types).
    records_scanned: int = 0
    #: Batch records actually replayed (LSN above the checkpoint).
    batches_replayed: int = 0
    #: Individual insert/delete operations replayed.
    ops_replayed: int = 0
    #: Torn-tail bytes physically discarded.
    bytes_discarded: int = 0
    #: Why the tail was torn (None for a clean log).
    torn_reason: str | None = None
    #: Store checkpoint LSN recovery started from.
    checkpoint_lsn: int = 0
    #: Highest committed LSN after truncation.
    last_lsn: int = 0
    #: Collections that received replayed operations.
    collections: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready view (for traces, benches and the CLI)."""
        return {
            "segments_scanned": self.segments_scanned,
            "records_scanned": self.records_scanned,
            "batches_replayed": self.batches_replayed,
            "ops_replayed": self.ops_replayed,
            "bytes_discarded": self.bytes_discarded,
            "torn_reason": self.torn_reason,
            "checkpoint_lsn": self.checkpoint_lsn,
            "last_lsn": self.last_lsn,
            "collections": list(self.collections),
        }

    def render(self) -> str:
        """Human-readable multi-line summary (the CLI prints this)."""
        lines = [
            "recovery:",
            f"  segments scanned   {self.segments_scanned}",
            f"  records scanned    {self.records_scanned}",
            f"  batches replayed   {self.batches_replayed}",
            f"  ops replayed       {self.ops_replayed}",
            f"  bytes discarded    {self.bytes_discarded}"
            + (f" ({self.torn_reason})" if self.torn_reason else ""),
            f"  checkpoint lsn     {self.checkpoint_lsn}",
            f"  last lsn           {self.last_lsn}",
        ]
        if self.collections:
            lines.append("  collections        "
                         + ", ".join(self.collections))
        return "\n".join(lines)


def stored_checkpoint_lsn(store: DocumentStore) -> int:
    """The store-side committed checkpoint LSN (0 before any)."""
    coll = store.collections.get(WAL_META_COLLECTION)
    if coll is None:
        return 0
    doc = coll.find_one({"_id": _CHECKPOINT_DOC_ID})
    return int(doc["lsn"]) if doc else 0


def checkpoint_store(store: DocumentStore, wal: WriteAheadLog,
                     obs: Observability | None = None,
                     lsm=None) -> int:
    """Atomically checkpoint the store at the WAL's current LSN.

    Returns the checkpoint LSN.  Data collections flush first; the
    ``_wal`` meta collection flushes last, and its rename is the
    commit point — a crash before it leaves the previous checkpoint
    in force, so replay still covers every committed batch.

    With a tiered ingest path attached (``lsm``), its manifest is
    re-persisted at the checkpoint LSN *before* segment pruning: the
    store now durably holds every batch up to ``lsn``, so memtable
    replay may start above it — but the run-victim tombstones those
    batches created only live in the manifest, and pruning their
    segments without persisting it first would resurrect dead run
    copies.
    """
    obs = obs if obs is not None else wal.obs
    lsn = wal.last_lsn
    meta = store.collection(WAL_META_COLLECTION)
    meta.upsert_one({"_id": _CHECKPOINT_DOC_ID, "lsn": lsn})
    for name in store.list_collections():
        if name != WAL_META_COLLECTION:
            store.flush(name)
    store.flush(WAL_META_COLLECTION)  # the commit point
    if lsm is not None:
        lsm.checkpoint_manifest(lsn)
    wal.append_checkpoint(lsn)
    wal.prune(lsn)
    return lsn


def recover_store(store: DocumentStore, wal: WriteAheadLog,
                  obs: Observability | None = None,
                  checkpoint: bool = True,
                  manifest_collection: str = "_datasets",
                  dataset_prefix: str = "ds_") -> RecoveryReport:
    """Bring the store to exactly the committed prefix of the WAL.

    Steps: truncate the torn tail, replay batch records with LSN above
    the store's checkpoint (deletes before inserts, upserts so replay
    is idempotent), refresh ``record_count`` in the dataset manifest
    for replayed collections, then (unless ``checkpoint=False``) write
    a fresh checkpoint so recovery itself is durable and the log is
    pruned.
    """
    obs = obs if obs is not None else wal.obs
    report = RecoveryReport(checkpoint_lsn=stored_checkpoint_lsn(store))
    report.segments_scanned = len(wal.segments())
    torn = wal.truncate_torn()
    if torn is not None:
        report.bytes_discarded = torn.bytes_discarded
        report.torn_reason = torn.reason
    records, _ = wal.scan()
    report.records_scanned = len(records)
    report.last_lsn = wal.last_lsn
    touched: list[str] = []
    for rec in records:
        if rec.type != "batch" or rec.lsn <= report.checkpoint_lsn:
            continue
        coll = store.collection(rec.payload["collection"])
        for rid in rec.payload.get("deletes", ()):
            coll.delete_one(rid)
            report.ops_replayed += 1
        for doc in rec.payload.get("inserts", ()):
            coll.upsert_one(doc)
            report.ops_replayed += 1
        report.batches_replayed += 1
        if coll.name not in touched:
            touched.append(coll.name)
    report.collections = touched
    # Replay changes collection sizes; the dataset manifest's
    # record_count entries (load_engine's corruption tripwire) must
    # agree with the recovered truth before it is made durable.
    manifest = store.collections.get(manifest_collection)
    if manifest is not None and touched:
        for entry in list(manifest.find()):
            coll_name = dataset_prefix + str(entry.get("name"))
            if coll_name in touched:
                entry["record_count"] = len(
                    store.collection(coll_name))
                manifest.replace_one(entry["_id"], entry)
    registry = obs.registry
    if registry.enabled:
        registry.counter("storm.recovery.runs").inc()
        registry.counter("storm.recovery.segments_scanned").inc(
            report.segments_scanned)
        registry.counter("storm.recovery.records_replayed").inc(
            report.batches_replayed)
        registry.counter("storm.recovery.ops_replayed").inc(
            report.ops_replayed)
        registry.counter("storm.recovery.bytes_discarded").inc(
            report.bytes_discarded)
    if checkpoint:
        checkpoint_store(store, wal, obs=obs)
    return report
