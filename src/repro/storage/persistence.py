"""Persisting engine datasets through the storage engine.

STORM's storage engine owns the records (JSON documents on the DFS); the
in-memory indexes are derived state.  ``save_engine`` writes every
dataset's records plus a manifest of its index parameters;
``load_engine`` reads them back and rebuilds the indexes — the restart
path of the system.

Both directions are crash-consistent.  ``save_engine`` builds each
replacement collection *off to the side* and relies on the document
store's atomic flush (temp-write + rename), so a crash mid-save leaves
every previously committed dataset intact — the old drop-then-reinsert
sequence could erase a dataset entirely.  With a
:class:`~repro.storage.wal.WriteAheadLog` attached, the manifest is
stamped with the checkpoint LSN and ``load_engine`` first runs WAL
recovery (:func:`~repro.storage.recovery.recover_store`), replaying
committed-but-unflushed update batches on top of the last checkpoint;
the resulting :class:`~repro.storage.recovery.RecoveryReport` rides on
the returned engine as ``engine.last_recovery``.
"""

from __future__ import annotations

from repro.core.engine import StormEngine
from repro.core.records import Record
from repro.errors import StorageError
from repro.obs import Observability
from repro.storage.document_store import Collection, DocumentStore
from repro.storage.recovery import checkpoint_store, recover_store
from repro.storage.wal import WriteAheadLog

__all__ = ["save_engine", "load_engine", "DATASET_PREFIX",
           "MANIFEST_COLLECTION"]

DATASET_PREFIX = "ds_"
MANIFEST_COLLECTION = "_datasets"


def save_engine(engine: StormEngine, store: DocumentStore,
                wal: "WriteAheadLog | None" = None) -> None:
    """Write every dataset's records + manifest; flushes to the DFS.

    Each dataset collection is rebuilt off to the side and registered
    with :meth:`~repro.storage.document_store.DocumentStore.
    put_collection`, so the previous DFS file survives untouched until
    the atomic flush renames over it — a crash at any point leaves
    every dataset loadable.  With ``wal`` given the save doubles as a
    checkpoint: manifest entries carry ``checkpoint_lsn`` and the
    flush goes through :func:`~repro.storage.recovery.
    checkpoint_store` (flush-commit record + segment pruning).
    """
    manifest = store.collection(MANIFEST_COLLECTION)
    flushed: list[str] = []
    for name, dataset in engine.datasets.items():
        coll_name = DATASET_PREFIX + name
        coll = Collection(coll_name)
        coll.insert_many(r.to_document()
                         for r in dataset.records.values())
        store.put_collection(coll)
        entry = {
            "_id": name,
            "name": name,
            "dims": dataset.dims,
            "record_count": len(dataset),
            "leaf_capacity": dataset.tree.leaf_capacity,
            "branch_capacity": dataset.tree.branch_capacity,
            "has_ls": dataset.forest is not None,
            "checkpoint_lsn": wal.last_lsn if wal is not None else None,
        }
        manifest.upsert_one(entry)
        flushed.append(coll_name)
    if wal is not None:
        checkpoint_store(store, wal)
        return
    for coll_name in flushed:
        store.flush(coll_name)
    store.flush(MANIFEST_COLLECTION)


def load_engine(store: DocumentStore, seed: int = 0,
                wal: "WriteAheadLog | None" = None,
                obs: "Observability | None" = None) -> StormEngine:
    """Rebuild an engine (datasets + indexes) from a saved store.

    With ``wal`` given, WAL recovery runs first: the torn tail is
    truncated and committed-but-unflushed batches are replayed into
    the store, so the rebuilt indexes reflect exactly the committed
    prefix of the log.  The recovery report is attached to the
    returned engine as ``engine.last_recovery`` (None without a WAL).
    """
    report = None
    if wal is not None:
        report = recover_store(
            store, wal, obs=obs,
            manifest_collection=MANIFEST_COLLECTION,
            dataset_prefix=DATASET_PREFIX)
    engine = StormEngine(seed=seed, obs=obs)
    manifest = store.collection(MANIFEST_COLLECTION)
    for entry in manifest.find():
        name = entry["name"]
        coll_name = DATASET_PREFIX + name
        if coll_name not in store.collections:
            raise StorageError(
                f"manifest lists {name!r} but collection "
                f"{coll_name!r} is missing")
        records = [Record.from_document(doc)
                   for doc in store.collection(coll_name).find()]
        if len(records) != entry.get("record_count", len(records)):
            raise StorageError(
                f"dataset {name!r}: manifest says "
                f"{entry['record_count']} records, store has "
                f"{len(records)}")
        engine.create_dataset(
            name, records, dims=int(entry.get("dims", 3)),
            leaf_capacity=int(entry.get("leaf_capacity", 64)),
            branch_capacity=int(entry.get("branch_capacity", 16)),
            build_ls=bool(entry.get("has_ls", True)))
    engine.last_recovery = report
    return engine
