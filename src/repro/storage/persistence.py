"""Persisting engine datasets through the storage engine.

STORM's storage engine owns the records (JSON documents on the DFS); the
in-memory indexes are derived state.  ``save_engine`` writes every
dataset's records plus a manifest of its index parameters;
``load_engine`` reads them back and rebuilds the indexes — the restart
path of the system.
"""

from __future__ import annotations

from repro.core.engine import Dataset, StormEngine
from repro.core.records import Record
from repro.errors import StorageError
from repro.storage.document_store import DocumentStore

__all__ = ["save_engine", "load_engine", "DATASET_PREFIX",
           "MANIFEST_COLLECTION"]

DATASET_PREFIX = "ds_"
MANIFEST_COLLECTION = "_datasets"


def save_engine(engine: StormEngine, store: DocumentStore) -> None:
    """Write every dataset's records + manifest; flushes to the DFS."""
    manifest = store.collection(MANIFEST_COLLECTION)
    for name, dataset in engine.datasets.items():
        coll_name = DATASET_PREFIX + name
        if coll_name in store.collections:
            store.drop(coll_name)
        coll = store.collection(coll_name)
        coll.insert_many(r.to_document()
                         for r in dataset.records.values())
        existing = manifest.find_one({"_id": name})
        entry = {
            "_id": name,
            "name": name,
            "dims": dataset.dims,
            "record_count": len(dataset),
            "leaf_capacity": dataset.tree.leaf_capacity,
            "branch_capacity": dataset.tree.branch_capacity,
            "has_ls": dataset.forest is not None,
        }
        if existing is None:
            manifest.insert_one(entry)
        else:
            manifest.replace_one(name, entry)
        store.flush(coll_name)
    store.flush(MANIFEST_COLLECTION)


def load_engine(store: DocumentStore, seed: int = 0) -> StormEngine:
    """Rebuild an engine (datasets + indexes) from a saved store."""
    engine = StormEngine(seed=seed)
    manifest = store.collection(MANIFEST_COLLECTION)
    for entry in manifest.find():
        name = entry["name"]
        coll_name = DATASET_PREFIX + name
        if coll_name not in store.collections:
            raise StorageError(
                f"manifest lists {name!r} but collection "
                f"{coll_name!r} is missing")
        records = [Record.from_document(doc)
                   for doc in store.collection(coll_name).find()]
        if len(records) != entry.get("record_count", len(records)):
            raise StorageError(
                f"dataset {name!r}: manifest says "
                f"{entry['record_count']} records, store has "
                f"{len(records)}")
        engine.create_dataset(
            name, records, dims=int(entry.get("dims", 3)),
            leaf_capacity=int(entry.get("leaf_capacity", 64)),
            branch_capacity=int(entry.get("branch_capacity", 16)),
            build_ls=bool(entry.get("has_ls", True)))
    return engine
