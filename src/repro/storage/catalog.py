"""Dataset catalog: metadata about what STORM has imported or indexed.

The catalog records, per dataset: where it came from, how its fields map
onto the spatio-temporal schema, whether the data was copied into the
storage engine or merely indexed in place, and basic statistics.  It is
itself stored as a document collection, so it survives restarts with the
rest of the store.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.errors import StorageError
from repro.storage.document_store import DocumentStore

__all__ = ["DatasetInfo", "Catalog"]


@dataclass(slots=True)
class DatasetInfo:
    """Catalog entry for one dataset."""

    name: str
    source: str                      # human-readable source description
    mode: str                        # "import" or "index"
    lon_field: str
    lat_field: str
    time_field: str | None
    record_count: int
    schema: dict[str, str] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    extra: dict[str, Any] = field(default_factory=dict)

    def to_document(self) -> dict[str, Any]:
        """Serialise for the catalog collection."""
        doc = asdict(self)
        doc["_id"] = self.name
        return doc

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "DatasetInfo":
        """Inverse of to_document."""
        doc = dict(doc)
        doc.pop("_id", None)
        return cls(**doc)


class Catalog:
    """Catalog persisted in a document-store collection."""

    COLLECTION = "_catalog"

    def __init__(self, store: DocumentStore):
        self.store = store
        self._coll = store.collection(self.COLLECTION)

    def register(self, info: DatasetInfo) -> None:
        """Add a new dataset entry (error if the name exists)."""
        if self._coll.find_one({"_id": info.name}) is not None:
            raise StorageError(
                f"dataset {info.name!r} already in catalog")
        self._coll.insert_one(info.to_document())

    def update(self, info: DatasetInfo) -> None:
        if self._coll.find_one({"_id": info.name}) is None:
            raise StorageError(f"dataset {info.name!r} not in catalog")
        self._coll.replace_one(info.name, info.to_document())

    def get(self, name: str) -> DatasetInfo:
        """Fetch one entry by dataset name."""
        doc = self._coll.find_one({"_id": name})
        if doc is None:
            raise StorageError(f"dataset {name!r} not in catalog")
        return DatasetInfo.from_document(doc)

    def remove(self, name: str) -> None:
        """Delete one entry by dataset name."""
        if not self._coll.delete_one(name):
            raise StorageError(f"dataset {name!r} not in catalog")

    def names(self) -> list[str]:
        """All catalogued dataset names, sorted."""
        return sorted(d["name"] for d in self._coll.find())

    def flush(self) -> None:
        """Persist the catalog collection to the DFS."""
        self.store.flush(self.COLLECTION)
