"""Embedded JSON document store (the MongoDB stand-in).

Collections hold JSON documents (dicts); queries use a Mongo-style filter
language::

    coll.find({"borough": "manhattan"})
    coll.find({"kwh": {"$gte": 900, "$lt": 1200}})
    coll.find({"$or": [{"a": 1}, {"b": {"$in": [2, 3]}}]})

Documents persist as JSON-lines files on the :class:`SimulatedDFS`;
:meth:`DocumentStore.flush` writes, construction reloads.  The store is
the system of record STORM indexes — the data connector imports into it,
and the update manager routes inserts/deletes through it.

Flushes are *atomic*: each collection is written to a ``.tmp`` sibling
and renamed over the target, so a crash mid-flush leaves the previous
file intact (stale ``.tmp`` leftovers are swept on load).  Serialisation
goes through :func:`~repro.storage.json_codec.canonical_json`, which
raises a typed :class:`~repro.errors.StorageError` on values JSON
cannot represent instead of silently coercing them.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import StorageError
from repro.storage.dfs import SimulatedDFS
from repro.storage.json_codec import canonical_json

__all__ = ["DocumentStore", "Collection", "matches_filter"]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, t: v == t,
    "$ne": lambda v, t: v != t,
    "$gt": lambda v, t: v is not None and v > t,
    "$gte": lambda v, t: v is not None and v >= t,
    "$lt": lambda v, t: v is not None and v < t,
    "$lte": lambda v, t: v is not None and v <= t,
    "$in": lambda v, t: v in t,
    "$nin": lambda v, t: v not in t,
    "$exists": lambda v, t: (v is not None) == bool(t),
}


def matches_filter(doc: Mapping[str, Any], flt: Mapping[str, Any]) -> bool:
    """Evaluate a Mongo-style filter against one document."""
    for key, condition in flt.items():
        if key == "$and":
            if not all(matches_filter(doc, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches_filter(doc, sub) for sub in condition):
                return False
        elif key == "$not":
            if matches_filter(doc, condition):
                return False
        elif key.startswith("$"):
            raise StorageError(f"unknown top-level operator {key!r}")
        else:
            value = doc.get(key)
            if isinstance(condition, Mapping):
                for op, target in condition.items():
                    comparator = _COMPARATORS.get(op)
                    if comparator is None:
                        raise StorageError(f"unknown operator {op!r}")
                    try:
                        if not comparator(value, target):
                            return False
                    except TypeError:
                        return False  # incomparable types never match
            else:
                if value != condition:
                    return False
    return True


class Collection:
    """One named set of JSON documents with unique ``_id``s."""

    def __init__(self, name: str):
        self.name = name
        self._docs: dict[Any, dict[str, Any]] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._docs)

    # -- writes -------------------------------------------------------------

    def insert_one(self, doc: Mapping[str, Any]) -> Any:
        """Insert a document, assigning ``_id`` when missing.

        Returns the document id.
        """
        stored = dict(doc)
        if "_id" not in stored:
            while self._next_id in self._docs:
                self._next_id += 1
            stored["_id"] = self._next_id
            self._next_id += 1
        if stored["_id"] in self._docs:
            raise StorageError(
                f"duplicate _id {stored['_id']!r} in "
                f"collection {self.name!r}")
        self._docs[stored["_id"]] = stored
        return stored["_id"]

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> list[Any]:
        """Insert several documents; returns their ids."""
        return [self.insert_one(d) for d in docs]

    def replace_one(self, doc_id: Any, doc: Mapping[str, Any]) -> None:
        """Replace the document with the given id."""
        if doc_id not in self._docs:
            raise StorageError(f"no document with _id {doc_id!r}")
        stored = dict(doc)
        stored["_id"] = doc_id
        self._docs[doc_id] = stored

    def delete_one(self, doc_id: Any) -> bool:
        """Delete by id; returns whether it existed."""
        return self._docs.pop(doc_id, None) is not None

    def upsert_one(self, doc: Mapping[str, Any]) -> Any:
        """Insert, or replace the existing document with the same
        ``_id`` (WAL replay is idempotent because of this)."""
        stored = dict(doc)
        if "_id" not in stored:
            return self.insert_one(stored)
        self._docs[stored["_id"]] = stored
        return stored["_id"]

    def delete_many(self, flt: Mapping[str, Any]) -> int:
        """Delete every document matching the filter; returns the count."""
        doomed = [d["_id"] for d in self._docs.values()
                  if matches_filter(d, flt)]
        for doc_id in doomed:
            del self._docs[doc_id]
        return len(doomed)

    # -- reads ------------------------------------------------------------------

    def get(self, doc_id: Any) -> dict[str, Any]:
        """Fetch one document by id (a copy)."""
        doc = self._docs.get(doc_id)
        if doc is None:
            raise StorageError(f"no document with _id {doc_id!r}")
        return dict(doc)

    def find(self, flt: Mapping[str, Any] | None = None
             ) -> Iterator[dict[str, Any]]:
        """Iterate documents matching a Mongo-style filter (copies)."""
        flt = flt or {}
        for doc in self._docs.values():
            if matches_filter(doc, flt):
                yield dict(doc)

    def find_one(self, flt: Mapping[str, Any] | None = None
                 ) -> dict[str, Any] | None:
        """First match or None."""
        return next(self.find(flt), None)

    def count(self, flt: Mapping[str, Any] | None = None) -> int:
        if not flt:
            return len(self._docs)
        return sum(1 for _ in self.find(flt))

    def distinct(self, field: str) -> list[Any]:
        """Sorted distinct values of one field."""
        return sorted({d.get(field) for d in self._docs.values()
                       if field in d}, key=repr)

    # -- (de)serialisation --------------------------------------------------------

    def to_jsonl(self) -> bytes:
        """Serialise to JSON-lines bytes (deterministic: sorted keys,
        ids in insertion order).  Raises :class:`StorageError` on a
        document JSON cannot represent — never coerces silently."""
        lines = [canonical_json(doc) for doc in self._docs.values()]
        return ("\n".join(lines) + ("\n" if lines else "")).encode()

    @classmethod
    def from_jsonl(cls, name: str, payload: bytes) -> "Collection":
        """Rebuild a collection from JSON-lines bytes."""
        coll = cls(name)
        for line in payload.decode().splitlines():
            line = line.strip()
            if line:
                coll.insert_one(json.loads(line))
        return coll


class DocumentStore:
    """A set of collections persisted on the simulated DFS."""

    PREFIX = "store/"

    def __init__(self, dfs: SimulatedDFS | None = None):
        self.dfs = dfs if dfs is not None else SimulatedDFS()
        self.collections: dict[str, Collection] = {}
        self._load()

    def _file_name(self, collection: str) -> str:
        return f"{self.PREFIX}{collection}.jsonl"

    def _load(self) -> None:
        for name in self.dfs.list_files(self.PREFIX):
            if name.endswith(".tmp"):
                # A crash between temp-write and rename left this
                # behind; the target still holds the committed state.
                self.dfs.delete_file(name)
                continue
            coll_name = name[len(self.PREFIX):-len(".jsonl")]
            self.collections[coll_name] = Collection.from_jsonl(
                coll_name, self.dfs.read_file(name))

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if not name:
            raise StorageError("collection name cannot be empty")
        if name not in self.collections:
            self.collections[name] = Collection(name)
        return self.collections[name]

    def put_collection(self, coll: Collection) -> Collection:
        """Register a pre-built collection, replacing any in-memory
        collection with the same name.  The backing DFS file is left
        untouched until the next :meth:`flush` — callers building a
        replacement (``save_engine``) stay crash-safe this way."""
        if not coll.name:
            raise StorageError("collection name cannot be empty")
        self.collections[coll.name] = coll
        return coll

    def drop(self, name: str) -> None:
        """Delete a collection (and its DFS file)."""
        if name not in self.collections:
            raise StorageError(f"no collection named {name!r}")
        del self.collections[name]
        file_name = self._file_name(name)
        if self.dfs.exists(file_name):
            self.dfs.delete_file(file_name)

    def list_collections(self) -> list[str]:
        """Sorted collection names."""
        return sorted(self.collections)

    def flush(self, name: str | None = None) -> None:
        """Persist one collection (or all) to the DFS, atomically.

        Each collection is serialised into a ``.tmp`` sibling and
        renamed over the target file, so a crash (injected or real)
        mid-write never leaves a half-written or missing collection —
        readers see the previous committed contents until the rename.
        """
        names = [name] if name is not None else list(self.collections)
        for coll_name in names:
            coll = self.collections.get(coll_name)
            if coll is None:
                raise StorageError(f"no collection named {coll_name!r}")
            target = self._file_name(coll_name)
            tmp = target + ".tmp"
            self.dfs.write_file(tmp, coll.to_jsonl())
            self.dfs.rename_file(tmp, target)
