"""Update manager: ad-hoc inserts and deletes kept consistent everywhere.

The paper's update demo requirement: "its novel spatial online sampling
module is able to update its indexing structure to reflect the latest
state of the underlying data sets, so that a correct set of online
spatio-temporal samples can always be returned with respect to the latest
records."

:class:`~repro.updates.manager.UpdateManager` routes batches of inserts
and deletes through a dataset — updating the record store, the Hilbert
R-tree (which invalidates RS-tree sample buffers along the touched
paths), the LS-tree forest, and optionally the document-store collection —
atomically per batch, with validation up front.
"""

from repro.updates.manager import UpdateBatch, UpdateManager, UpdateResult

__all__ = ["UpdateBatch", "UpdateManager", "UpdateResult"]
