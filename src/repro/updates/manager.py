"""Batch application of inserts/deletes across store and indexes.

With a :class:`~repro.storage.wal.WriteAheadLog` attached, the manager
is *durable*: every batch is appended to the log (deletes before
inserts) **before** any store or index mutation, so the append
returning is the commit point — a crash afterwards is repaired by
replay (:mod:`repro.storage.recovery`), a crash during the append
leaves the batch uncommitted and untouched.  :meth:`UpdateManager.
flush` then becomes an atomic checkpoint (flush-commit record +
segment pruning), optionally driven automatically every
``checkpoint_every`` batches.

Durations use the monotonic ``time.perf_counter`` clock — wall-clock
time can step backwards under NTP and would make throughput figures
negative or infinite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.engine import Dataset
from repro.core.records import Record
from repro.errors import UpdateError
from repro.obs import NULL_OBS, Observability
from repro.storage.document_store import DocumentStore
from repro.storage.recovery import checkpoint_store
from repro.storage.wal import WriteAheadLog

__all__ = ["UpdateBatch", "UpdateResult", "UpdateManager"]


@dataclass(slots=True)
class UpdateBatch:
    """A set of changes applied together."""

    inserts: list[Record] = field(default_factory=list)
    deletes: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.inserts) + len(self.deletes)

    def validate(self, dataset: Dataset) -> None:
        """Reject batches that cannot apply cleanly (before mutating).

        A batch may delete an id and re-insert the same id: that is a
        *replace*, and :meth:`UpdateManager.apply` (and WAL replay)
        guarantee the delete lands before the insert.
        """
        insert_ids = [r.record_id for r in self.inserts]
        if len(insert_ids) != len(set(insert_ids)):
            raise UpdateError("batch inserts contain duplicate ids")
        delete_ids = set(self.deletes)
        if len(delete_ids) != len(self.deletes):
            raise UpdateError("batch deletes contain duplicate ids")
        for rid in insert_ids:
            if rid in dataset.records and rid not in delete_ids:
                raise UpdateError(
                    f"insert id {rid} already exists in dataset")
        for rid in self.deletes:
            if rid not in dataset.records:
                raise UpdateError(f"delete id {rid} not in dataset")


@dataclass(slots=True)
class UpdateResult:
    """Outcome of one applied batch."""

    inserted: int
    deleted: int
    seconds: float

    def throughput(self) -> float:
        """Applied operations per second.

        A zero-op batch reports 0.0 (not ``inf``/``nan``); a non-empty
        batch timed at zero elapsed seconds reports ``inf`` — the
        monotonic clock guarantees ``seconds`` is never negative."""
        total = self.inserted + self.deleted
        if total == 0:
            return 0.0
        return total / self.seconds if self.seconds > 0 else float("inf")


class UpdateManager:
    """Applies updates to a dataset (and its backing collection).

    Deletes are applied before inserts so a batch can atomically replace
    a record (delete old id + insert the new version under the same id).
    """

    def __init__(self, dataset: Dataset,
                 store: DocumentStore | None = None,
                 collection: str | None = None,
                 rebuild_churn_fraction: float | None = None,
                 obs: Observability | None = None,
                 wal: "WriteAheadLog | None" = None,
                 checkpoint_every: int | None = None):
        if (store is None) != (collection is None):
            raise UpdateError(
                "provide both store and collection, or neither")
        if rebuild_churn_fraction is not None \
                and rebuild_churn_fraction <= 0:
            raise UpdateError(
                "rebuild_churn_fraction must be positive")
        if wal is not None and store is None:
            raise UpdateError(
                "a WAL needs a store/collection to recover into")
        if checkpoint_every is not None:
            if wal is None:
                raise UpdateError("checkpoint_every needs a wal")
            if checkpoint_every < 1:
                raise UpdateError("checkpoint_every must be >= 1")
        self.dataset = dataset
        self.store = store
        self.collection = collection
        # Durability: batches are logged here before any mutation.
        self.wal = wal
        self.checkpoint_every = checkpoint_every
        self._batches_since_checkpoint = 0
        #: LSN of the most recently committed batch (0 before any).
        self.last_lsn = 0
        # Falls back to the dataset's sink so one engine-level
        # Observability captures update traffic too.
        self.obs = obs if obs is not None \
            else getattr(dataset, "obs", NULL_OBS)
        # Auto-rebuild policy: once applied churn (inserts + deletes)
        # exceeds this fraction of the dataset size, bulk-rebuild the
        # indexes to restore packing quality.  None disables it.
        self.rebuild_churn_fraction = rebuild_churn_fraction
        self._churn_since_rebuild = 0
        self.rebuilds = 0
        self.applied_batches = 0
        self.total_inserted = 0
        self.total_deleted = 0

    def _coll(self):
        assert self.store is not None and self.collection is not None
        return self.store.collection(self.collection)

    def apply(self, batch: UpdateBatch) -> UpdateResult:
        """Validate then apply one batch everywhere.

        With a WAL attached the batch is appended to the log *first*;
        the append returning is the commit point.  Deletes apply
        before inserts — in the log, in the store and in the indexes —
        so a delete+reinsert of one id is a replace.
        """
        batch.validate(self.dataset)
        name = getattr(self.dataset, "name", "?")
        if len(batch) == 0:
            # A no-op batch must be a true no-op: no WAL record, no
            # checkpoint-cadence tick, and — critically — no index
            # version bump invalidating canonical-set caches.
            return UpdateResult(inserted=0, deleted=0, seconds=0.0)
        start = time.perf_counter()
        if self.wal is not None:
            assert self.collection is not None
            self.last_lsn = self.wal.append_batch(
                self.collection,
                deletes=batch.deletes,
                inserts=(r.to_document() for r in batch.inserts),
                dataset=name)
        with self.obs.tracer.span("update_batch", dataset=name,
                                  inserts=len(batch.inserts),
                                  deletes=len(batch.deletes)):
            for rid in batch.deletes:
                self.dataset.delete(rid)
                if self.store is not None:
                    self._coll().delete_one(rid)
            for record in batch.inserts:
                self.dataset.insert(record)
                if self.store is not None:
                    self._coll().insert_one(record.to_document())
            self.applied_batches += 1
            self.total_inserted += len(batch.inserts)
            self.total_deleted += len(batch.deletes)
            self._churn_since_rebuild += len(batch)
            lsm = getattr(self.dataset, "lsm", None)
            if lsm is not None:
                # The whole batch is now applied: any seal triggered by
                # a *later* batch may safely stamp this LSN as its
                # replay origin (a mid-batch seal keeps the previous
                # batch's LSN, so replay never splits a batch).
                lsm.applied_lsn = max(lsm.applied_lsn, self.last_lsn)
            if self._maybe_rebuild():
                self.rebuilds += 1
            elif lsm is not None and lsm.should_compact():
                # Checkpoint first so the store durably covers every
                # run record, then fold runs into the main tree and
                # prune the WAL segments the checkpoint released.
                self.flush()
                lsm.compact()
        self._batches_since_checkpoint += 1
        if self.checkpoint_every is not None \
                and self._batches_since_checkpoint \
                >= self.checkpoint_every:
            self.flush()
        elapsed = time.perf_counter() - start
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.updates.batches",
                             dataset=name).inc()
            registry.counter("storm.updates.inserted",
                             dataset=name).inc(len(batch.inserts))
            registry.counter("storm.updates.deleted",
                             dataset=name).inc(len(batch.deletes))
            registry.histogram("storm.updates.batch_seconds",
                               dataset=name).observe(elapsed)
        return UpdateResult(inserted=len(batch.inserts),
                            deleted=len(batch.deletes), seconds=elapsed)

    def _maybe_rebuild(self) -> bool:
        if self.rebuild_churn_fraction is None:
            return False
        threshold = max(1.0, self.rebuild_churn_fraction
                        * max(1, len(self.dataset.records)))
        if self._churn_since_rebuild < threshold:
            return False
        self.dataset.rebuild()
        self._churn_since_rebuild = 0
        return True

    # -- conveniences -----------------------------------------------------

    def insert(self, record: Record) -> UpdateResult:
        """Apply a single-record insert batch."""
        return self.apply(UpdateBatch(inserts=[record]))

    def delete(self, record_id: int) -> UpdateResult:
        """Apply a single-id delete batch."""
        return self.apply(UpdateBatch(deletes=[record_id]))

    def insert_stream(self, records: Iterable[Record],
                      batch_size: int = 256) -> list[UpdateResult]:
        """Apply a long insert stream in batches (the live-tweets demo)."""
        if batch_size < 1:
            raise UpdateError("batch_size must be >= 1")
        results = []
        pending: list[Record] = []
        for record in records:
            pending.append(record)
            if len(pending) >= batch_size:
                results.append(self.apply(UpdateBatch(inserts=pending)))
                pending = []
        if pending:
            results.append(self.apply(UpdateBatch(inserts=pending)))
        return results

    def flush(self) -> None:
        """Persist the backing collection (if any) to the DFS.

        With a WAL this is a full atomic checkpoint: the store flushes
        under the log's high-water LSN, a flush-commit record lands in
        the log, and fully covered segments are pruned."""
        if self.store is None or self.collection is None:
            return
        if self.wal is not None:
            checkpoint_store(self.store, self.wal, obs=self.obs,
                             lsm=getattr(self.dataset, "lsm", None))
        else:
            self.store.flush(self.collection)
        self._batches_since_checkpoint = 0
