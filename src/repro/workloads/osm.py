"""Synthetic OpenStreetMap-like point workload.

The paper's Figure 3 experiments run on the full OSM data set with a
billion points in range and estimate ``avg(altitude)``.  This generator
produces a scaled-down stand-in with the properties that matter for those
experiments:

* heavy spatial clustering (cities) over a sparse background, so R-tree
  node MBRs are non-trivial and canonical sets realistic;
* an ``altitude`` attribute with smooth spatial correlation plus noise —
  estimating its mean over a region is neither trivial (constant) nor
  degenerate (pure noise);
* a ``category`` tag so predicate-filtered estimators have something to
  chew on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.records import Record
from repro.workloads.generators import (WorkloadRNG,
                                        gaussian_cluster_points,
                                        uniform_points)

__all__ = ["OSMWorkload"]

_CATEGORIES = ("amenity", "highway", "building", "natural", "shop")


class OSMWorkload:
    """Generator for OSM-like geographic points with altitude.

    The region is a configurable lon/lat box (default: a continent-scale
    box).  ``cluster_fraction`` of points fall in Gaussian city clusters;
    the rest are uniform background.
    """

    def __init__(self, n: int = 100_000, seed: int = 17,
                 lon_range: tuple[float, float] = (-125.0, -65.0),
                 lat_range: tuple[float, float] = (25.0, 50.0),
                 clusters: int = 40, cluster_fraction: float = 0.7):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 <= cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        self.n = n
        self.seed = seed
        self.lon_range = lon_range
        self.lat_range = lat_range
        self.clusters = clusters
        self.cluster_fraction = cluster_fraction

    def _altitude(self, lon: np.ndarray, lat: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
        """Smooth terrain: ridges from a few sinusoids + noise, >= 0."""
        lon_span = self.lon_range[1] - self.lon_range[0]
        lat_span = self.lat_range[1] - self.lat_range[0]
        u = (lon - self.lon_range[0]) / lon_span
        v = (lat - self.lat_range[0]) / lat_span
        terrain = (1200.0 * np.sin(math.pi * u) ** 2
                   + 900.0 * np.cos(2.0 * math.pi * v)
                   + 600.0 * np.sin(3.0 * math.pi * (u + v)))
        noise = rng.normal(0.0, 120.0, size=len(lon))
        return np.maximum(0.0, terrain + 1000.0 + noise)

    def generate(self) -> list[Record]:
        """The full record list (ids 0..n-1), deterministic per seed."""
        rng = WorkloadRNG(self.seed)
        placement = rng.stream("placement")
        n_clustered = int(self.n * self.cluster_fraction)
        centers = uniform_points(rng.stream("centers"), self.clusters,
                                 self.lon_range, self.lat_range)
        weights = rng.stream("weights").dirichlet(
            np.ones(self.clusters) * 0.5)
        spreads = rng.stream("spreads").uniform(0.2, 1.5, self.clusters)
        clustered = gaussian_cluster_points(placement, n_clustered,
                                            centers, weights, spreads)
        background = uniform_points(rng.stream("background"),
                                    self.n - n_clustered,
                                    self.lon_range, self.lat_range)
        pts = np.vstack([clustered, background])
        # Clamp cluster tails back into the region.
        pts[:, 0] = np.clip(pts[:, 0], *self.lon_range)
        pts[:, 1] = np.clip(pts[:, 1], *self.lat_range)
        order = rng.stream("shuffle").permutation(self.n)
        pts = pts[order]
        altitude = self._altitude(pts[:, 0], pts[:, 1],
                                  rng.stream("altitude"))
        categories = rng.stream("category").choice(
            len(_CATEGORIES), size=self.n,
            p=(0.35, 0.30, 0.20, 0.10, 0.05))
        timestamps = rng.stream("time").uniform(0.0, 86_400.0 * 365,
                                                size=self.n)
        return [
            Record(record_id=i, lon=float(pts[i, 0]), lat=float(pts[i, 1]),
                   t=float(timestamps[i]),
                   attrs={"altitude": float(altitude[i]),
                          "category": _CATEGORIES[categories[i]]})
            for i in range(self.n)
        ]

    def dense_query_box(self, selectivity_hint: float = 0.25
                        ) -> tuple[float, float, float, float]:
        """A lon/lat box centred on the region covering roughly the given
        fraction of the area — the experiments' canonical query."""
        frac = math.sqrt(max(1e-6, min(1.0, selectivity_hint)))
        lon_c = (self.lon_range[0] + self.lon_range[1]) / 2
        lat_c = (self.lat_range[0] + self.lat_range[1]) / 2
        half_lon = (self.lon_range[1] - self.lon_range[0]) * frac / 2
        half_lat = (self.lat_range[1] - self.lat_range[0]) * frac / 2
        return (lon_c - half_lon, lat_c - half_lat,
                lon_c + half_lon, lat_c + half_lat)
