"""Low-level deterministic random generation primitives.

All workloads derive their randomness from :class:`WorkloadRNG`, a thin
wrapper that hands out independent numpy generators per named purpose —
so adding a new field to a generator never perturbs the values of
existing ones (experiment stability across library versions).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["WorkloadRNG", "uniform_points", "gaussian_cluster_points",
           "zipf_weights"]


class WorkloadRNG:
    """Named sub-streams of deterministic randomness."""

    def __init__(self, seed: int):
        self.seed = seed

    def stream(self, purpose: str) -> np.random.Generator:
        """An independent generator for one named purpose.

        The purpose is hashed with crc32 — NOT Python's ``hash()``,
        which is salted per process and would break run-to-run
        determinism of the workloads.
        """
        seed_seq = np.random.SeedSequence(
            [self.seed, zlib.crc32(purpose.encode())])
        return np.random.default_rng(seed_seq)


def uniform_points(rng: np.random.Generator, n: int,
                   lon_range: tuple[float, float],
                   lat_range: tuple[float, float]) -> np.ndarray:
    """(n, 2) uniformly random lon/lat points."""
    lon = rng.uniform(lon_range[0], lon_range[1], size=n)
    lat = rng.uniform(lat_range[0], lat_range[1], size=n)
    return np.column_stack([lon, lat])


def gaussian_cluster_points(rng: np.random.Generator, n: int,
                            centers: np.ndarray, weights: np.ndarray,
                            spreads: np.ndarray) -> np.ndarray:
    """(n, 2) points from a mixture of isotropic Gaussians.

    ``centers`` is (c, 2); ``weights`` (c,) sums to 1; ``spreads`` (c,)
    are per-cluster standard deviations.
    """
    assignments = rng.choice(len(centers), size=n, p=weights)
    noise = rng.standard_normal((n, 2))
    return centers[assignments] + noise * spreads[assignments, None]


def zipf_weights(vocabulary_size: int, exponent: float = 1.1
                 ) -> np.ndarray:
    """Normalised Zipf rank weights (word-frequency model)."""
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    w = ranks ** (-exponent)
    return w / w.sum()
