"""Synthetic geo-tweet workload.

Stands in for the paper's live Twitter feed (July 2013 onward).  Produces
records with ``user``, ``text`` and a timestamp, with the structure the
demos exercise:

* users live in weighted city clusters (Salt Lake City is among them, so
  the Figure 5 "zoom from SLC to the USA" KDE demo works);
* each user moves on a smooth random walk, so per-user trajectories are
  reconstructable (Figure 6a);
* tweet text draws terms from a Zipf vocabulary; inside the **Atlanta
  snowstorm window** (a configurable spatio-temporal box) the vocabulary
  is spiked with storm terms — ``snow ice outage shit hell why`` — which
  is what the short-text estimator should surface (Figure 6b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.records import Record, STRange
from repro.workloads.generators import WorkloadRNG, zipf_weights

__all__ = ["TwitterWorkload", "CITIES", "STORM_TERMS"]

# (name, lon, lat, weight, spread_degrees)
CITIES = (
    ("nyc", -74.006, 40.713, 0.22, 0.25),
    ("la", -118.243, 34.052, 0.16, 0.30),
    ("chicago", -87.630, 41.878, 0.12, 0.22),
    ("houston", -95.369, 29.760, 0.10, 0.25),
    ("atlanta", -84.388, 33.749, 0.10, 0.20),
    ("slc", -111.891, 40.761, 0.08, 0.15),
    ("seattle", -122.332, 47.606, 0.08, 0.18),
    ("miami", -80.192, 25.762, 0.07, 0.15),
    ("denver", -104.990, 39.739, 0.07, 0.18),
)

STORM_TERMS = ("snow", "ice", "outage", "shit", "hell", "why", "stuck",
               "cold", "storm", "power")

_BASE_VOCAB_SIZE = 600


def _base_vocabulary() -> list[str]:
    """A deterministic everyday vocabulary (word0..wordN plus a few real
    anchors so output reads plausibly)."""
    anchors = ["coffee", "lunch", "game", "work", "traffic", "music",
               "friday", "weekend", "love", "food", "movie", "gym",
               "school", "rain", "sun", "party", "happy", "tired"]
    return anchors + [f"word{i}" for i in range(_BASE_VOCAB_SIZE
                                                - len(anchors))]


@dataclass(frozen=True)
class _Anomaly:
    """A spatio-temporal event window with spiked vocabulary."""

    lon_lo: float
    lat_lo: float
    lon_hi: float
    lat_hi: float
    t_lo: float
    t_hi: float
    terms: tuple[str, ...]
    intensity: float  # probability a tweet in-window uses event terms

    def contains(self, lon: float, lat: float, t: float) -> bool:
        """Whether a (lon, lat, t) point lies inside the event window."""
        return (self.lon_lo <= lon <= self.lon_hi
                and self.lat_lo <= lat <= self.lat_hi
                and self.t_lo <= t <= self.t_hi)


class TwitterWorkload:
    """Generator for synthetic geo-tweets over a time window.

    ``time_span`` is the covered duration in seconds (default 30 days).
    The Atlanta snowstorm occupies days 10–13 of the window around
    downtown Atlanta, mirroring February 10–13, 2014.
    """

    DAY = 86_400.0

    def __init__(self, n: int = 50_000, users: int = 2_000, seed: int = 23,
                 time_span: float = 30 * 86_400.0,
                 words_per_tweet: int = 8):
        if n < 1 or users < 1:
            raise ValueError("n and users must be >= 1")
        self.n = n
        self.users = users
        self.seed = seed
        self.time_span = time_span
        self.words_per_tweet = words_per_tweet
        self.vocabulary = _base_vocabulary()
        self.anomaly = _Anomaly(
            lon_lo=-84.55, lat_lo=33.60, lon_hi=-84.25, lat_hi=33.90,
            t_lo=10 * self.DAY, t_hi=13 * self.DAY,
            terms=STORM_TERMS, intensity=0.8)

    # -- helpers ----------------------------------------------------------

    def snowstorm_range(self) -> STRange:
        """The Figure 6b query window (downtown Atlanta, storm days)."""
        a = self.anomaly
        return STRange(a.lon_lo, a.lat_lo, a.lon_hi, a.lat_hi,
                       a.t_lo, a.t_hi)

    def slc_range(self, days: float = 30.0) -> STRange:
        """Salt Lake City over the last ``days`` (Figure 5 zoom-in)."""
        return STRange(-112.3, 40.4, -111.5, 41.1,
                       max(0.0, self.time_span - days * self.DAY),
                       self.time_span)

    def usa_range(self) -> STRange:
        """Continental-scale window (Figure 5 zoom-out)."""
        return STRange(-125.0, 24.0, -66.0, 50.0, 0.0, self.time_span)

    def background_frequencies(self) -> dict[str, float]:
        """Expected everyday document frequency per term (for lift)."""
        weights = zipf_weights(len(self.vocabulary))
        # P(term appears in a tweet of w words) ≈ 1 - (1-p)^w.
        w = self.words_per_tweet
        return {term: float(1.0 - (1.0 - p) ** w)
                for term, p in zip(self.vocabulary, weights)}

    # -- generation ----------------------------------------------------------

    def generate(self) -> list[Record]:
        """The full record list, deterministic per seed."""
        rng = WorkloadRNG(self.seed)
        city_idx = rng.stream("homes").choice(
            len(CITIES), size=self.users,
            p=np.array([c[3] for c in CITIES])
            / sum(c[3] for c in CITIES))
        user_city = np.array(city_idx)
        tweet_user = rng.stream("authors").integers(0, self.users,
                                                    size=self.n)
        times = np.sort(rng.stream("times").uniform(0.0, self.time_span,
                                                    size=self.n))
        # Per-user smooth random walk around the home city.
        walk_rng = rng.stream("walk")
        user_pos = np.empty((self.users, 2))
        for u in range(self.users):
            _, lon, lat, _, spread = CITIES[user_city[u]]
            user_pos[u] = (lon + walk_rng.normal(0, spread),
                           lat + walk_rng.normal(0, spread))
        step_rng = rng.stream("steps")
        word_rng = rng.stream("words")
        vocab = self.vocabulary
        zipf = zipf_weights(len(vocab))
        records: list[Record] = []
        for i in range(self.n):
            u = int(tweet_user[i])
            # Drift toward home + noise: an Ornstein-Uhlenbeck-ish walk.
            _, home_lon, home_lat, _, spread = CITIES[user_city[u]]
            pull = 0.15
            user_pos[u, 0] += (pull * (home_lon - user_pos[u, 0])
                               + step_rng.normal(0, spread * 0.2))
            user_pos[u, 1] += (pull * (home_lat - user_pos[u, 1])
                               + step_rng.normal(0, spread * 0.2))
            lon = float(user_pos[u, 0])
            lat = float(user_pos[u, 1])
            t = float(times[i])
            words = list(word_rng.choice(len(vocab),
                                         size=self.words_per_tweet,
                                         p=zipf))
            text_terms = [vocab[w] for w in words]
            if self.anomaly.contains(lon, lat, t) \
                    and word_rng.random() < self.anomaly.intensity:
                spikes = word_rng.choice(len(self.anomaly.terms),
                                         size=3, replace=False)
                for slot, spike in enumerate(spikes):
                    text_terms[slot] = self.anomaly.terms[spike]
            records.append(Record(
                record_id=i, lon=lon, lat=lat, t=t,
                attrs={"user": f"user{u}", "text": " ".join(text_terms)}))
        return records

    def user_name(self, index: int) -> str:
        """Canonical user attribute value for a user index."""
        return f"user{index}"
