"""Synthetic MesoWest-like weather measurement workload.

Stands in for the paper's national atmospheric measurement network
(~40,000 stations, http://mesowest.utah.edu/).  Stations get fixed
locations and elevations; each produces measurements over a time window
with physically plausible structure: a latitude gradient, an elevation
lapse rate, a diurnal cycle and noise.  The demo query — "average
temperature reading over a spatio-temporal region" — therefore has a
meaningful, smoothly varying ground truth.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.records import Record
from repro.workloads.generators import WorkloadRNG, uniform_points

__all__ = ["MesoWestWorkload"]


class MesoWestWorkload:
    """Generator for a station network plus its measurement stream."""

    DAY = 86_400.0

    def __init__(self, stations: int = 2_000,
                 measurements_per_station: int = 50, seed: int = 29,
                 lon_range: tuple[float, float] = (-125.0, -65.0),
                 lat_range: tuple[float, float] = (25.0, 50.0),
                 time_span: float = 90 * 86_400.0):
        if stations < 1 or measurements_per_station < 1:
            raise ValueError("need at least one station and measurement")
        self.stations = stations
        self.measurements_per_station = measurements_per_station
        self.seed = seed
        self.lon_range = lon_range
        self.lat_range = lat_range
        self.time_span = time_span

    def _temperature(self, lat: float, elevation: float, t: float,
                     noise: float) -> float:
        """°C: latitude gradient + lapse rate + diurnal cycle + noise."""
        lat_term = 35.0 - 0.9 * (lat - self.lat_range[0])
        lapse = -6.5 * elevation / 1000.0
        diurnal = 6.0 * math.sin(2.0 * math.pi * (t % self.DAY)
                                 / self.DAY - math.pi / 2)
        seasonal = 4.0 * math.sin(2.0 * math.pi * t
                                  / (365.0 * self.DAY))
        return lat_term + lapse + diurnal + seasonal + noise

    def generate(self) -> list[Record]:
        """The full record list, deterministic per seed."""
        rng = WorkloadRNG(self.seed)
        locs = uniform_points(rng.stream("stations"), self.stations,
                              self.lon_range, self.lat_range)
        elevations = rng.stream("elevation").gamma(
            2.0, 500.0, size=self.stations)
        time_rng = rng.stream("times")
        noise_rng = rng.stream("noise")
        humidity_rng = rng.stream("humidity")
        wind_rng = rng.stream("wind")
        records: list[Record] = []
        rid = 0
        for s in range(self.stations):
            lon, lat = float(locs[s, 0]), float(locs[s, 1])
            elev = float(elevations[s])
            times = np.sort(time_rng.uniform(
                0.0, self.time_span, size=self.measurements_per_station))
            for t in times:
                t = float(t)
                temp = self._temperature(lat, elev, t,
                                         float(noise_rng.normal(0, 1.5)))
                records.append(Record(
                    record_id=rid, lon=lon, lat=lat, t=t,
                    attrs={
                        "station": f"ST{s:05d}",
                        "temperature": round(temp, 2),
                        "elevation": round(elev, 1),
                        "humidity": round(float(
                            humidity_rng.uniform(15, 95)), 1),
                        "wind_speed": round(float(
                            wind_rng.gamma(2.0, 2.5)), 1),
                    }))
                rid += 1
        return records
