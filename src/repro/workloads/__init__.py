"""Synthetic workload generators standing in for the paper's data sets.

The paper evaluates on the full OpenStreetMap planet file and demos on
live Twitter and MesoWest feeds — none of which are available offline, so
each generator here produces a statistically analogous synthetic data set
(documented in DESIGN.md's substitution table):

``osm``
    City-clustered geographic points with a spatially-correlated
    ``altitude`` attribute (drives Figure 3a/3b).
``twitter``
    Geo-tweets: users with home cities and mobility, Zipf vocabulary,
    plus an "Atlanta snowstorm" anomaly window (drives the KDE,
    trajectory and short-text demos of Figures 5–6).
``mesowest``
    A weather-station network with temperature/humidity/wind measurement
    streams (drives the basic-aggregation demo).
``electricity``
    NYC-style electricity meter readings (the introduction's running
    example).

Everything is deterministic under a seed.
"""

from repro.workloads.electricity import ElectricityWorkload
from repro.workloads.generators import (WorkloadRNG, gaussian_cluster_points,
                                        uniform_points, zipf_weights)
from repro.workloads.mesowest import MesoWestWorkload
from repro.workloads.osm import OSMWorkload
from repro.workloads.twitter import TwitterWorkload

__all__ = [
    "ElectricityWorkload",
    "MesoWestWorkload",
    "OSMWorkload",
    "TwitterWorkload",
    "WorkloadRNG",
    "gaussian_cluster_points",
    "uniform_points",
    "zipf_weights",
]
