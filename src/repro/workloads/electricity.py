"""Synthetic NYC electricity-usage workload.

The paper's introduction motivates STORM with a user exploring electricity
usage across NYC areas and time windows ("average electricity usage per
unit ... between January 5 and March 5", reported as "973 kWh with a
standard deviation of 25 kWh and 95% confidence").  This generator builds
that data set: metered units across NYC boroughs with periodic kWh
readings whose mean varies by borough and season.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.records import Record, STRange
from repro.workloads.generators import WorkloadRNG, \
    gaussian_cluster_points

__all__ = ["ElectricityWorkload", "BOROUGHS"]

# (name, lon, lat, weight, spread, mean kWh)
BOROUGHS = (
    ("manhattan", -73.971, 40.776, 0.30, 0.04, 1050.0),
    ("brooklyn", -73.950, 40.650, 0.25, 0.06, 920.0),
    ("queens", -73.795, 40.728, 0.22, 0.07, 880.0),
    ("bronx", -73.865, 40.845, 0.13, 0.05, 860.0),
    ("staten_island", -74.150, 40.580, 0.10, 0.05, 900.0),
)


class ElectricityWorkload:
    """Metered units in NYC with quarterly usage readings."""

    DAY = 86_400.0

    def __init__(self, units: int = 5_000, readings_per_unit: int = 12,
                 seed: int = 31, time_span: float = 90 * 86_400.0):
        if units < 1 or readings_per_unit < 1:
            raise ValueError("need at least one unit and reading")
        self.units = units
        self.readings_per_unit = readings_per_unit
        self.seed = seed
        self.time_span = time_span

    def first_quarter_range(self, lon_lo: float = -74.02,
                            lat_lo: float = 40.70,
                            lon_hi: float = -73.93,
                            lat_hi: float = 40.80) -> STRange:
        """The intro's query: a Manhattan-ish area, Jan 5 – Mar 5."""
        return STRange(lon_lo, lat_lo, lon_hi, lat_hi,
                       4 * self.DAY, 63 * self.DAY)

    def generate(self) -> list[Record]:
        """The full record list, deterministic per seed."""
        rng = WorkloadRNG(self.seed)
        centers = np.array([[b[1], b[2]] for b in BOROUGHS])
        weights = np.array([b[3] for b in BOROUGHS])
        weights = weights / weights.sum()
        spreads = np.array([b[4] for b in BOROUGHS])
        locs = gaussian_cluster_points(rng.stream("units"), self.units,
                                       centers, weights, spreads)
        borough_idx = rng.stream("borough").choice(
            len(BOROUGHS), size=self.units, p=weights)
        base_usage = np.array([BOROUGHS[i][5] for i in borough_idx])
        unit_factor = rng.stream("unit_factor").lognormal(
            0.0, 0.25, size=self.units)
        time_rng = rng.stream("times")
        noise_rng = rng.stream("noise")
        records: list[Record] = []
        rid = 0
        for u in range(self.units):
            lon, lat = float(locs[u, 0]), float(locs[u, 1])
            times = np.sort(time_rng.uniform(
                0.0, self.time_span, size=self.readings_per_unit))
            for t in times:
                t = float(t)
                seasonal = 1.0 + 0.15 * math.cos(
                    2.0 * math.pi * t / (365.0 * self.DAY))
                usage = (base_usage[u] * unit_factor[u] * seasonal
                         + float(noise_rng.normal(0.0, 40.0)))
                records.append(Record(
                    record_id=rid, lon=lon, lat=lat, t=t,
                    attrs={
                        "unit": f"U{u:06d}",
                        "borough": BOROUGHS[borough_idx[u]][0],
                        "kwh": round(max(0.0, usage), 1),
                    }))
                rid += 1
        return records
