"""Sustained-ingest bench: per-record index inserts vs the LSM path.

``python -m repro.bench.updates [OUT.json]`` measures the tiered
ingest path at two layers:

* **index path** — the layer this subsystem replaces.  Identical
  insert streams drive ``Dataset.insert`` with and without an
  attached :class:`~repro.storage.lsm.LSMTree`: the baseline pays a
  per-record Hilbert R-tree insert (and a structural version bump)
  per call, the tiered path pays a memtable put with seals and at
  least one full compaction amortised inside the measured window.
  ``speedup_vs_per_record`` comes from here — durability costs (WAL
  append, document-store write) are identical constants on both
  sides, so including them would only dilute the comparison of the
  code that actually changed.
* **durable pipeline** — the full stack (UpdateManager → WAL →
  DocumentStore → SimulatedDFS) with queries interleaved between
  batches, run both ways.  This is where the *operational* figures
  come from: p50/p99 query latency observed **during** ingest and the
  canonical-set cache hit rate (non-zero only when ingest stops
  thrashing the cache).

Every phase ends with an exactness check that drains one full
without-replacement stream and compares it record-for-record against
brute-force truth, so the speedup is never bought with a wrong
sampler.

``tools/check_bench.py`` gates ``ingest.inserts_per_sec`` and
``ingest.speedup_vs_per_record`` downward and
``ingest.query_p99_seconds`` upward against the committed baseline.
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.core.engine import Dataset
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.lsm import LSMTree
from repro.storage.recovery import checkpoint_store
from repro.storage.wal import WriteAheadLog
from repro.updates.manager import UpdateBatch, UpdateManager

__all__ = ["run_updates_bench", "main"]

N_SEED_RECORDS = 10_000
#: Index-path phase: enough inserts that the window contains ~23
#: seals and one full compaction — "sustained", not burst.
N_INDEX_INSERTS = 24_000
INDEX_MEMTABLE_LIMIT = 1024
INDEX_COMPACT_AFTER_RUNS = 12
#: Index-path timing is best-of-N (exactness must hold on every
#: repeat) so the hard ``ok`` gate measures the code, not scheduler
#: jitter on shared CI runners.
INDEX_REPEATS = 3
BATCHES = 40
BATCH_INSERTS = 100
QUERY_EVERY = 2          # a query between every other batch
QUERY_K = 64
MEMTABLE_LIMIT = 512
COMPACT_AFTER_RUNS = 4
SEGMENT_BYTES = 64 * 1024
#: The acceptance bar: tiered ingest must sustain at least this many
#: times the per-record baseline's inserts/s on the index path.
TARGET_SPEEDUP = 10.0
QUERY_RECT = Rect((25.0, 25.0), (75.0, 75.0))


def _records(n: int, seed: int, start_id: int = 0) -> list[Record]:
    rng = random.Random(seed)
    return [Record(record_id=start_id + i,
                   lon=rng.uniform(0.0, 100.0),
                   lat=rng.uniform(0.0, 100.0),
                   t=rng.uniform(0.0, 1000.0),
                   attrs={"v": round(rng.gauss(10.0, 2.0), 6)})
            for i in range(n)]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _query_once(dataset: Dataset, rng: random.Random) -> float:
    """One timed sample query (range_count + a K-sample batch)."""
    start = time.perf_counter()
    sampler = dataset.sampler_for(QUERY_RECT)
    sampler.range_count(QUERY_RECT)
    stream = sampler.open_stream(QUERY_RECT, rng)
    sampler.draw_batch(stream, QUERY_K)
    close = getattr(stream, "close", None)
    if close is not None:
        close()
    return time.perf_counter() - start


def _exactness_check(dataset: Dataset, seed: int) -> bool:
    """Drain one WOR stream and diff against brute-force truth."""
    sampler = dataset.sampler_for(QUERY_RECT)
    q = sampler.range_count(QUERY_RECT)
    stream = sampler.open_stream(QUERY_RECT, random.Random(seed))
    got = {e.item_id for e in stream}
    truth = {rid for rid, r in dataset.records.items()
             if QUERY_RECT.contains_point(r.key(dataset.dims))}
    return q == len(truth) and got == truth


def _index_phase(with_lsm: bool, seed: int) -> dict:
    """Best-of-N pure index-path inserts (see :data:`INDEX_REPEATS`)."""
    best: dict | None = None
    exact = True
    for rep in range(INDEX_REPEATS):
        out = _index_phase_once(with_lsm, seed + rep)
        exact = exact and out["exact"]
        if best is None or out["insert_seconds"] < \
                best["insert_seconds"]:
            best = out
    assert best is not None
    best["exact"] = exact
    best["repeats"] = INDEX_REPEATS
    return best


def _index_phase_once(with_lsm: bool, seed: int) -> dict:
    """Pure index-path inserts: the layer the LSM tree replaces."""
    base = _records(N_SEED_RECORDS, seed)
    dataset = Dataset("index", base, dims=2, rs_buffer_size=32,
                      build_ls=False, seed=seed)
    lsm = None
    if with_lsm:
        lsm = LSMTree(dataset,
                      memtable_limit=INDEX_MEMTABLE_LIMIT,
                      compact_after_runs=INDEX_COMPACT_AFTER_RUNS)
        dataset.attach_lsm(lsm)
    new = _records(N_INDEX_INSERTS, seed * 3 + 5,
                   start_id=N_SEED_RECORDS)
    start = time.perf_counter()
    for record in new:
        dataset.insert(record)
        if lsm is not None and lsm.should_compact():
            lsm.compact()
    elapsed = time.perf_counter() - start
    out = {
        "phase": "lsm" if with_lsm else "per-record-baseline",
        "seed_records": N_SEED_RECORDS,
        "inserted": N_INDEX_INSERTS,
        "insert_seconds": elapsed,
        "inserts_per_sec": N_INDEX_INSERTS / elapsed
        if elapsed > 0 else 0.0,
        "exact": _exactness_check(dataset, seed * 17 + 3),
    }
    if lsm is not None:
        out["seals"] = lsm.seals
        out["compactions"] = lsm.compactions
        out["tier_shape"] = lsm.tier_shape()
    return out


def _ingest_phase(with_lsm: bool, seed: int) -> dict:
    """One full ingest run; identical durability stack either way."""
    dfs = SimulatedDFS(machines=4, replication=2)
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
    base = _records(N_SEED_RECORDS, seed)
    dataset = Dataset("ingest", base, dims=2, rs_buffer_size=32,
                      build_ls=False, seed=seed)
    coll = store.collection("ingest")
    coll.insert_many(r.to_document() for r in base)
    checkpoint_store(store, wal)
    lsm = None
    if with_lsm:
        lsm = LSMTree.open(dataset, dfs=dfs, wal=wal,
                           memtable_limit=MEMTABLE_LIMIT,
                           compact_after_runs=COMPACT_AFTER_RUNS)
    manager = UpdateManager(dataset, store=store,
                            collection="ingest", wal=wal)
    qrng = random.Random(seed * 31 + 1)
    insert_seconds = 0.0
    latencies: list[float] = []
    next_id = N_SEED_RECORDS
    hits0 = dataset.tree.canon_hits
    misses0 = dataset.tree.canon_misses
    for b in range(BATCHES):
        batch = UpdateBatch(inserts=_records(
            BATCH_INSERTS, seed * 77 + b, start_id=next_id))
        next_id += BATCH_INSERTS
        start = time.perf_counter()
        manager.apply(batch)
        insert_seconds += time.perf_counter() - start
        if b % QUERY_EVERY == 0:
            latencies.append(_query_once(dataset, qrng))
    hits = dataset.tree.canon_hits - hits0
    misses = dataset.tree.canon_misses - misses0
    looked_up = hits + misses
    total_inserts = BATCHES * BATCH_INSERTS
    out = {
        "phase": "lsm" if with_lsm else "per-record-baseline",
        "seed_records": N_SEED_RECORDS,
        "inserted": total_inserts,
        "insert_seconds": insert_seconds,
        "inserts_per_sec": total_inserts / insert_seconds
        if insert_seconds > 0 else 0.0,
        "queries_during_ingest": len(latencies),
        "query_p50_seconds": _percentile(latencies, 0.50),
        "query_p99_seconds": _percentile(latencies, 0.99),
        "canon_hits": hits,
        "canon_misses": misses,
        "canon_hit_rate": hits / looked_up if looked_up else 0.0,
        "exact": _exactness_check(dataset, seed * 13 + 7),
    }
    if lsm is not None:
        out["tier_shape"] = lsm.tier_shape()
    return out


def run_updates_bench(seed: int = 29) -> dict:
    """All four phases plus the derived comparison figures."""
    idx_base = _index_phase(False, seed)
    idx_lsm = _index_phase(True, seed)
    baseline = _ingest_phase(False, seed)
    lsm = _ingest_phase(True, seed)
    speedup = idx_lsm["inserts_per_sec"] / idx_base["inserts_per_sec"] \
        if idx_base["inserts_per_sec"] > 0 else 0.0
    exact = all(p["exact"] for p in (idx_base, idx_lsm, baseline, lsm))
    report = {
        "benchmark": "sustained-ingest",
        "seed": seed,
        "batches": BATCHES,
        "batch_inserts": BATCH_INSERTS,
        "index_path": {"baseline": idx_base, "lsm": idx_lsm,
                       "speedup": speedup},
        "baseline": baseline,
        "lsm": lsm,
        "ingest": {
            "inserts_per_sec": idx_lsm["inserts_per_sec"],
            "speedup_vs_per_record": speedup,
            "query_p50_seconds": lsm["query_p50_seconds"],
            "query_p99_seconds": lsm["query_p99_seconds"],
            "canon_hit_rate": lsm["canon_hit_rate"],
        },
        "ok": exact and speedup >= TARGET_SPEEDUP
        and lsm["canon_hit_rate"] > 0.0,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: run both phases, print a summary, write the report."""
    args = sys.argv[1:] if argv is None else argv
    out_path = args[0] if args else "BENCH_updates.json"
    report = run_updates_bench()
    idx = report["index_path"]
    for phase in (idx["baseline"], idx["lsm"]):
        extra = ""
        if "seals" in phase:
            extra = (f"  seals={phase['seals']} "
                     f"compactions={phase['compactions']}")
        print(f"index {phase['phase']}: {phase['inserted']} inserts "
              f"in {phase['insert_seconds']:.3f}s "
              f"({phase['inserts_per_sec']:,.0f}/s)  "
              f"exact={phase['exact']}{extra}")
    for phase in (report["baseline"], report["lsm"]):
        print(f"durable {phase['phase']}: {phase['inserted']} inserts "
              f"in {phase['insert_seconds']:.3f}s "
              f"({phase['inserts_per_sec']:,.0f}/s)  "
              f"p99 query {phase['query_p99_seconds'] * 1e3:.2f}ms  "
              f"canon hit rate {phase['canon_hit_rate']:.2f}  "
              f"exact={phase['exact']}")
    ing = report["ingest"]
    print(f"speedup vs per-record: {ing['speedup_vs_per_record']:.1f}x"
          f"  (target >= {TARGET_SPEEDUP:.0f}x)  ok={report['ok']}")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
