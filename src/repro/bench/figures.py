"""storm-bench: regenerate the paper's figures from the command line.

Usage::

    storm-bench fig3a [--n 100000]
    storm-bench fig3b [--n 100000]
    storm-bench all   [--n 100000]

Each experiment prints its result table and an ASCII rendition of the
paper's plot.  EXPERIMENTS.md records a captured run.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import (BufferAblationRunner, Fig3aRunner,
                                 Fig3bRunner, ScalingRunner,
                                 build_osm_dataset)

__all__ = ["main"]


def run_fig3a(n: int, seed: int) -> None:
    """Run and print the Figure 3(a) experiment at size n."""
    dataset, workload = build_osm_dataset(n=n, seed=seed)
    result = Fig3aRunner(dataset, workload).run()
    print(result.table())
    print()
    print(result.chart(x_label="k/q (%)", y_label="simulated seconds",
                       log_y=True))
    print(result.notes)


def run_fig3b(n: int, seed: int) -> None:
    """Run and print the Figure 3(b) experiment at size n."""
    dataset, workload = build_osm_dataset(n=n, seed=seed)
    result = Fig3bRunner(dataset, workload).run()
    print(result.table())
    print()
    print(result.chart(x_label="time (ms)", y_label="relative error"))
    print(result.notes)


def run_buffer_ablation(n: int, seed: int) -> None:
    """Run and print the RS-tree buffer-size ablation."""
    dataset, workload = build_osm_dataset(n=n, seed=seed)
    result = BufferAblationRunner(dataset, workload).run()
    print(result.table())


def run_scaling(n: int, seed: int) -> None:
    """Run and print the distributed worker-scaling sweep."""
    dataset, workload = build_osm_dataset(n=n, seed=seed)
    result = ScalingRunner(dataset, workload).run()
    print(result.table())


def main(argv: list[str] | None = None) -> int:
    """storm-bench entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="storm-bench",
        description="Regenerate the STORM paper's evaluation figures "
                    "and the reproduction's ablations.")
    parser.add_argument("experiment",
                        choices=["fig3a", "fig3b", "buffer",
                                 "scaling", "all"])
    parser.add_argument("--n", type=int, default=100_000,
                        help="synthetic OSM size (default 100k)")
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)
    print(f"building synthetic OSM (n={args.n}) ...", file=sys.stderr)
    ran = False
    if args.experiment in ("fig3a", "all"):
        run_fig3a(args.n, args.seed)
        ran = True
    if args.experiment in ("fig3b", "all"):
        if ran:
            print()
        run_fig3b(args.n, args.seed)
        ran = True
    if args.experiment in ("buffer", "all"):
        if ran:
            print()
        run_buffer_ablation(args.n, args.seed)
        ran = True
    if args.experiment in ("scaling", "all"):
        if ran:
            print()
        run_scaling(args.n, args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
