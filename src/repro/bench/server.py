"""Query-service bench: concurrent tenants over the HTTP API.

``python -m repro.bench.server [OUT.json]`` stands up the real stack —
:class:`~repro.server.http.StormServer` on an ephemeral port over a
:class:`~repro.server.service.QueryService` and one engine — and
measures it the way a deployment would see it:

* **streams** — 8 tenants each run a round of progressive NDJSON
  streams concurrently; the figure is completed streams per second of
  wall clock, with every stream checked for monotone progress and a
  clean ``end`` frame;
* **one-shot latency** — ``POST /v1/query`` calls fired from
  concurrent clients; p50/p99 of the observed wall time;
* **fairness** — Jain's index ``(Σx)² / (n·Σx²)`` over per-tenant
  scheduler quanta read back from ``storm.server.quanta`` (equal
  weights, so 1.0 is perfect and the gate trips below 0.8);
* **admission** — a deliberately tiny service is saturated and must
  answer 429 (the bench fails if overload is silently absorbed);
* **correctness** — the same seeded stream run alone and run among
  seven noisy neighbours must produce *identical* final estimates
  (scheduling changes when a stream draws, never what).

``tools/check_bench.py`` gates ``server.streams_per_sec`` and
``server.fairness_index`` downward and ``server.query_p50_seconds`` /
``server.query_p99_seconds`` upward against the committed
``BENCH_server.json`` baseline.
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
import urllib.request

from repro.core.engine import StormEngine
from repro.core.records import Record
from repro.server import (QueryService, ServerConfig, StormServer)
from repro.server.protocol import ApiError

__all__ = ["run_server_bench", "main"]

N_RECORDS = 20_000
TENANTS = 8
STREAMS_PER_TENANT = 3
STREAM_QUERY = ("ESTIMATE AVG(v) FROM pts "
                "WHERE REGION(5, 5, 95, 95) SAMPLES 2000")
ONESHOT_QUERY = ("ESTIMATE AVG(v) FROM pts "
                 "WHERE REGION(10, 10, 80, 80) SAMPLES 500")
N_ONESHOT = 48
ONESHOT_CLIENTS = 8
QUANTUM = 64
FAIRNESS_FLOOR = 0.8


def _records(n: int, seed: int = 5) -> list[Record]:
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10, 2)})
            for i in range(n)]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


def _post(url: str, path: str, body: dict, tenant: str,
          stream: bool = False):
    req = urllib.request.Request(
        url + path, method="POST",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json",
                 "X-Storm-Tenant": tenant})
    with urllib.request.urlopen(req, timeout=300) as resp:
        payload = resp.read()
    if stream:
        return [json.loads(line) for line in payload.splitlines()]
    return json.loads(payload)


def _make_server(**config_kwargs):
    engine = StormEngine(seed=1)
    engine.create_dataset("pts", _records(N_RECORDS), dims=2,
                          build_ls=False)
    config = ServerConfig(max_streams=8, quantum=QUANTUM,
                          **config_kwargs)
    service = QueryService(engine, config)
    return StormServer(service).start()


def _stream_phase(server: StormServer) -> dict:
    """Concurrent progressive streams; throughput + validity."""
    results: list[dict] = []
    errors: list[str] = []
    lock = threading.Lock()

    def client(tenant: str, seed: int) -> None:
        try:
            frames = _post(server.url, "/v1/stream",
                           {"query": STREAM_QUERY, "seed": seed},
                           tenant, stream=True)
            progress = [f["k"] for f in frames
                        if f["frame"] == "progress"]
            ok = (bool(frames)
                  and frames[-1]["frame"] == "end"
                  and progress == sorted(set(progress)))
            with lock:
                results.append({"ok": ok, "frames": len(frames)})
        except Exception as exc:  # noqa: BLE001 — tallied below
            with lock:
                errors.append(f"{tenant}: {exc}")

    threads = []
    started = time.perf_counter()
    for round_no in range(STREAMS_PER_TENANT):
        for t in range(TENANTS):
            threads.append(threading.Thread(
                target=client,
                args=(f"tenant-{t}", 1000 * round_no + t)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    completed = sum(1 for r in results if r["ok"])
    return {
        "streams": len(threads),
        "completed": completed,
        "errors": errors,
        "elapsed_seconds": elapsed,
        "streams_per_sec": completed / elapsed if elapsed else 0.0,
        "frames_total": sum(r["frames"] for r in results),
    }


def _oneshot_phase(server: StormServer) -> dict:
    """p50/p99 of concurrent one-shot query calls."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    work = list(range(N_ONESHOT))

    def client(worker: int) -> None:
        while True:
            with lock:
                if not work:
                    return
                job = work.pop()
            begin = time.perf_counter()
            try:
                doc = _post(server.url, "/v1/query",
                            {"query": ONESHOT_QUERY,
                             "seed": 7000 + job},
                            f"tenant-{worker}")
                took = time.perf_counter() - begin
                ok = doc["result"]["frame"] == "end"
            except Exception as exc:  # noqa: BLE001 — tallied
                with lock:
                    errors.append(str(exc))
                continue
            with lock:
                if ok:
                    latencies.append(took)
                else:
                    errors.append("stream did not end cleanly")

    threads = [threading.Thread(target=client, args=(w,))
               for w in range(ONESHOT_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {
        "queries": len(latencies),
        "errors": errors,
        "query_p50_seconds": _percentile(latencies, 0.50),
        "query_p99_seconds": _percentile(latencies, 0.99),
    }


def _fairness_index(server: StormServer) -> tuple[float, dict]:
    """Jain's index over per-tenant scheduler quanta."""
    snapshot = server.service.obs.registry.snapshot()
    quanta: dict[str, float] = {}
    for key, value in snapshot["counters"].items():
        if key.startswith("storm.server.quanta{") \
                and "tenant=tenant-" in key:
            quanta[key.split("tenant=", 1)[1].rstrip("}")] = value
    shares = list(quanta.values())
    if not shares:
        return 0.0, {}
    jain = (sum(shares) ** 2) / (len(shares) * sum(s * s
                                                   for s in shares))
    return jain, quanta


def _saturation_probe() -> dict:
    """A tiny service must 429 (not absorb) overload."""
    engine = StormEngine(seed=2)
    engine.create_dataset("pts", _records(4000), dims=2,
                          build_ls=False)
    service = QueryService(engine, ServerConfig(
        max_streams=1, queue_depth=1, quantum=16, stream_buffer=2))
    body = {"query": STREAM_QUERY}
    rejected = 0
    retry_after_seen = False
    try:
        held = [service.submit_stream(f"t{i}", body)
                for i in range(2)]  # capacity: 1 active + 1 queued
        for attempt in range(4):
            try:
                held.append(service.submit_stream("late", body))
            except ApiError as exc:
                if exc.status == 429:
                    rejected += 1
                    retry_after_seen |= (exc.retry_after or 0) >= 1
        for task in held:
            task.drain_frames(timeout=60)
    finally:
        service.shutdown(drain=False)
    return {"rejected_429": rejected,
            "retry_after_seen": retry_after_seen,
            "ok": rejected > 0 and retry_after_seen}


def _determinism_probe() -> dict:
    """Solo vs contended: identical final estimate, same seed."""
    def run(noise: int) -> float:
        engine = StormEngine(seed=1)
        engine.create_dataset("pts", _records(6000), dims=2,
                              build_ls=False)
        service = QueryService(engine, ServerConfig(
            max_streams=8, quantum=QUANTUM))
        try:
            others = [service.submit_stream(f"noise-{i}", {
                "query": STREAM_QUERY, "seed": 50 + i})
                for i in range(noise)]
            probe = service.submit_stream(
                "probe", {"query": STREAM_QUERY, "seed": 424242})
            frames = probe.drain_frames(timeout=120)
            for task in others:
                task.drain_frames(timeout=120)
            assert frames[-1]["frame"] == "end"
            return frames[-1]["estimate"]["value"]
        finally:
            service.shutdown(drain=False)

    solo = run(noise=0)
    contended = run(noise=7)
    return {"solo_estimate": solo,
            "contended_estimate": contended,
            "ok": solo == contended}


def run_server_bench() -> dict:
    server = _make_server()
    try:
        streams = _stream_phase(server)
        oneshot = _oneshot_phase(server)
        fairness, per_tenant = _fairness_index(server)
    finally:
        drained = server.stop()
    saturation = _saturation_probe()
    determinism = _determinism_probe()
    ok = (streams["completed"] == streams["streams"]
          and not streams["errors"]
          and oneshot["queries"] == N_ONESHOT
          and not oneshot["errors"]
          and fairness >= FAIRNESS_FLOOR
          and saturation["ok"]
          and determinism["ok"]
          and drained)
    return {
        "bench": "server",
        "config": {"records": N_RECORDS, "tenants": TENANTS,
                   "streams_per_tenant": STREAMS_PER_TENANT,
                   "quantum": QUANTUM,
                   "oneshot_queries": N_ONESHOT},
        "server": {
            "streams_per_sec": streams["streams_per_sec"],
            "query_p50_seconds": oneshot["query_p50_seconds"],
            "query_p99_seconds": oneshot["query_p99_seconds"],
            "fairness_index": fairness,
        },
        "streams": streams,
        "oneshot": oneshot,
        "fairness_per_tenant": per_tenant,
        "saturation": saturation,
        "determinism": determinism,
        "drained": drained,
        "ok": ok,
    }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    out = argv[0] if argv else "BENCH_server.json"
    report = run_server_bench()
    server = report["server"]
    print(f"streams/s: {server['streams_per_sec']:.2f}  "
          f"p50: {server['query_p50_seconds'] * 1e3:.1f}ms  "
          f"p99: {server['query_p99_seconds'] * 1e3:.1f}ms  "
          f"fairness: {server['fairness_index']:.3f}  "
          f"ok={report['ok']}")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
