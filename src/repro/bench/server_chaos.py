"""Service-layer chaos harness: kill, restart, disconnect, wedge.

``python -m repro.bench.server_chaos [OUT.json]`` drives a real
socket server (:class:`~repro.server.http.StormServer` on an
ephemeral port) through the failures production traffic produces,
and verifies the resilience contract end to end:

* **disconnect** — a chaos client opens a progressive NDJSON stream
  and drops the connection mid-stream (RST via ``SO_LINGER 0``); the
  server must count ``storm.server.client_disconnects``, cancel the
  stream to reclaim its engine slot, and keep concurrent tenants'
  streams ending cleanly — with no handler traceback;
* **stalled_client** — a chaos client (driven by a
  :class:`~repro.faults.FaultPlan` ``client.read`` delay spec) stops
  reading without closing; the frame buffer fills, backpressure parks
  the stream, and past ``abandon_seconds`` the scheduler reaps it as
  abandoned (``storm.server.abandoned_reaped``);
* **wedged_quantum** — an injected ``server.quantum`` delay wedges
  one scheduler quantum past the watchdog budget; the watchdog must
  fail *that* stream with a terminal ``error`` frame (code
  ``watchdog_timeout``) and hand the engine to a fresh thread while
  every other tenant's stream completes normally;
* **kill_restart_resume** — a durable detached stream is killed
  mid-flight (abrupt stop, no drain) and the journal re-admits it in
  a fresh process; the report records the recovery time and the
  **resume determinism flag**: the resumed stream's full frame
  sequence must be byte-identical to the same stream run without
  interruption (``tools/check_bench.py`` gates this flag exactly);
* **load_shed** — a saturated admission queue sheds its
  lowest-weight queued stream to admit a heavier tenant, and
  equal-weight overload still gets 429 with ``Retry-After`` ≥ 1s.

``tools/check_bench.py`` gates ``server_chaos.recovery_seconds``
upward, ``server_chaos.served_streams`` downward, and every
scenario's ``ok`` (plus ``resume_deterministic``) exactly.
"""

from __future__ import annotations

import json
import random
import shutil
import socket
import struct
import sys
import tempfile
import threading
import time
import urllib.request

from repro.core.engine import StormEngine
from repro.core.records import Record
from repro.faults import FaultPlan
from repro.server import (QueryService, ServerConfig, StormServer,
                          TenantQuota)
from repro.server.protocol import ApiError, encode_frame

__all__ = ["run_server_chaos", "main"]

N_RECORDS = 6_000
QUANTUM = 16
STREAM_QUERY = ("ESTIMATE AVG(v) FROM pts "
                "WHERE REGION(5, 5, 95, 95) SAMPLES 1500")
RESUME_QUERY = ("ESTIMATE AVG(v) FROM pts "
                "WHERE REGION(5, 5, 95, 95) SAMPLES 2400")
RESUME_SEED = 31337


def _records(n: int, seed: int = 5) -> list[Record]:
    rng = random.Random(seed)
    return [Record(record_id=i, lon=rng.uniform(0, 100),
                   lat=rng.uniform(0, 100), t=rng.uniform(0, 1000),
                   attrs={"v": rng.gauss(10, 2)})
            for i in range(n)]


def _make_server(*, faults=None, **config_kwargs) -> StormServer:
    engine = StormEngine(seed=1)
    engine.create_dataset("pts", _records(N_RECORDS), dims=2,
                          build_ls=False)
    config = ServerConfig(max_streams=8, quantum=QUANTUM,
                          **config_kwargs)
    service = QueryService(engine, config, faults=faults)
    service.recover_streams()
    return StormServer(service).start()


def _post(url: str, path: str, body: dict, tenant: str,
          stream: bool = False, headers: dict | None = None):
    all_headers = {"Content-Type": "application/json",
                   "X-Storm-Tenant": tenant}
    if headers:
        all_headers.update(headers)
    req = urllib.request.Request(
        url + path, method="POST",
        data=json.dumps(body).encode(), headers=all_headers)
    with urllib.request.urlopen(req, timeout=300) as resp:
        payload = resp.read()
    if stream:
        return [json.loads(line) for line in payload.splitlines()]
    return json.loads(payload)


def _get(url: str, path: str, tenant: str) -> dict:
    req = urllib.request.Request(
        url + path, headers={"X-Storm-Tenant": tenant})
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read())


def _counter_total(server: StormServer, name: str) -> float:
    snapshot = server.service.obs.registry.snapshot()
    return sum(v for k, v in snapshot["counters"].items()
               if k == name or k.startswith(name + "{"))


def _raw_stream_socket(server: StormServer, body: dict,
                       tenant: str) -> socket.socket:
    """Open ``POST /v1/stream`` on a raw socket (the chaos client)."""
    sock = socket.create_connection(
        (server.host, server.port), timeout=30)
    payload = json.dumps(body).encode()
    head = (f"POST /v1/stream HTTP/1.1\r\n"
            f"Host: {server.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"X-Storm-Tenant: {tenant}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n")
    sock.sendall(head.encode() + payload)
    return sock


def _wait(predicate, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# -- scenarios --------------------------------------------------------------


def _scenario_disconnect() -> dict:
    """Drop a connection mid-stream; the server reclaims the slot."""
    server = _make_server(abandon_seconds=5.0)
    survivors: list[bool] = []
    lock = threading.Lock()

    def survivor(seed: int) -> None:
        frames = _post(server.url, "/v1/stream",
                       {"query": STREAM_QUERY, "seed": seed},
                       f"steady-{seed}", stream=True)
        with lock:
            survivors.append(bool(frames)
                             and frames[-1]["frame"] == "end")

    try:
        threads = [threading.Thread(target=survivor, args=(s,))
                   for s in (71, 72, 73)]
        for t in threads:
            t.start()
        sock = _raw_stream_socket(
            server, {"query": STREAM_QUERY, "seed": 99}, "flaky")
        sock.recv(1024)  # response headers + the first frames
        # RST on close so the server sees the disconnect on its very
        # next write instead of buffering into a dead socket.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()
        for t in threads:
            t.join(timeout=120)
        reclaimed = _wait(
            lambda: server.service.scheduler.live_count == 0, 15.0)
        disconnects = _counter_total(
            server, "storm.server.client_disconnects")
    finally:
        server.stop(drain=False)
    ok = (len(survivors) == 3 and all(survivors)
          and disconnects >= 1 and reclaimed)
    return {"scenario": "disconnect", "ok": ok,
            "survivors_clean": sum(survivors),
            "client_disconnects": disconnects,
            "slot_reclaimed": reclaimed}


def _scenario_stalled_client() -> dict:
    """A consumer that stops reading is reaped as abandoned.

    Socket buffers would absorb a short stream entirely, so the
    stall is driven at the frame-buffer level: a chaos consumer pops
    a few frames, then stops (per its :class:`FaultPlan`
    ``client.read`` delay spec) without cancelling.  Backpressure
    parks the stream and ``abandon_seconds`` later the scheduler
    reaps it, freeing the slot with no client action at all.
    """
    server = _make_server(abandon_seconds=0.5, stream_buffer=2)
    service = server.service
    # The chaos client consults the same FaultPlan vocabulary the
    # server does: a one-shot client.read delay spec = "stall here".
    client_plan = FaultPlan().delay("client.read", 30.0, nth=3)
    try:
        task = service.submit_stream(
            "sleepy", {"query": STREAM_QUERY, "seed": 11})
        while client_plan.take_delay("client.read") == 0:
            task.pop(timeout=10.0)
        # Stalled: never pop again, never cancel.
        reaped = _wait(
            lambda: _counter_total(
                server, "storm.server.abandoned_reaped") >= 1, 20.0)
        reclaimed = _wait(
            lambda: service.scheduler.live_count == 0, 10.0)
        terminal = task.frames[-1] if task.frames else {}
    finally:
        server.stop(drain=False)
    ok = (reaped and reclaimed
          and terminal.get("frame") == "end"
          and "abandoned" in terminal.get("reason", ""))
    return {"scenario": "stalled_client", "ok": ok,
            "abandoned_reaped": reaped, "slot_reclaimed": reclaimed,
            "terminal_frame": terminal}


def _scenario_wedged_quantum() -> dict:
    """A wedged quantum fails one stream; the engine recovers."""
    plan = FaultPlan().delay("server.quantum", 2.0, nth=40)
    server = _make_server(faults=plan, watchdog_seconds=0.2)
    outcomes: list[str] = []
    lock = threading.Lock()

    def client(tenant: str, seed: int) -> None:
        frames = _post(server.url, "/v1/stream",
                       {"query": STREAM_QUERY, "seed": seed},
                       tenant, stream=True)
        last = frames[-1] if frames else {}
        with lock:
            if last.get("frame") == "end":
                outcomes.append("end")
            else:
                outcomes.append(last.get("code", "none"))

    try:
        threads = [threading.Thread(target=client,
                                    args=(f"tenant-{i}", 200 + i))
                   for i in range(4)]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        elapsed = time.perf_counter() - started
        kills = server.service.scheduler.watchdog_kills
    finally:
        server.stop(drain=False)
    ok = (kills == 1
          and outcomes.count("watchdog_timeout") == 1
          and outcomes.count("end") == 3)
    return {"scenario": "wedged_quantum", "ok": ok,
            "watchdog_kills": kills, "outcomes": sorted(outcomes),
            "elapsed_seconds": elapsed}


def _run_durable_stream(journal_dir: str, *, kill_after_frames: int
                        ) -> tuple[list[dict], StormServer | None]:
    """Launch the canonical durable detached stream; kill the server
    after ``kill_after_frames`` frames (0 = run to completion and
    return the full frame list)."""
    server = _make_server(journal_dir=journal_dir)
    session = _post(server.url, "/v1/sessions", {"name": "chaos"},
                    "durable")["session"]
    stream = _post(server.url, f"/v1/sessions/{session}/streams",
                   {"query": RESUME_QUERY, "seed": RESUME_SEED},
                   "durable")["stream"]
    path = f"/v1/sessions/{session}/streams/{stream}?from=0"
    while True:
        doc = _get(server.url, path, "durable")
        if kill_after_frames and len(doc["frames"]) >= \
                kill_after_frames:
            server.stop(drain=False)  # the "kill"
            return doc["frames"], None
        if doc["state"] in ("done", "error", "cancelled"):
            server.stop(drain=False)
            return doc["frames"], None
        time.sleep(0.02)


def _scenario_kill_restart_resume(workdir: str) -> dict:
    """Kill a durable detached stream; restart resumes it
    byte-identically."""
    journal_a = f"{workdir}/journal-live"
    journal_b = f"{workdir}/journal-reference"
    # Uninterrupted reference run (its own journal; same engine seed,
    # same query seed, logical clock — the canonical frame bytes).
    reference, _ = _run_durable_stream(journal_b,
                                       kill_after_frames=0)
    # The victim: killed mid-stream after a handful of frames.
    before_kill, _ = _run_durable_stream(journal_a,
                                         kill_after_frames=8)
    # Restart over the same journal; recovery must re-admit it.
    restart_begin = time.perf_counter()
    server = _make_server(journal_dir=journal_a)
    try:
        sessions = _get(server.url, "/v1/sessions",
                        "durable")["sessions"]
        resumed_frames: list[dict] = []
        recovery_seconds = None
        state = "missing"
        if sessions and sessions[0]["streams"]:
            session = sessions[0]["session"]
            stream = sorted(sessions[0]["streams"])[0]
            path = f"/v1/sessions/{session}/streams/{stream}?from=0"
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                doc = _get(server.url, path, "durable")
                state = doc["state"]
                resumed_frames = doc["frames"]
                if recovery_seconds is None and \
                        len(resumed_frames) >= len(before_kill):
                    # Recovered: the replay has caught back up to
                    # everything the client saw before the kill.
                    recovery_seconds = (time.perf_counter()
                                        - restart_begin)
                if state in ("done", "error", "cancelled"):
                    break
                time.sleep(0.02)
        resumes = _counter_total(server,
                                 "storm.server.resume_streams")
    finally:
        server.stop(drain=False)

    def frame_bytes(frames: list[dict]) -> bytes:
        return b"".join(encode_frame(f) for f in frames)

    prefix_ok = (frame_bytes(resumed_frames[:len(before_kill)])
                 == frame_bytes(before_kill))
    deterministic = (bool(resumed_frames)
                     and frame_bytes(resumed_frames)
                     == frame_bytes(reference))
    ok = (resumes == 1 and state == "done" and prefix_ok
          and deterministic and recovery_seconds is not None)
    return {"scenario": "kill_restart_resume", "ok": ok,
            "resume_deterministic": deterministic,
            "prefix_matches_pre_kill": prefix_ok,
            "frames_before_kill": len(before_kill),
            "frames_reference": len(reference),
            "frames_resumed": len(resumed_frames),
            "resumed_streams": resumes,
            "recovery_seconds": recovery_seconds
            if recovery_seconds is not None else -1.0}


def _scenario_load_shed() -> dict:
    """Saturation sheds the lightest queued stream for a heavier
    tenant; equal weight still gets 429 + Retry-After ≥ 1."""
    engine = StormEngine(seed=2)
    engine.create_dataset("pts", _records(3000), dims=2,
                          build_ls=False)
    service = QueryService(engine, ServerConfig(
        max_streams=1, queue_depth=1, quantum=QUANTUM,
        quotas={"heavy": TenantQuota(weight=4.0)}))
    body = {"query": STREAM_QUERY}
    shed_frame = None
    heavy_admitted = False
    equal_weight_429 = False
    retry_floor_ok = False
    try:
        light_1 = service.submit_stream("light-1", dict(body, seed=1))
        light_2 = service.submit_stream("light-2", dict(body, seed=2))
        # Saturated (1 active + 1 queued): a heavier tenant sheds the
        # queued lightweight instead of being rejected.
        heavy = service.submit_stream("heavy", dict(body, seed=3))
        heavy_admitted = True
        shed_frame = light_2.drain_frames(timeout=10)[-1]
        # ... but an equal-weight newcomer is simply rejected.
        try:
            service.submit_stream("light-3", dict(body, seed=4))
        except ApiError as exc:
            equal_weight_429 = exc.status == 429
            retry_floor_ok = (exc.retry_after or 0) >= 1
        for task in (light_1, heavy):
            task.drain_frames(timeout=60)
    finally:
        service.shutdown(drain=False)
    shed_ok = (shed_frame is not None
               and shed_frame.get("frame") == "error"
               and shed_frame.get("code") == "shed")
    ok = (heavy_admitted and shed_ok and equal_weight_429
          and retry_floor_ok)
    return {"scenario": "load_shed", "ok": ok,
            "heavy_admitted": heavy_admitted,
            "shed_terminal_frame": shed_frame,
            "equal_weight_429": equal_weight_429,
            "retry_after_floor_ok": retry_floor_ok,
            "shed_streams": 1 if shed_ok else 0}


# -- the harness ------------------------------------------------------------


def run_server_chaos() -> dict:
    workdir = tempfile.mkdtemp(prefix="storm-chaos-")
    try:
        scenarios = [
            _scenario_disconnect(),
            _scenario_stalled_client(),
            _scenario_wedged_quantum(),
            _scenario_kill_restart_resume(workdir),
            _scenario_load_shed(),
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    by_name = {s["scenario"]: s for s in scenarios}
    resume = by_name["kill_restart_resume"]
    served = (by_name["disconnect"]["survivors_clean"]
              + by_name["wedged_quantum"]["outcomes"].count("end")
              + (1 if resume["ok"] else 0)
              + (2 if by_name["load_shed"]["ok"] else 0))
    ok = all(s["ok"] for s in scenarios)
    return {
        "bench": "server_chaos",
        "config": {"records": N_RECORDS, "quantum": QUANTUM,
                   "resume_query": RESUME_QUERY,
                   "resume_seed": RESUME_SEED},
        "server_chaos": {
            "recovery_seconds": resume["recovery_seconds"],
            "served_streams": served,
            "shed_streams": by_name["load_shed"]["shed_streams"],
            "resume_deterministic": resume["resume_deterministic"],
        },
        "scenarios": scenarios,
        "ok": ok,
    }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    out = argv[0] if argv else "BENCH_server_chaos.json"
    report = run_server_chaos()
    chaos = report["server_chaos"]
    print(f"recovery: {chaos['recovery_seconds']:.2f}s  "
          f"served: {chaos['served_streams']}  "
          f"shed: {chaos['shed_streams']}  "
          f"resume_deterministic={chaos['resume_deterministic']}  "
          f"ok={report['ok']}")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
