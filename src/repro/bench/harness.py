"""Experiment runners for the paper's evaluation section.

Figure 3(a) — *query efficiency, vary k*: time for each sampling method
to produce k online samples from a fixed range query, k/q from 0.5% to
10%.  The paper runs this on the full OSM data set (q = 10^9) on disk; we
run a scaled synthetic OSM and report wall time, node reads, and the
simulated disk seconds of the cost model, whose *shape* across methods is
the figure's content: LS/RS orders of magnitude under RandomPath and
RangeReport at small k/q, RandomPath growing linearly in k.

Figure 3(b) — *online accuracy*: relative error of an online
avg(altitude) estimate versus elapsed time, for LS-tree and RS-tree.
Error decays like 1/sqrt(k) and hits single digits in a tiny fraction of
full-scan time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.engine import Dataset
from repro.core.estimators.aggregates import AvgEstimator
from repro.core.records import STRange, attribute_getter
from repro.core.sampling.base import take
from repro.core.session import OnlineQuerySession, StopCondition
from repro.index.cost import CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.obs import NULL_OBS, Observability
from repro.viz.series import render_series, render_table
from repro.workloads.osm import OSMWorkload

__all__ = ["ExperimentResult", "Fig3aRunner", "Fig3bRunner",
           "build_osm_dataset"]

FIG3A_METHODS = ("random-path", "rs-tree", "query-first", "ls-tree")
FIG3A_FRACTIONS = (0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10)


@dataclass(slots=True)
class ExperimentResult:
    """A finished experiment: headers + rows + optional chart series."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    series: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict)
    notes: str = ""

    def table(self) -> str:
        """The result as a fixed-width text table."""
        return render_table(self.headers, self.rows, title=self.name)

    def chart(self, x_label: str = "x", y_label: str = "y",
              log_y: bool = False) -> str:
        """The result's series as an ASCII chart."""
        return render_series(self.series, x_label=x_label,
                             y_label=y_label, log_y=log_y)


def build_osm_dataset(n: int = 100_000, seed: int = 17,
                      rs_buffer_size: int = 64,
                      obs: Observability | None = None
                      ) -> tuple[Dataset, OSMWorkload]:
    """The shared experimental substrate: synthetic OSM, fully indexed.

    Indexed in 2-d: OSM is a spatial (not temporal) data set, and that is
    what the paper's Figure 3 runs on.  The spatio-temporal (3-d) path is
    exercised by the demo workloads (twitter/MesoWest/electricity).
    """
    workload = OSMWorkload(n=n, seed=seed)
    dataset = Dataset("osm", workload.generate(), dims=2,
                      rs_buffer_size=rs_buffer_size, obs=obs)
    return dataset, workload


def fig3a_query(workload: OSMWorkload, selectivity: float = 0.4
                ) -> STRange:
    """The fixed range query of Figure 3(a): a central box covering a
    large constant fraction of the data set (the paper fixes one query
    with q in the billions; selectivity is what matters at our scale)."""
    lon_lo, lat_lo, lon_hi, lat_hi = workload.dense_query_box(selectivity)
    return STRange(lon_lo, lat_lo, lon_hi, lat_hi)


class Fig3aRunner:
    """Time to produce k online samples, per method, k/q ∈ (0, 10%]."""

    def __init__(self, dataset: Dataset, workload: OSMWorkload,
                 fractions: tuple[float, ...] = FIG3A_FRACTIONS,
                 methods: tuple[str, ...] = FIG3A_METHODS,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 seed: int = 7, obs: Observability | None = None):
        self.dataset = dataset
        self.workload = workload
        self.fractions = fractions
        self.methods = methods
        self.cost_model = cost_model
        self.seed = seed
        # Defaults to the dataset's sink so one engine-level
        # Observability also captures benchmark runs.
        self.obs = obs if obs is not None \
            else getattr(dataset, "obs", NULL_OBS)
        self.query = fig3a_query(workload).to_rect(dataset.dims)
        self.q = dataset.tree.range_count(self.query)

    def run_one(self, method: str, k: int) -> tuple[float, float, int]:
        """(wall seconds, simulated seconds, node reads) for k samples."""
        sampler = self.dataset.samplers[method]
        cost = CostCounter()
        rng = random.Random(self.seed)
        with self.obs.tracer.span("bench_fig3a", method=method, k=k,
                                  cost=cost) as span:
            start = time.perf_counter()
            got = take(sampler.sample_stream(self.query, rng, cost=cost),
                       k)
            wall = time.perf_counter() - start
            span.set("wall_seconds", wall)
        assert len(got) == min(k, self.q)
        simulated = self.cost_model.simulated_seconds(cost)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.bench.runs", method=method).inc()
            registry.histogram("storm.bench.wall_seconds",
                               method=method).observe(wall)
            registry.histogram("storm.bench.simulated_seconds",
                               method=method).observe(simulated)
        return wall, simulated, cost.node_reads

    def run(self) -> ExperimentResult:
        rows: list[list[object]] = []
        series: dict[str, list[tuple[float, float]]] = {
            m: [] for m in self.methods}
        for fraction in self.fractions:
            k = max(1, int(self.q * fraction))
            for method in self.methods:
                wall, simulated, reads = self.run_one(method, k)
                rows.append([method, f"{fraction:.1%}", k, wall,
                             simulated, reads])
                series[method].append((fraction * 100, simulated))
        return ExperimentResult(
            name=(f"Figure 3(a): time to produce k samples "
                  f"(N={len(self.dataset)}, q={self.q})"),
            headers=["method", "k/q", "k", "wall_s", "simulated_s",
                     "node_reads"],
            rows=rows, series=series,
            notes="simulated_s uses the disk cost model "
                  "(10ms random / 80us sequential block reads)")


class BufferAblationRunner:
    """RS-tree buffer-size sweep: refill I/O vs space, fixed k."""

    def __init__(self, dataset: Dataset, workload: OSMWorkload,
                 sizes: tuple[int, ...] = (8, 32, 128, 512),
                 k: int = 1024, seed: int = 3):
        self.dataset = dataset
        self.workload = workload
        self.sizes = sizes
        self.k = k
        self.seed = seed

    def run(self) -> ExperimentResult:
        from repro.core.sampling.rs_tree import RSTreeSampler
        from repro.index.hilbert_rtree import HilbertRTree
        query = fig3a_query(self.workload).to_rect(self.dataset.dims)
        rows = []
        series: dict[str, list[tuple[float, float]]] = {"rs-tree": []}
        for s in self.sizes:
            tree = HilbertRTree(self.dataset.dims, self.dataset.bounds)
            tree.bulk_load((rid, r.key(self.dataset.dims))
                           for rid, r in self.dataset.records.items())
            sampler = RSTreeSampler(tree, buffer_size=s,
                                    rng=random.Random(self.seed))
            sampler.prepare()
            cost = CostCounter()
            take(sampler.sample_stream(query,
                                       random.Random(self.seed + 1),
                                       cost=cost), self.k)
            simulated = DEFAULT_COST_MODEL.simulated_seconds(cost)
            buffered = sum(
                len(n.sample_buffer or [])
                for n in _iter_nodes(tree))
            rows.append([s, cost.node_reads, simulated,
                         buffered / max(1, len(self.dataset))])
            series["rs-tree"].append((s, simulated))
        return ExperimentResult(
            name=f"RS-tree buffer ablation (k={self.k})",
            headers=["buffer_size", "node_reads", "simulated_s",
                     "space_blowup"],
            rows=rows, series=series)


class ScalingRunner:
    """Distributed worker-scaling sweep at fixed k."""

    def __init__(self, dataset: Dataset, workload: OSMWorkload,
                 workers: tuple[int, ...] = (1, 2, 4, 8),
                 k: int = 512, seed: int = 5):
        self.dataset = dataset
        self.workload = workload
        self.workers = workers
        self.k = k
        self.seed = seed

    def run(self) -> ExperimentResult:
        from repro.distributed.dist_index import DistributedSTIndex
        from repro.distributed.dist_sampler import DistributedSampler
        query = fig3a_query(self.workload)
        records = list(self.dataset.records.values())
        rows = []
        series: dict[str, list[tuple[float, float]]] = {"rs-dist": []}
        for w in self.workers:
            index = DistributedSTIndex(records, n_workers=w,
                                       dims=self.dataset.dims,
                                       seed=self.seed,
                                       rs_buffer_size=32)
            sampler = DistributedSampler(index, batch_size=32)
            sampler.sample(query, self.k, random.Random(self.seed + 1))
            seconds = sampler.last_query_seconds()
            # Merged cluster-wide tallies instead of hand-summing the
            # per-worker counters.
            merged = index.cluster.total_worker_cost()
            rows.append([w, seconds, index.cluster.network.messages,
                         merged.node_reads])
            series["rs-dist"].append((w, seconds))
        return ExperimentResult(
            name=f"Distributed scaling (k={self.k})",
            headers=["workers", "simulated_s", "network_msgs",
                     "node_reads"],
            rows=rows, series=series)


def _iter_nodes(tree):
    if tree.root is None:
        return
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(node.children or [])


class Fig3bRunner:
    """Relative error of online avg(altitude) vs elapsed time."""

    def __init__(self, dataset: Dataset, workload: OSMWorkload,
                 methods: tuple[str, ...] = ("rs-tree", "ls-tree"),
                 max_samples: int = 4000, seed: int = 11,
                 obs: Observability | None = None):
        self.dataset = dataset
        self.workload = workload
        self.methods = methods
        self.max_samples = max_samples
        self.seed = seed
        self.obs = obs if obs is not None \
            else getattr(dataset, "obs", NULL_OBS)
        self.query = fig3a_query(workload)

    def _truth(self) -> float:
        rect = self.query.to_rect(self.dataset.dims)
        entries = self.dataset.tree.range_query(rect)
        values = [self.dataset.lookup(e.item_id).attrs["altitude"]
                  for e in entries]
        return sum(values) / len(values)

    def run(self) -> ExperimentResult:
        truth = self._truth()
        rows: list[list[object]] = []
        series: dict[str, list[tuple[float, float]]] = {}
        for method in self.methods:
            estimator = AvgEstimator(attribute_getter("altitude"))
            session = OnlineQuerySession(
                self.dataset.samplers[method], estimator,
                self.query.to_rect(self.dataset.dims),
                self.dataset.lookup, rng=random.Random(self.seed),
                report_every=32, obs=self.obs,
                labels={"dataset": "osm"})
            points = []
            for point in session.run(
                    StopCondition(max_samples=self.max_samples)):
                rel_err = abs(point.estimate.value - truth) / abs(truth)
                points.append((point.elapsed * 1000.0, rel_err))
                rows.append([method, point.k,
                             point.elapsed * 1000.0, rel_err,
                             point.estimate.interval.half_width
                             if point.estimate.interval else None])
            series[method] = points
        return ExperimentResult(
            name=(f"Figure 3(b): relative error of avg(altitude) vs "
                  f"time (truth={truth:.2f})"),
            headers=["method", "k", "time_ms", "relative_error",
                     "ci_half_width"],
            rows=rows, series=series,
            notes="error shrinks ~1/sqrt(k); both methods reach "
                  "single-digit % within milliseconds")
