"""Recovery chaos harness: kill-during-update + WAL replay bench.

``python -m repro.bench.recovery [OUT.json]`` drives the durable write
path (UpdateManager → WAL → DocumentStore → SimulatedDFS) through the
four crash points the durability design must survive
(``docs/operations.md`` documents the runbook):

* **pre-WAL-append** — the process dies before the batch reaches the
  log: the batch was never committed and must NOT appear after
  recovery;
* **post-append / pre-flush** — the process dies after the append
  returned but before any store flush: every appended batch is
  committed and MUST be replayed;
* **mid-checkpoint** — the process dies inside an atomic flush (the
  temp file tears): the previous checkpoint stays in force and replay
  covers the gap;
* **torn final segment** — the last WAL append itself tears: recovery
  truncates the tail and restores exactly the committed prefix.

Each scenario maintains a *shadow copy* of the committed state (updated
only when a WAL append returns) and asserts record-level equality
between the recovered collection and the shadow — no lost committed
batch, no replayed uncommitted batch.

A replay micro-benchmark then times ``recover_store`` over a long
insert-only log and reports replayed operations per second.  The
report lands in ``BENCH_recovery.json`` (CI uploads it as an
artifact); scales are smoke-sized regression tripwires.
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.core.engine import Dataset
from repro.core.records import Record
from repro.errors import WriteCrashError
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.recovery import checkpoint_store, recover_store
from repro.storage.wal import WriteAheadLog
from repro.updates.manager import UpdateBatch, UpdateManager

__all__ = ["run_recovery_chaos", "main"]

N_SEED_RECORDS = 200
BATCHES = 10
BATCH_INSERTS = 6
BATCH_DELETES = 3
SEGMENT_BYTES = 1024
REPLAY_BATCHES = 300
REPLAY_INSERTS = 8


def _records(n: int, seed: int, start_id: int = 0) -> list[Record]:
    rng = random.Random(seed)
    return [Record(record_id=start_id + i,
                   lon=rng.uniform(0.0, 100.0),
                   lat=rng.uniform(0.0, 100.0),
                   t=rng.uniform(0.0, 1000.0),
                   attrs={"v": round(rng.gauss(10.0, 2.0), 6)})
            for i in range(n)]


def _setup(seed: int):
    """A checkpointed store + WAL + manager, plus the shadow copy."""
    dfs = SimulatedDFS(machines=4, replication=2)
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES)
    records = _records(N_SEED_RECORDS, seed)
    dataset = Dataset("live", records, rs_buffer_size=16,
                      build_ls=False, seed=seed)
    coll = store.collection("live")
    coll.insert_many(r.to_document() for r in records)
    checkpoint_store(store, wal)
    manager = UpdateManager(dataset, store=store, collection="live",
                            wal=wal)
    shadow = {r.record_id: r.to_document() for r in records}
    return dfs, manager, shadow


def _drive(manager: UpdateManager, shadow: dict, seed: int,
           batches: int) -> tuple[int, bool]:
    """Apply update batches, maintaining the shadow of *committed*
    state; (batches committed, whether an injected crash struck)."""
    rng = random.Random(seed)
    next_id = max(shadow) + 1
    for b in range(batches):
        ids = sorted(manager.dataset.records)
        deletes = rng.sample(ids, BATCH_DELETES)
        inserts = _records(BATCH_INSERTS, seed * 613 + b,
                           start_id=next_id)
        next_id += BATCH_INSERTS
        docs = [r.to_document() for r in inserts]
        try:
            manager.apply(UpdateBatch(inserts=inserts,
                                      deletes=deletes))
        except WriteCrashError:
            return b, True
        # The append returned: the batch is committed.
        for rid in deletes:
            shadow.pop(rid)
        for doc in docs:
            shadow[doc["_id"]] = doc
    return batches, False


def _recover_and_check(dfs: SimulatedDFS, shadow: dict) -> dict:
    """Restart from the DFS alone and diff against the shadow."""
    obs = Observability()
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=SEGMENT_BYTES, obs=obs)
    report = recover_store(store, wal, obs=obs)
    live = {doc["_id"]: doc
            for doc in store.collection("live").find()}
    return {
        "recovered_records": len(live),
        "expected_records": len(shadow),
        "state_matches": live == shadow,
        "report": report.as_dict(),
    }


def _scenario_pre_wal_append(seed: int) -> dict:
    """The process dies before batch #crash_at reaches the log."""
    crash_at = 4
    dfs, manager, shadow = _setup(seed)
    dfs.set_fault_plan(FaultPlan(seed=seed)
                       .crash_write("wal/", nth=crash_at))
    committed, crashed = _drive(manager, shadow, seed, BATCHES)
    out = _recover_and_check(dfs, shadow)
    out.update({"scenario": "pre-wal-append", "crashed": crashed,
                "committed_batches": committed})
    out["ok"] = out["state_matches"] and crashed \
        and committed == crash_at - 1
    return out


def _scenario_post_append(seed: int) -> dict:
    """The process dies after the appends, before any flush."""
    dfs, manager, shadow = _setup(seed)
    committed, crashed = _drive(manager, shadow, seed, BATCHES)
    out = _recover_and_check(dfs, shadow)
    out.update({"scenario": "post-append-pre-flush",
                "crashed": crashed, "committed_batches": committed})
    out["ok"] = out["state_matches"] and not crashed \
        and committed == BATCHES \
        and out["report"]["batches_replayed"] == BATCHES
    return out


def _scenario_mid_checkpoint(seed: int) -> dict:
    """The process dies inside the atomic flush (torn temp file)."""
    dfs, manager, shadow = _setup(seed)
    committed, _ = _drive(manager, shadow, seed, BATCHES)
    dfs.set_fault_plan(FaultPlan(seed=seed)
                       .torn_write("store/", nth=1,
                                   keep_fraction=0.4))
    crashed = False
    try:
        manager.flush()
    except WriteCrashError:
        crashed = True
    out = _recover_and_check(dfs, shadow)
    out.update({"scenario": "mid-checkpoint", "crashed": crashed,
                "committed_batches": committed})
    out["ok"] = out["state_matches"] and crashed \
        and committed == BATCHES
    return out


def _scenario_torn_tail(seed: int) -> dict:
    """The final WAL append itself tears mid-write."""
    crash_at = 6
    dfs, manager, shadow = _setup(seed)
    dfs.set_fault_plan(FaultPlan(seed=seed)
                       .torn_write("wal/", nth=crash_at,
                                   keep_fraction=0.5))
    committed, crashed = _drive(manager, shadow, seed, BATCHES)
    out = _recover_and_check(dfs, shadow)
    out.update({"scenario": "torn-final-segment", "crashed": crashed,
                "committed_batches": committed})
    out["ok"] = out["state_matches"] and crashed \
        and committed == crash_at - 1 \
        and out["report"]["bytes_discarded"] > 0
    return out


def _replay_benchmark(seed: int) -> dict:
    """Time WAL replay over a long insert-only log."""
    dfs = SimulatedDFS(machines=4, replication=2)
    store = DocumentStore(dfs)
    wal = WriteAheadLog(dfs, segment_bytes=16 * SEGMENT_BYTES)
    store.collection("live")
    checkpoint_store(store, wal)
    next_id = 0
    for b in range(REPLAY_BATCHES):
        docs = [r.to_document()
                for r in _records(REPLAY_INSERTS, seed * 31 + b,
                                  start_id=next_id)]
        next_id += REPLAY_INSERTS
        wal.append_batch("live", deletes=[], inserts=docs)
    start = time.perf_counter()
    store2 = DocumentStore(dfs)
    wal2 = WriteAheadLog(dfs, segment_bytes=16 * SEGMENT_BYTES)
    report = recover_store(store2, wal2)
    elapsed = time.perf_counter() - start
    ops = report.ops_replayed
    return {
        "benchmark": "wal-replay",
        "batches_replayed": report.batches_replayed,
        "ops_replayed": ops,
        "wal_bytes": wal.size_bytes(),
        "seconds": elapsed,
        "ops_per_second": ops / elapsed if elapsed > 0 else 0.0,
        "recovered_records": len(store2.collection("live")),
        "ok": report.batches_replayed == REPLAY_BATCHES
        and len(store2.collection("live"))
        == REPLAY_BATCHES * REPLAY_INSERTS,
    }


def run_recovery_chaos(seed: int = 23) -> dict:
    """The full report: four crash scenarios + the replay bench."""
    scenarios = [
        _scenario_pre_wal_append(seed),
        _scenario_post_append(seed),
        _scenario_mid_checkpoint(seed),
        _scenario_torn_tail(seed),
    ]
    replay = _replay_benchmark(seed)
    return {
        "benchmark": "recovery-chaos",
        "seed": seed,
        "batches": BATCHES,
        "scenarios": scenarios,
        "replay": replay,
        "ok": all(s["ok"] for s in scenarios) and replay["ok"],
    }


def main(argv: list[str] | None = None) -> int:
    """CLI: run the harness, print a summary, write the JSON report."""
    args = sys.argv[1:] if argv is None else argv
    out_path = args[0] if args else "BENCH_recovery.json"
    report = run_recovery_chaos()
    for row in report["scenarios"]:
        print(f"{row['scenario']}: committed="
              f"{row['committed_batches']} "
              f"replayed={row['report']['batches_replayed']} "
              f"discarded={row['report']['bytes_discarded']}B "
              f"match={row['state_matches']} ok={row['ok']}")
    replay = report["replay"]
    print(f"wal-replay: {replay['ops_replayed']} ops in "
          f"{replay['seconds']:.3f}s "
          f"({replay['ops_per_second']:.0f} ops/s)")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
