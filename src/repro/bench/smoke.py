"""Sampling fast-path smoke benchmark: ``python -m repro.bench.smoke``.

Runs the repeated-query workload (the dashboard pattern: the same range
queried over and over) for every sampler on a small synthetic OSM
substrate and writes ``BENCH_sampling.json`` with samples/sec per
sampler plus the canonical-set cache hit rate.  CI runs this as a
regression tripwire; the numbers are laptop-scale indicators, not the
paper's figures (see ``repro.bench.harness`` for those).

``BASELINE_SAMPLES_PER_SEC`` records the same workload measured at the
same scale *before* the fast path landed (linear cumulative source
scans, no canonical-set cache, per-sample session pulls), so the JSON
always carries the speedup context.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time

from repro.bench.harness import build_osm_dataset, fig3a_query
from repro.core.blocks import RecordBlock, backend_name
from repro.core.estimators.aggregates import AvgEstimator
from repro.core.records import attribute_getter
from repro.obs import profiled
from repro.storage.json_codec import canonical_json

__all__ = ["run_smoke", "main"]

N = 20_000
K = 256
REPEATS = 40
WARMUP = 3
#: Each sampler is measured PASSES times and the fastest pass is
#: recorded: the workload is ~10ms per pass, so a single scheduler
#: blip or GC pause (GC is paused during the timed loop, but the OS
#: isn't) would otherwise dominate the figure.
PASSES = 3

#: The repeated-query workload measured on this substrate (n=20000,
#: K=256, 40 repeats) before the sampling fast path: O(n) source
#: selection, no canonical-set cache, one-at-a-time session pulls.
BASELINE_SAMPLES_PER_SEC = {
    "query-first": 19_610.6,
    "sample-first": 168_448.9,
    "random-path": 3_217.2,
    "ls-tree": 163_904.8,
    "rs-tree": 48_600.0,
}


def _block_cache_stats(dataset) -> dict:
    """Bytes-per-point of the columnar block encoding vs JSON documents
    (the block cache holds this many times more points per byte)."""
    records = list(dataset.records.values())
    if not records:
        return {}
    payload = RecordBlock.from_records(records).encode()
    json_bytes = sum(len(canonical_json(r.to_document()).encode()) + 1
                     for r in records)
    return {
        "bytes_per_point": round(len(payload) / len(records), 2),
        "json_bytes_per_point": round(json_bytes / len(records), 2),
        "points_per_byte_gain": round(json_bytes / len(payload), 2),
    }


def run_smoke(n: int = N, k: int = K, repeats: int = REPEATS,
              seed: int = 17) -> dict:
    """Measure repeated-query samples/sec per sampler; return the report.

    Each repeat runs the full pipeline the session runs — source
    selection (canonical set, cached across repeats), a batched
    ``draw_batch`` pull, and estimator absorption — with the three
    stages timed separately so a regression localises.  The headline
    ``samples_per_sec`` covers selection + draw (what the old
    ``take``-loop measured); absorb is reported alongside.  Each
    sampler records its best of :data:`PASSES` measurement passes.
    """
    dataset, workload = build_osm_dataset(n=n, seed=seed)
    query = fig3a_query(workload).to_rect(dataset.dims)
    results: dict[str, dict] = {}
    for method, sampler in sorted(dataset.samplers.items()):
        seeds = iter(range(1_000_000))
        for _ in range(WARMUP):
            stream = sampler.sample_stream(
                query, random.Random(next(seeds)))
            sampler.draw_batch(stream, k)
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        tree = getattr(sampler, "tree", None)
        from_canon = getattr(sampler, "sample_stream_from_canon", None)
        split_selection = (tree is not None and from_canon is not None
                           and hasattr(tree, "canonical_set"))
        lookup = dataset.lookup
        hits_before = getattr(tree, "canon_hits", 0)
        misses_before = getattr(tree, "canon_misses", 0)
        best: tuple | None = None
        for _ in range(PASSES):
            estimator = AvgEstimator(attribute_getter("lon"))
            sel_s = draw_s = absorb_s = 0.0
            drawn = 0
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for _ in range(repeats):
                    rng = random.Random(next(seeds))
                    if split_selection:
                        t0 = time.perf_counter()
                        canon = tree.canonical_set(query, tree.cost)
                        t1 = time.perf_counter()
                        stream = from_canon(canon, rng)
                        batch = sampler.draw_batch(stream, k)
                        t2 = time.perf_counter()
                        sel_s += t1 - t0
                    else:
                        t1 = time.perf_counter()
                        stream = sampler.sample_stream(query, rng)
                        batch = sampler.draw_batch(stream, k)
                        t2 = time.perf_counter()
                    estimator.absorb_entry_batch(batch, lookup)
                    t3 = time.perf_counter()
                    draw_s += t2 - t1
                    absorb_s += t3 - t2
                    drawn += len(batch)
            finally:
                if gc_was_enabled:
                    gc.enable()
            if best is None or drawn / (sel_s + draw_s) > best[0]:
                best = (drawn / (sel_s + draw_s),
                        sel_s, draw_s, absorb_s, drawn)
        assert best is not None
        _, sel_s, draw_s, absorb_s, drawn = best
        elapsed = sel_s + draw_s
        entry: dict[str, object] = {
            "samples_per_sec": round(drawn / elapsed, 1),
            "samples": drawn,
            "seconds": round(elapsed, 4),
            "stages": {
                "selection_seconds": round(sel_s, 4),
                "draw_seconds": round(draw_s, 4),
                "absorb_seconds": round(absorb_s, 4),
            },
        }
        baseline = BASELINE_SAMPLES_PER_SEC.get(method)
        if baseline:
            entry["baseline_samples_per_sec"] = baseline
            entry["speedup_vs_baseline"] = round(
                drawn / elapsed / baseline, 2)
        if tree is not None and hasattr(tree, "canon_hits"):
            hits = tree.canon_hits - hits_before
            misses = tree.canon_misses - misses_before
            lookups = hits + misses
            entry["canonical_cache"] = {
                "hits": hits, "misses": misses,
                "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
            }
        results[method] = entry
    return {
        "workload": {"n": n, "k": k, "repeats": repeats,
                     "passes": PASSES, "seed": seed,
                     "pattern": "repeated-query"},
        "backend": backend_name(),
        "block_cache": _block_cache_stats(dataset),
        "samplers": results,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke",
        description="Sampling fast-path smoke benchmark.")
    parser.add_argument("out", nargs="?", default="BENCH_sampling.json")
    parser.add_argument("--profile", metavar="FILE",
                        help="sample the run with the wall-clock "
                             "profiler and write collapsed stacks "
                             "(flamegraph format) to FILE")
    parser.add_argument("--profile-hz", type=float, default=199.0,
                        help="profiler sampling rate (default 199)")
    args = parser.parse_args(argv)
    out = args.out
    if args.profile:
        with profiled(args.profile, hz=args.profile_hz) as prof:
            report = run_smoke()
        report["profile"] = prof.summary()
        top = prof.top_frames(1)
        if top:
            print(f"profile: {prof.samples} samples, "
                  f"{len(prof.stacks)} stacks -> {args.profile}; "
                  f"hottest frame {top[0][0]} ({top[0][1]})")
    else:
        report = run_smoke()
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    bc = report.get("block_cache") or {}
    line = f"block codec backend: {report['backend']}"
    if bc:
        line += (f"; block cache {bc['bytes_per_point']:.1f} B/point "
                 f"vs {bc['json_bytes_per_point']:.1f} JSON "
                 f"({bc['points_per_byte_gain']:.1f}x denser)")
    print(line)
    width = max(len(m) for m in report["samplers"])
    for method, entry in report["samplers"].items():
        line = (f"{method:<{width}}  "
                f"{entry['samples_per_sec']:>12,.1f} samples/s")
        if "speedup_vs_baseline" in entry:
            line += f"  ({entry['speedup_vs_baseline']:.2f}x baseline)"
        stages = entry.get("stages")
        if stages:
            line += (f"  [sel {stages['selection_seconds']:.3f}s"
                     f" draw {stages['draw_seconds']:.3f}s"
                     f" absorb {stages['absorb_seconds']:.3f}s]")
        cache = entry.get("canonical_cache")
        if cache and cache["hits"] + cache["misses"] > 0:
            line += f"  canon hit_rate={cache['hit_rate']:.1%}"
        print(line)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
