"""Sampling fast-path smoke benchmark: ``python -m repro.bench.smoke``.

Runs the repeated-query workload (the dashboard pattern: the same range
queried over and over) for every sampler on a small synthetic OSM
substrate and writes ``BENCH_sampling.json`` with samples/sec per
sampler plus the canonical-set cache hit rate.  CI runs this as a
regression tripwire; the numbers are laptop-scale indicators, not the
paper's figures (see ``repro.bench.harness`` for those).

``BASELINE_SAMPLES_PER_SEC`` records the same workload measured at the
same scale *before* the fast path landed (linear cumulative source
scans, no canonical-set cache, per-sample session pulls), so the JSON
always carries the speedup context.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.bench.harness import build_osm_dataset, fig3a_query
from repro.core.sampling.base import take
from repro.obs import profiled

__all__ = ["run_smoke", "main"]

N = 20_000
K = 256
REPEATS = 40
WARMUP = 3

#: The repeated-query workload measured on this substrate (n=20000,
#: K=256, 40 repeats) before the sampling fast path: O(n) source
#: selection, no canonical-set cache, one-at-a-time session pulls.
BASELINE_SAMPLES_PER_SEC = {
    "query-first": 19_610.6,
    "sample-first": 168_448.9,
    "random-path": 3_217.2,
    "ls-tree": 163_904.8,
    "rs-tree": 48_600.0,
}


def run_smoke(n: int = N, k: int = K, repeats: int = REPEATS,
              seed: int = 17) -> dict:
    """Measure repeated-query samples/sec per sampler; return the report."""
    dataset, workload = build_osm_dataset(n=n, seed=seed)
    query = fig3a_query(workload).to_rect(dataset.dims)
    results: dict[str, dict] = {}
    for method, sampler in sorted(dataset.samplers.items()):
        seeds = iter(range(1_000_000))
        for _ in range(WARMUP):
            take(sampler.sample_stream(
                query, random.Random(next(seeds))), k)
        tree = getattr(sampler, "tree", None)
        hits_before = getattr(tree, "canon_hits", 0)
        misses_before = getattr(tree, "canon_misses", 0)
        start = time.perf_counter()
        drawn = 0
        for _ in range(repeats):
            drawn += len(take(sampler.sample_stream(
                query, random.Random(next(seeds))), k))
        elapsed = time.perf_counter() - start
        entry: dict[str, object] = {
            "samples_per_sec": round(drawn / elapsed, 1),
            "samples": drawn,
            "seconds": round(elapsed, 4),
        }
        baseline = BASELINE_SAMPLES_PER_SEC.get(method)
        if baseline:
            entry["baseline_samples_per_sec"] = baseline
            entry["speedup_vs_baseline"] = round(
                drawn / elapsed / baseline, 2)
        if tree is not None and hasattr(tree, "canon_hits"):
            hits = tree.canon_hits - hits_before
            misses = tree.canon_misses - misses_before
            lookups = hits + misses
            entry["canonical_cache"] = {
                "hits": hits, "misses": misses,
                "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
            }
        results[method] = entry
    return {
        "workload": {"n": n, "k": k, "repeats": repeats, "seed": seed,
                     "pattern": "repeated-query"},
        "samplers": results,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke",
        description="Sampling fast-path smoke benchmark.")
    parser.add_argument("out", nargs="?", default="BENCH_sampling.json")
    parser.add_argument("--profile", metavar="FILE",
                        help="sample the run with the wall-clock "
                             "profiler and write collapsed stacks "
                             "(flamegraph format) to FILE")
    parser.add_argument("--profile-hz", type=float, default=199.0,
                        help="profiler sampling rate (default 199)")
    args = parser.parse_args(argv)
    out = args.out
    if args.profile:
        with profiled(args.profile, hz=args.profile_hz) as prof:
            report = run_smoke()
        report["profile"] = prof.summary()
        top = prof.top_frames(1)
        if top:
            print(f"profile: {prof.samples} samples, "
                  f"{len(prof.stacks)} stacks -> {args.profile}; "
                  f"hottest frame {top[0][0]} ({top[0][1]})")
    else:
        report = run_smoke()
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    width = max(len(m) for m in report["samplers"])
    for method, entry in report["samplers"].items():
        line = (f"{method:<{width}}  "
                f"{entry['samples_per_sec']:>12,.1f} samples/s")
        if "speedup_vs_baseline" in entry:
            line += f"  ({entry['speedup_vs_baseline']:.2f}x baseline)"
        cache = entry.get("canonical_cache")
        if cache and cache["hits"] + cache["misses"] > 0:
            line += f"  canon hit_rate={cache['hit_rate']:.1%}"
        print(line)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
