"""Chaos harness: liveness + uniformity under injected faults.

``python -m repro.bench.chaos [OUT.json]`` drives the distributed
sampler through escalating per-operation fault rates and through
targeted mid-query crashes, asserting the two properties the
fault-tolerance design promises (``docs/fault_tolerance.md``):

* **liveness** — every session completes: replica failover and
  retry/backoff absorb transient faults, and graceful degradation
  turns a lost shard into reduced ``coverage`` instead of a hang or a
  crash;
* **uniformity** — the surviving merged stream stays uniform: a
  chi-square goodness-of-fit test over many first-k draws must not
  reject at any fault rate (failover re-opens filter already-emitted
  samples, so the conditional stream is still a uniform permutation).

The report lands in ``BENCH_chaos.json`` (CI uploads it as an
artifact).  Scales are smoke-sized: minutes of laptop time, tuned for
a regression tripwire rather than a paper figure.
"""

from __future__ import annotations

import json
import sys

import random

from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.sampling.base import take
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler
from repro.faults import FaultPlan
from repro.obs import Observability

__all__ = ["run_chaos", "main"]

#: Per-operation error probabilities the sweep escalates through.
FAULT_RATES = (0.0, 0.01, 0.1)
#: Chi-square rejection threshold (0.001 quantile, like the local
#: uniformity suite: false failures stay out, gross bias is caught).
P_THRESHOLD = 1e-3

N_POINTS = 240
N_WORKERS = 4
TRIALS = 400
K = 8


def _chi2_sf(chi2: float, df: int) -> float:
    """Chi-square survival function (scipy when present, else a
    Wilson–Hilferty normal approximation — plenty for a tripwire)."""
    try:
        from scipy import stats
    except ImportError:  # pragma: no cover - scipy ships in the image
        import math
        z = ((chi2 / df) ** (1 / 3)
             - (1 - 2 / (9 * df))) / math.sqrt(2 / (9 * df))
        return 0.5 * math.erfc(z / math.sqrt(2))
    return float(stats.chi2.sf(chi2, df=df))


def _grid_records(n: int, seed: int) -> list[Record]:
    """n scattered points with ids 0..n-1 inside a known box."""
    rng = random.Random(seed)
    return [Record(record_id=i,
                   lon=rng.uniform(0.0, 100.0),
                   lat=rng.uniform(0.0, 100.0),
                   t=rng.uniform(0.0, 1000.0))
            for i in range(n)]


def _plan(rate: float, seed: int) -> FaultPlan | None:
    if rate == 0.0:
        return None
    return (FaultPlan(seed=seed)
            .error_rate("worker.range_count", rate)
            .error_rate("worker.open_stream", rate)
            .error_rate("worker.fetch_batch", rate))


def _uniformity_sweep(rates, n: int, workers: int, replication: int,
                      trials: int, k: int, seed: int) -> list[dict]:
    records = _grid_records(n, seed)
    box = Rect((0.0, 0.0, 0.0), (100.0, 100.0, 1000.0))
    out = []
    for rate in rates:
        obs = Observability()
        index = DistributedSTIndex(records, n_workers=workers,
                                   replication=replication, seed=seed,
                                   faults=_plan(rate, seed * 31 + 1))
        sampler = DistributedSampler(index, backoff_seconds=0.001)
        sampler.bind_observability(obs)
        counts: dict[int, int] = {}
        completed = 0
        min_coverage = 1.0
        for trial in range(trials):
            rng = random.Random(seed * 1_000_003 + trial)
            stream = sampler.sample_stream(box, rng)
            drawn = take(stream, k)
            stream.close()
            for entry in drawn:
                counts[entry.item_id] = counts.get(entry.item_id,
                                                   0) + 1
            if len(drawn) == k:
                completed += 1
            min_coverage = min(min_coverage, sampler.coverage)
        total = sum(counts.values())
        expected = total / n
        chi2 = sum((counts.get(i, 0) - expected) ** 2 / expected
                   for i in range(n))
        p_value = _chi2_sf(chi2, df=n - 1)
        reg = obs.registry
        out.append({
            "fault_rate": rate,
            "trials": trials,
            "completed": completed,
            "p_value": p_value,
            "uniform": p_value > P_THRESHOLD,
            "min_coverage": min_coverage,
            "errors": reg.counter("storm.cluster.fault.errors").value,
            "retries": reg.counter(
                "storm.cluster.fault.retries").value,
            "failovers": reg.counter(
                "storm.cluster.fault.failovers").value,
            "degraded": reg.counter(
                "storm.cluster.fault.degraded").value,
        })
    return out


def _crash_scenario(replication: int, n: int, workers: int,
                    seed: int) -> dict:
    """Crash one worker mid-stream; report completion + coverage."""
    records = _grid_records(n, seed)
    box = Rect((0.0, 0.0, 0.0), (100.0, 100.0, 1000.0))
    index = DistributedSTIndex(records, n_workers=workers,
                               replication=replication, seed=seed,
                               faults=FaultPlan(seed=seed))
    # Small batches so shards are never fully buffered before the
    # crash — the coordinator must go back to the dead worker.
    sampler = DistributedSampler(index, batch_size=8,
                                 max_batch_size=16,
                                 backoff_seconds=0.001)
    rng = random.Random(seed)
    stream = sampler.sample_stream(box, rng)
    seen = [e.item_id for e in take(stream, n // 8)]
    index.cluster.crash_worker(1)
    seen.extend(e.item_id for e in stream)
    return {
        "replication": replication,
        "emitted": len(seen),
        "distinct": len(set(seen)),
        "population": n,
        "coverage": sampler.coverage,
        "failovers": sampler.last_faults.get("failovers", 0),
        "leaked_streams": sum(w.open_stream_count()
                              for w in index.cluster.workers),
    }


def run_chaos(n: int = N_POINTS, workers: int = N_WORKERS,
              replication: int = 2, trials: int = TRIALS, k: int = K,
              rates=FAULT_RATES, seed: int = 17) -> dict:
    """The full chaos report: fault-rate sweep + crash scenarios."""
    sweep = _uniformity_sweep(rates, n, workers, replication, trials,
                              k, seed)
    crash_replicated = _crash_scenario(2, n, workers, seed)
    crash_bare = _crash_scenario(1, n, workers, seed)
    ok = all(row["completed"] == row["trials"] and row["uniform"]
             for row in sweep)
    # With a replica the crash must be invisible to the result...
    ok = ok and crash_replicated["distinct"] == n \
        and crash_replicated["coverage"] == 1.0 \
        and crash_replicated["leaked_streams"] == 0
    # ...without one it must degrade, not fail.
    ok = ok and crash_bare["coverage"] < 1.0 \
        and crash_bare["leaked_streams"] == 0
    return {
        "benchmark": "chaos",
        "n": n, "workers": workers, "replication": replication,
        "trials": trials, "k": k,
        "fault_rate_sweep": sweep,
        "crash_with_replica": crash_replicated,
        "crash_without_replica": crash_bare,
        "ok": ok,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI: run the harness, print a summary, write the JSON report."""
    args = sys.argv[1:] if argv is None else argv
    out_path = args[0] if args else "BENCH_chaos.json"
    report = run_chaos()
    for row in report["fault_rate_sweep"]:
        print(f"rate={row['fault_rate']:<5} completed="
              f"{row['completed']}/{row['trials']} "
              f"p={row['p_value']:.4f} retries={row['retries']} "
              f"failovers={row['failovers']} "
              f"degraded={row['degraded']}")
    for key in ("crash_with_replica", "crash_without_replica"):
        row = report[key]
        print(f"{key}: emitted={row['emitted']} "
              f"distinct={row['distinct']}/{row['population']} "
              f"coverage={row['coverage']:.2f} "
              f"failovers={row['failovers']}")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
