"""Benchmark harness: regenerate the paper's evaluation artifacts.

``harness``
    Experiment runners producing structured result tables — one runner
    per paper artifact (Figure 3a query efficiency, Figure 3b online
    accuracy) plus the ablations DESIGN.md calls out.
``figures``
    The ``storm-bench`` CLI: run an experiment and print its table and
    ASCII chart (the offline stand-in for the paper's plots).
"""

from repro.bench.harness import (ExperimentResult, Fig3aRunner,
                                 Fig3bRunner, build_osm_dataset)

__all__ = ["ExperimentResult", "Fig3aRunner", "Fig3bRunner",
           "build_osm_dataset"]
