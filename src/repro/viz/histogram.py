"""Bar-chart rendering for GROUP BY results."""

from __future__ import annotations

from typing import Sequence

from repro.core.estimators.groupby import GroupResult

__all__ = ["render_groups"]


def render_groups(groups: Sequence[GroupResult], width: int = 40,
                  title: str | None = None,
                  show_mean: bool = True) -> str:
    """Render group shares as horizontal bars with intervals.

    Low-support groups print a '?' marker, mirroring the online
    group-by convention of flagging rather than hiding small groups.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not groups:
        lines.append("(no groups)")
        return "\n".join(lines)
    key_width = max(len(str(g.key)) for g in groups)
    peak = max(g.share for g in groups) or 1.0
    for g in groups:
        bar = "#" * max(1, int(g.share / peak * width))
        mark = " ?" if g.low_support else ""
        mean = ""
        if show_mean and g.mean is not None:
            half = (g.mean_interval.half_width
                    if g.mean_interval is not None else float("nan"))
            mean = f"  mean={g.mean:.4g}±{half:.2g}"
        lines.append(f"{str(g.key):<{key_width}} "
                     f"{g.share:6.1%} [{g.share_interval.lo:5.1%},"
                     f"{g.share_interval.hi:5.1%}] {bar}{mean}{mark}")
    return "\n".join(lines)
