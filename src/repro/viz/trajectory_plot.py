"""ASCII rendering of reconstructed trajectories (Figure 6a)."""

from __future__ import annotations

from repro.core.estimators.trajectory import Trajectory

__all__ = ["render_trajectory"]


def render_trajectory(trajectory: Trajectory, width: int = 60,
                      height: int = 20, title: str | None = None) -> str:
    """Plot a trajectory's path, sampling it densely in time.

    Vertices print as 'o', interpolated path points as '.', the start as
    'S' and the end as 'E'.
    """
    verts = trajectory.vertices
    if not verts:
        return "(empty trajectory)"
    xs = [v[1] for v in verts]
    ys = [v[2] for v in verts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        return height - 1 - row, col

    grid = [[" "] * width for _ in range(height)]
    # Interpolated path first, so vertices draw on top.
    t_lo, t_hi = verts[0][0], verts[-1][0]
    steps = max(2, width * 2)
    for i in range(steps):
        t = t_lo + (t_hi - t_lo) * i / (steps - 1)
        r, c = cell(*trajectory.position_at(t))
        grid[r][c] = "."
    for _, x, y in verts:
        r, c = cell(x, y)
        grid[r][c] = "o"
    r, c = cell(verts[0][1], verts[0][2])
    grid[r][c] = "S"
    r, c = cell(verts[-1][1], verts[-1][2])
    grid[r][c] = "E"
    lines = []
    if title:
        lines.append(title)
    lines.extend("".join(row) for row in grid)
    lines.append(f"[{len(verts)} vertices, span "
                 f"{trajectory.duration:.4g}s, "
                 f"length {trajectory.length():.4g}]")
    return "\n".join(lines)
