"""ASCII density-map rendering for the KDE demo."""

from __future__ import annotations

import numpy as np

__all__ = ["render_density", "render_density_with_ci"]

_SHADES = " .:-=+*#%@"


def render_density(field: np.ndarray, title: str | None = None,
                   shades: str = _SHADES) -> str:
    """Render a (ny, nx) density field as shaded characters.

    Row 0 of the field is the *southern* edge (lowest latitude), so it
    prints at the bottom like a map.
    """
    if field.ndim != 2:
        raise ValueError("density field must be 2-d")
    lo = float(np.min(field))
    hi = float(np.max(field))
    span = hi - lo
    lines = []
    if title:
        lines.append(title)
    for row in field[::-1]:  # north at the top
        if span <= 0:
            idx = np.zeros(len(row), dtype=int)
        else:
            idx = ((row - lo) / span * (len(shades) - 1)).astype(int)
        lines.append("".join(shades[i] for i in idx))
    lines.append(f"[min={lo:.4g} max={hi:.4g}]")
    return "\n".join(lines)


def render_density_with_ci(field: np.ndarray, lo_bound: np.ndarray,
                           hi_bound: np.ndarray,
                           title: str | None = None) -> str:
    """Density map plus a per-cell uncertainty marker.

    Cells whose interval is wider than half their estimate are rendered
    with '?' — visually showing where the online estimate is still fuzzy
    (these melt away as samples accumulate, like Figure 5's refinement).
    """
    if not (field.shape == lo_bound.shape == hi_bound.shape):
        raise ValueError("field and bounds must have the same shape")
    base = render_density(field, title=title).split("\n")
    offset = 1 if title else 0
    peak = float(np.max(field))
    if peak <= 0:
        return "\n".join(base)
    uncertain = (hi_bound - lo_bound) / 2.0 > 0.5 * np.maximum(
        field, 0.05 * peak)
    rows = []
    for i, line in enumerate(base):
        row_idx = i - offset
        if 0 <= row_idx < field.shape[0]:
            mask = uncertain[::-1][row_idx]
            line = "".join("?" if m else ch
                           for ch, m in zip(line, mask))
        rows.append(line)
    return "\n".join(rows)
