"""ASCII charts and result tables for the benchmark harness."""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_series", "render_table"]


def render_series(series: dict[str, list[tuple[float, float]]],
                  width: int = 64, height: int = 16,
                  x_label: str = "x", y_label: str = "y",
                  log_y: bool = False) -> str:
    """Plot one or more (x, y) series as an ASCII scatter chart.

    Each series gets a marker character; the legend maps them back.
    ``log_y`` plots log10(y) — the scale Figure 3(a) uses.
    """
    markers = "ox+*#@%&"
    points = []
    for si, (name, pts) in enumerate(series.items()):
        for x, y in pts:
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            points.append((x, y, markers[si % len(markers)]))
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker
    lines = ["".join(row) for row in grid]
    y_name = f"log10({y_label})" if log_y else y_label
    lines.append("-" * width)
    lines.append(f"{y_name}: [{y_lo:.4g}, {y_hi:.4g}]  "
                 f"{x_label}: [{x_lo:.4g}, {x_hi:.4g}]")
    legend = "  ".join(f"{markers[i % len(markers)]}={name}"
                       for i, name in enumerate(series))
    lines.append(legend)
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width text table (the harness's standard output format)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
