"""Visualizer: terminal renderings of online analytics results.

The paper's visualizer draws density maps and query results in a map UI;
offline we render to text — density fields as shaded character rasters,
error-vs-time curves as ASCII charts, trajectories as plotted paths.
The examples print these, and EXPERIMENTS.md embeds them.
"""

from repro.viz.density_map import render_density, render_density_with_ci
from repro.viz.histogram import render_groups
from repro.viz.series import render_series, render_table
from repro.viz.trajectory_plot import render_trajectory

__all__ = [
    "render_density",
    "render_density_with_ci",
    "render_groups",
    "render_series",
    "render_table",
    "render_trajectory",
]
