"""Tokenizer and recursive-descent parser for the query language.

The grammar (case-insensitive keywords)::

    query   := [EXPLAIN] ESTIMATE task FROM ident [WHERE cond (AND cond)*]
               option*
    task    := AVG(attr) | SUM(attr) | STD(attr) | VAR(attr)
             | MEDIAN(attr) | QUANTILE(attr, p) | COUNT
             | KDE [GRID NxM] [BANDWIDTH num]
             | TERMS [OF attr]
             | TRAJECTORY OF value [BY attr]
             | CLUSTERS(k)
    cond    := REGION(lo_lon, lo_lat, hi_lon, hi_lat)
             | TIME(t0, t1)            -- numbers or quoted timestamps
             | FILTER(attr op value)   -- op in = != < <= > >=
    option  := WITHIN ERROR num% [CONFIDENCE num%]
             | BUDGET num (MS | S)
             | SAMPLES n
             | USING ident
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.connector.parsers import parse_timestamp
from repro.errors import QueryParseError, SchemaError
from repro.query.ast import FilterSpec, QuerySpec, TaskSpec

__all__ = ["tokenize", "parse", "Token"]

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+\.?\d*(?:[eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),%x\-])
""", re.VERBOSE)

_AGG_TASKS = {"avg", "sum", "std", "var", "median"}
_METHODS = {"query-first", "sample-first", "random-path", "ls-tree",
            "rs-tree"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexed token with its source position."""
    kind: str       # 'string' | 'number' | 'ident' | 'op' | 'punct'
    text: str
    position: int

    @property
    def upper(self) -> str:
        """Upper-cased text (keyword comparisons)."""
        return self.text.upper()


def tokenize(text: str) -> list[Token]:
    """Lex query text into tokens (QueryParseError on bad chars)."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QueryParseError(
                f"unexpected character {text[pos]!r}", position=pos)
        kind = m.lastgroup
        if kind != "ws":
            tokens.append(Token(kind, m.group(), pos))  # type: ignore[arg-type]
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.i = 0

    # -- primitives ---------------------------------------------------------

    def peek(self) -> Token | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise QueryParseError("unexpected end of query",
                                  position=len(self.text))
        self.i += 1
        return tok

    def expect_keyword(self, *words: str) -> Token:
        tok = self.next()
        if tok.kind != "ident" or tok.upper not in words:
            raise QueryParseError(
                f"expected {' or '.join(words)}, got {tok.text!r}",
                position=tok.position)
        return tok

    def expect_punct(self, char: str) -> None:
        tok = self.next()
        if tok.kind != "punct" or tok.text != char:
            raise QueryParseError(f"expected {char!r}, got {tok.text!r}",
                                  position=tok.position)

    def accept_keyword(self, *words: str) -> Token | None:
        tok = self.peek()
        if tok is not None and tok.kind == "ident" \
                and tok.upper in words:
            self.i += 1
            return tok
        return None

    def accept_punct(self, char: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.kind == "punct" and tok.text == char:
            self.i += 1
            return True
        return False

    def ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise QueryParseError(
                f"expected an identifier, got {tok.text!r}",
                position=tok.position)
        return tok.text

    def number(self) -> float:
        tok = self.next()
        if tok.kind != "number":
            raise QueryParseError(f"expected a number, got {tok.text!r}",
                                  position=tok.position)
        return float(tok.text)

    def value(self):
        """A number, quoted string, or bare identifier."""
        tok = self.next()
        if tok.kind == "number":
            f = float(tok.text)
            return int(f) if f.is_integer() and "." not in tok.text \
                and "e" not in tok.text.lower() else f
        if tok.kind == "string":
            return tok.text[1:-1]
        if tok.kind == "ident":
            return tok.text
        raise QueryParseError(f"expected a value, got {tok.text!r}",
                              position=tok.position)

    def time_value(self) -> float:
        """A numeric epoch or a quoted date string."""
        tok = self.next()
        if tok.kind == "number":
            return float(tok.text)
        if tok.kind == "string":
            try:
                return parse_timestamp(tok.text[1:-1])
            except SchemaError as exc:
                raise QueryParseError(str(exc),
                                      position=tok.position) from exc
        raise QueryParseError(
            f"expected a timestamp, got {tok.text!r}",
            position=tok.position)

    # -- grammar ------------------------------------------------------------

    def parse(self) -> QuerySpec:
        explain = self.accept_keyword("EXPLAIN") is not None
        self.expect_keyword("ESTIMATE")
        task = self.task()
        self.expect_keyword("FROM")
        dataset = self.ident()
        region = time_range = record_filter = None
        if self.accept_keyword("WHERE"):
            region, time_range, record_filter = self.conditions()
        group_by = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self.ident()
            if task.kind not in ("avg", "sum", "count"):
                raise QueryParseError(
                    f"GROUP BY only supports AVG/SUM/COUNT, "
                    f"not {task.kind.upper()}")
        options = self.options()
        if self.peek() is not None:
            tok = self.peek()
            raise QueryParseError(
                f"trailing input starting at {tok.text!r}",  # type: ignore[union-attr]
                position=tok.position)  # type: ignore[union-attr]
        return QuerySpec(task=task, dataset=dataset, region=region,
                         time=time_range, record_filter=record_filter,
                         group_by=group_by, explain=explain, **options)

    def task(self) -> TaskSpec:
        tok = self.next()
        if tok.kind != "ident":
            raise QueryParseError(f"expected a task, got {tok.text!r}",
                                  position=tok.position)
        kind = tok.text.lower()
        if kind in _AGG_TASKS:
            self.expect_punct("(")
            attr = self.ident()
            self.expect_punct(")")
            return TaskSpec(kind=kind, attribute=attr)
        if kind == "quantile":
            self.expect_punct("(")
            attr = self.ident()
            self.expect_punct(",")
            p = self.number()
            self.expect_punct(")")
            if not 0.0 < p < 1.0:
                raise QueryParseError(
                    f"quantile must be in (0,1), got {p}",
                    position=tok.position)
            return TaskSpec(kind=kind, attribute=attr, params={"p": p})
        if kind == "count":
            if self.accept_punct("("):
                self.expect_punct(")")
            return TaskSpec(kind=kind)
        if kind == "kde":
            params = {}
            if self.accept_keyword("GRID"):
                grid_pos = self.peek().position if self.peek() else None
                nx = int(self.number())
                # "32x24" lexes as number, then either punct 'x' + number
                # or the single identifier "x24"; accept both shapes.
                if self.accept_punct("x"):
                    ny = int(self.number())
                else:
                    tok = self.next()
                    if tok.kind == "ident" and tok.text.lower() == "x":
                        ny = int(self.number())
                    elif tok.kind == "ident" and re.fullmatch(
                            r"[xX]\d+", tok.text):
                        ny = int(tok.text[1:])
                    else:
                        raise QueryParseError(
                            f"expected a grid like 32x24, got "
                            f"{tok.text!r}", position=tok.position)
                if nx < 1 or ny < 1:
                    raise QueryParseError("grid must be at least 1x1",
                                          position=grid_pos)
                params["nx"], params["ny"] = nx, ny
            if self.accept_keyword("BANDWIDTH"):
                params["bandwidth"] = self.number()
            return TaskSpec(kind=kind, params=params)
        if kind == "terms":
            attr = "text"
            if self.accept_keyword("OF"):
                attr = self.ident()
            return TaskSpec(kind=kind, attribute=attr)
        if kind == "trajectory":
            self.expect_keyword("OF")
            key_value = self.value()
            key_field = "user"
            if self.accept_keyword("BY"):
                key_field = self.ident()
            return TaskSpec(kind=kind, attribute=key_field,
                            params={"key": key_value})
        if kind == "timeseries":
            # TIMESERIES(buckets) or TIMESERIES(attr, buckets)
            self.expect_punct("(")
            attr = None
            tok2 = self.next()
            if tok2.kind == "ident":
                attr = tok2.text
                self.expect_punct(",")
                buckets = int(self.number())
            elif tok2.kind == "number":
                buckets = int(float(tok2.text))
            else:
                raise QueryParseError(
                    f"expected an attribute or bucket count, got "
                    f"{tok2.text!r}", position=tok2.position)
            self.expect_punct(")")
            if buckets < 1:
                raise QueryParseError("bucket count must be >= 1",
                                      position=tok.position)
            return TaskSpec(kind=kind, attribute=attr,
                            params={"buckets": buckets})
        if kind == "clusters":
            self.expect_punct("(")
            k = int(self.number())
            self.expect_punct(")")
            if k < 1:
                raise QueryParseError("cluster count must be >= 1",
                                      position=tok.position)
            return TaskSpec(kind=kind, params={"k": k})
        raise QueryParseError(f"unknown task {tok.text!r}",
                              position=tok.position)

    def conditions(self):
        region = time_range = record_filter = None
        while True:
            tok = self.expect_keyword("REGION", "TIME", "FILTER")
            if tok.upper == "REGION":
                if region is not None:
                    raise QueryParseError("duplicate REGION",
                                          position=tok.position)
                self.expect_punct("(")
                values = [self.number()]
                for _ in range(3):
                    self.expect_punct(",")
                    values.append(self.number())
                self.expect_punct(")")
                if values[0] > values[2] or values[1] > values[3]:
                    raise QueryParseError(
                        "REGION must be (lon_lo, lat_lo, lon_hi, lat_hi)",
                        position=tok.position)
                region = tuple(values)
            elif tok.upper == "TIME":
                if time_range is not None:
                    raise QueryParseError("duplicate TIME",
                                          position=tok.position)
                self.expect_punct("(")
                t0 = self.time_value()
                self.expect_punct(",")
                t1 = self.time_value()
                self.expect_punct(")")
                if t0 > t1:
                    raise QueryParseError("TIME range is inverted",
                                          position=tok.position)
                time_range = (t0, t1)
            else:  # FILTER
                if record_filter is not None:
                    raise QueryParseError("duplicate FILTER",
                                          position=tok.position)
                self.expect_punct("(")
                attr = self.ident()
                op_tok = self.next()
                if op_tok.kind != "op":
                    raise QueryParseError(
                        f"expected a comparison, got {op_tok.text!r}",
                        position=op_tok.position)
                value = self.value()
                self.expect_punct(")")
                record_filter = FilterSpec(attr, op_tok.text, value)
            if not self.accept_keyword("AND"):
                break
        return region, time_range, record_filter

    def options(self) -> dict:
        out: dict = {}
        while True:
            if self.accept_keyword("WITHIN"):
                self.expect_keyword("ERROR")
                err = self.number()
                self.expect_punct("%")
                out["target_error"] = err / 100.0
                if self.accept_keyword("CONFIDENCE"):
                    conf = self.number()
                    self.expect_punct("%")
                    if not 0 < conf < 100:
                        raise QueryParseError(
                            "confidence must be in (0, 100)%")
                    out["confidence"] = conf / 100.0
            elif self.accept_keyword("BUDGET"):
                amount = self.number()
                unit = self.expect_keyword("MS", "S")
                out["budget_seconds"] = amount / 1000.0 \
                    if unit.upper == "MS" else amount
            elif self.accept_keyword("SAMPLES"):
                out["max_samples"] = int(self.number())
            elif self.accept_keyword("WITH"):
                self.expect_keyword("REPLACEMENT")
                out["with_replacement"] = True
            elif self.accept_keyword("USING"):
                # Method names contain '-', which the lexer splits; accept
                # ident ('-' ident)* and rejoin.
                parts = [self.ident()]
                while self.accept_punct("-"):
                    parts.append(self.ident())
                method = "-".join(parts).lower()
                if method not in _METHODS:
                    raise QueryParseError(
                        f"unknown sampling method {method!r}")
                out["method"] = method
            else:
                break
        return out


def parse(text: str) -> QuerySpec:
    """Parse one query string into a :class:`QuerySpec`."""
    if not text or not text.strip():
        raise QueryParseError("empty query")
    return _Parser(tokenize(text), text).parse()
