"""AST for the keyword query language."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.records import STRange
from repro.errors import QueryParseError

__all__ = ["TaskSpec", "QuerySpec", "FilterSpec"]

TASK_KINDS = ("avg", "sum", "count", "std", "var", "median", "quantile",
              "kde", "terms", "trajectory", "clusters", "timeseries")

FILTER_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """What to estimate.

    ``kind`` is one of :data:`TASK_KINDS`; ``attribute`` names the record
    attribute for aggregates / the text field for TERMS / the key field
    for TRAJECTORY; ``params`` holds task-specific extras (grid size,
    quantile, cluster count, trajectory key value...).
    """

    kind: str
    attribute: str | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in TASK_KINDS:
            raise QueryParseError(f"unknown task kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class FilterSpec:
    """A record predicate: ``FILTER(attr op value)``."""

    attribute: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in FILTER_OPS:
            raise QueryParseError(f"unknown filter operator {self.op!r}")

    def matches(self, record) -> bool:
        """Evaluate the predicate against one record (False on type/missi
        ng)."""
        try:
            v = record.attrs[self.attribute]
        except KeyError:
            return False
        try:
            if self.op == "=":
                return v == self.value
            if self.op == "!=":
                return v != self.value
            if self.op == "<":
                return v < self.value
            if self.op == "<=":
                return v <= self.value
            if self.op == ">":
                return v > self.value
            return v >= self.value
        except TypeError:
            return False


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One parsed query."""

    task: TaskSpec
    dataset: str
    region: tuple[float, float, float, float] | None = None
    time: tuple[float, float] | None = None
    record_filter: FilterSpec | None = None
    group_by: str | None = None
    target_error: float | None = None      # relative, e.g. 0.02
    confidence: float = 0.95
    budget_seconds: float | None = None
    max_samples: int | None = None
    method: str | None = None               # forced sampling method
    with_replacement: bool = False
    explain: bool = False

    def st_range(self) -> STRange:
        """The spatio-temporal range (whole world when no REGION)."""
        if self.region is None:
            if self.time is None:
                return STRange.everywhere()
            big = 1e18
            return STRange(-big, -big, big, big, *self.time)
        lon_lo, lat_lo, lon_hi, lat_hi = self.region
        if self.time is None:
            return STRange(lon_lo, lat_lo, lon_hi, lat_hi)
        return STRange(lon_lo, lat_lo, lon_hi, lat_hi, *self.time)
