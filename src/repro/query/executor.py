"""Executes parsed queries against a StormEngine.

The executor builds the right estimator for the task, derives the stop
condition from the query's options (accuracy target / time budget / sample
budget), resolves the sampling method (forced via ``USING`` or chosen by
the per-dataset optimizer) and drives an online session.  ``EXPLAIN``
queries return the optimizer's scoring instead of running;
:meth:`QueryExecutor.explain_report` goes further and *runs* the query
under a trace, reporting the plan, per-phase simulated seconds and the
stop-condition outcome (an ``EXPLAIN ANALYZE``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace

from repro.core.engine import StormEngine
from repro.core.estimators.aggregates import (AvgEstimator, CountEstimator,
                                              QuantileEstimator,
                                              SumEstimator,
                                              VarianceEstimator)
from repro.core.estimators import GridSpec, OnlineKDE, OnlineKMeans
from repro.core.estimators.base import OnlineEstimator
from repro.core.estimators.groupby import GroupByEstimator
from repro.core.estimators.text import ShortTextEstimator
from repro.core.estimators.timeseries import TimeHistogramEstimator
from repro.core.blocks import backend_name as blocks_backend
from repro.core.estimators.trajectory import TrajectoryEstimator
from repro.core.records import STRange, attribute_getter
from repro.core.session import ProgressPoint, StopCondition
from repro.errors import StormError
from repro.index.cost import DEFAULT_COST_MODEL
from repro.obs import (NULL_OBS, Observability, Span, Tracer,
                       render_explain)
from repro.query.ast import QuerySpec
from repro.query.language import parse

__all__ = ["QueryExecutor", "QueryResult"]

_DEFAULT_SAMPLE_CAP = 2000

#: Plan line when a tiered ingest path (LSM) is attached: the per-tree
#: samplers only cover the main tier, so the method is not negotiable.
_TIERED_PLAN_TEXT = ("method fixed by tiered ingest: lsm-tiered "
                     "(per-tree samplers only see the main tier)")


@dataclass(slots=True)
class QueryResult:
    """Outcome of one executed query."""

    spec: QuerySpec
    final: ProgressPoint | None
    explanation: str | None = None
    #: Root span of the query's trace (None when tracing was off).
    trace: Span | None = None

    @property
    def value(self):
        """The final estimate's value (None for EXPLAIN)."""
        return self.final.estimate.value if self.final else None

    def summary(self) -> str:
        """One-line result: value, k/q, interval, stop reason."""
        if self.explanation is not None:
            return self.explanation
        assert self.final is not None
        est = self.final.estimate
        parts = [f"value={est.value!r}", f"k={est.k}", f"q={est.q}"]
        if est.interval is not None:
            parts.append(f"ci=[{est.interval.lo:.6g}, "
                         f"{est.interval.hi:.6g}]@{est.interval.level:.0%}")
        if est.exact:
            parts.append("exact")
        parts.append(f"stopped: {self.final.reason}")
        return " ".join(parts)


class QueryExecutor:
    """Runs query strings / specs on an engine."""

    def __init__(self, engine: StormEngine,
                 rng: random.Random | None = None,
                 obs: Observability | None = None):
        self.engine = engine
        self.rng = rng if rng is not None else random.Random()
        # Defaults to the engine's sink so CLI --trace / stats see
        # every query this executor runs.
        self.obs = obs if obs is not None \
            else getattr(engine, "obs", NULL_OBS)

    # ------------------------------------------------------------------

    def _estimator(self, spec: QuerySpec, query: STRange
                   ) -> OnlineEstimator:
        task = spec.task
        if spec.group_by is not None:
            attribute = None
            if task.kind in ("avg", "sum"):
                attribute = attribute_getter(task.attribute)
            return GroupByEstimator(spec.group_by, attribute=attribute)
        if task.kind == "avg":
            return AvgEstimator(attribute_getter(task.attribute))
        if task.kind == "sum":
            return SumEstimator(attribute_getter(task.attribute))
        if task.kind == "count":
            predicate = None
            if spec.record_filter is not None:
                predicate = spec.record_filter.matches
            return CountEstimator(predicate)
        if task.kind in ("std", "var"):
            return VarianceEstimator(attribute_getter(task.attribute),
                                     std=task.kind == "std")
        if task.kind == "median":
            return QuantileEstimator(attribute_getter(task.attribute),
                                     0.5)
        if task.kind == "quantile":
            return QuantileEstimator(attribute_getter(task.attribute),
                                     task.params["p"])
        if task.kind == "kde":
            if spec.region is None:
                raise StormError("KDE needs a REGION to grid over")
            lon_lo, lat_lo, lon_hi, lat_hi = spec.region
            grid = GridSpec(lon_lo, lat_lo, lon_hi, lat_hi,
                            nx=task.params.get("nx", 32),
                            ny=task.params.get("ny", 32))
            return OnlineKDE(grid,
                             bandwidth=task.params.get("bandwidth"))
        if task.kind == "terms":
            return ShortTextEstimator(text_field=task.attribute or "text")
        if task.kind == "trajectory":
            return TrajectoryEstimator(key_field=task.attribute,
                                       key_value=task.params["key"])
        if task.kind == "timeseries":
            if spec.time is None:
                raise StormError(
                    "TIMESERIES needs a TIME(...) range to bucket")
            attribute = attribute_getter(task.attribute) \
                if task.attribute else None
            return TimeHistogramEstimator(
                spec.time[0], spec.time[1],
                buckets=task.params["buckets"], attribute=attribute)
        if task.kind == "clusters":
            return OnlineKMeans(task.params["k"],
                                seed=self.rng.getrandbits(32))
        raise StormError(f"unsupported task kind {task.kind!r}")

    def _stop(self, spec: QuerySpec) -> StopCondition:
        max_samples = spec.max_samples
        if max_samples is None and spec.budget_seconds is None \
                and spec.target_error is None:
            # Batch API: cap so un-bounded queries still return.  The
            # interactive path iterates the session directly instead.
            max_samples = _DEFAULT_SAMPLE_CAP
        return StopCondition(max_samples=max_samples,
                             max_seconds=spec.budget_seconds,
                             target_relative_error=spec.target_error,
                             level=spec.confidence)

    def execute(self, query: "str | QuerySpec",
                obs: Observability | None = None) -> QueryResult:
        """Parse (if needed) and run one query to its stop condition.

        ``obs`` overrides the executor's observability sink for this
        one query (the EXPLAIN report runs under a private tracer).
        """
        spec = parse(query) if isinstance(query, str) else query
        used = obs if obs is not None else self.obs
        dataset = self.engine.dataset(spec.dataset)
        st_range = spec.st_range()
        rect = dataset.to_rect(st_range)
        # Distributed datasets fix their sampler at build time and
        # have no optimizer; fall back gracefully for them.
        optimizer = getattr(dataset, "optimizer", None)
        if spec.explain:
            if optimizer is None:
                return QueryResult(
                    spec=spec, final=None,
                    explanation=self._fixed_plan_text(dataset))
            if spec.method is None and \
                    getattr(dataset, "lsm", None) is not None:
                return QueryResult(spec=spec, final=None,
                                   explanation=_TIERED_PLAN_TEXT)
            plan = optimizer.choose(rect, expected_k=spec.max_samples)
            return QueryResult(spec=spec, final=None,
                               explanation=plan.explain())
        estimator = self._estimator(spec, st_range)
        method = spec.method
        # With a tiered ingest path attached the per-tree samplers only
        # see the main tier, so the optimizer must not pick one — the
        # dataset routes method=None to the tiered sampler itself.
        chosen_by_optimizer = method is None and optimizer is not None \
            and getattr(dataset, "lsm", None) is None
        if chosen_by_optimizer:
            method = optimizer.choose(
                rect, expected_k=spec.max_samples).method
        roots_before = len(used.tracer.roots)
        session = dataset.session(
            st_range, estimator, method=method, rng=self.rng,
            expected_k=spec.max_samples,
            with_replacement=spec.with_replacement, obs=used)
        started = time.perf_counter()
        final = session.run_to_stop(self._stop(spec))
        if used.registry.enabled:
            used.registry.histogram(
                "storm.query.latency_seconds",
                task=spec.task.kind, dataset=spec.dataset).observe(
                    time.perf_counter() - started)
        if chosen_by_optimizer and final.k > 0:
            # Close the loop: calibrate the optimizer with what the
            # chosen method actually cost.
            actual = DEFAULT_COST_MODEL.simulated_seconds(final.cost)
            optimizer.record_outcome(method, rect, final.k, actual)
        trace = used.tracer.roots[roots_before] \
            if len(used.tracer.roots) > roots_before else None
        return QueryResult(spec=spec, final=final, trace=trace)

    def explain_report(self, query: "str | QuerySpec",
                       obs: Observability | None = None) -> str:
        """Run the query under a trace and render the full EXPLAIN
        report: optimizer scoring (or the forced method), per-phase
        simulated seconds from the span tree, and the stop-condition
        outcome.  Spans go to a fresh private tracer so the report
        never mixes with other queries', while metrics keep flowing
        into the executor's registry (when live) — EXPLAIN and
        ``storm stats`` render from the same registry.
        """
        spec = parse(query) if isinstance(query, str) else query
        if spec.explain:
            spec = replace(spec, explain=False)
        dataset = self.engine.dataset(spec.dataset)
        rect = dataset.to_rect(spec.st_range())
        optimizer = getattr(dataset, "optimizer", None)
        if spec.method is not None:
            plan_text = f"method forced via USING: {spec.method}"
        elif optimizer is None:
            plan_text = self._fixed_plan_text(dataset)
        elif getattr(dataset, "lsm", None) is not None:
            plan_text = _TIERED_PLAN_TEXT
        else:
            plan_text = optimizer.choose(
                rect, expected_k=spec.max_samples).explain()
        if obs is not None:
            local = obs
        else:
            shared = self.obs.registry \
                if self.obs.registry.enabled else None
            local = Observability(registry=shared, tracer=Tracer())
        tree = getattr(dataset, "tree", None)
        canon_before = (tree.canon_hits, tree.canon_misses) \
            if tree is not None else (0, 0)
        vec_before = (getattr(tree, "vector_filters", 0),
                      getattr(tree, "vector_filter_hits", 0))
        registry = local.registry
        if registry.enabled:
            fault_before = {
                label: registry.counter(name).value
                for label, name in self._FAULT_COUNTERS.items()}
            dfs_before = (
                registry.counter("storm.dfs.cache.hits").value,
                registry.counter("storm.dfs.cache.misses").value)
        result = self.execute(spec, obs=local)
        assert result.final is not None
        caches = {}
        if tree is not None:
            caches["canonical-set"] = (
                tree.canon_hits - canon_before[0],
                tree.canon_misses - canon_before[1])
        # Leaf storage format and this query's vectorized-filter
        # activity (columnar leaves answer rect/time containment in
        # one pass over typed arrays; see repro.core.blocks).
        index = {}
        if tree is not None and hasattr(tree, "leaf_block_stats"):
            leaves, packed = tree.leaf_block_stats()
            if packed:
                index["leaf storage"] = (
                    f"columnar ({packed}/{leaves} leaves packed,"
                    f" {blocks_backend()} backend)")
            else:
                index["leaf storage"] = (
                    f"record-list ({leaves} leaves, no blocks built)")
            index["vectorized filters"] = \
                getattr(tree, "vector_filters", 0) - vec_before[0]
            index["vectorized filter hits"] = \
                getattr(tree, "vector_filter_hits", 0) - vec_before[1]
        faults = {}
        if registry.enabled:
            caches["dfs-block"] = (
                registry.counter("storm.dfs.cache.hits").value
                - dfs_before[0],
                registry.counter("storm.dfs.cache.misses").value
                - dfs_before[1])
            faults = {
                label: registry.counter(name).value - before
                for (label, name), before
                in zip(self._FAULT_COUNTERS.items(),
                       fault_before.values())}
        # The distributed sampler keeps per-stream tallies of this
        # query's fault events on its own (they reach the registry
        # only when the dataset was built with live observability, so
        # the tallies are the authoritative per-query source).
        sampler = getattr(dataset, "sampler", None)
        last = getattr(sampler, "last_faults", None)
        if last:
            faults.update({
                "worker errors": last.get("errors", 0),
                "retries": last.get("retries", 0),
                "stream failovers": last.get("failovers", 0),
                "degraded workers": last.get("degraded", 0),
                "backoff seconds": last.get("backoff_seconds", 0.0),
            })
        # Durability tallies are engine-lifetime, not per-query: WAL
        # traffic happens on the update path and recovery at load
        # time, so EXPLAIN surfaces the cumulative counters (all-zero
        # rows — i.e. a WAL-less engine — render nothing).
        durability = {}
        if registry.enabled:
            durability = {
                label: registry.counter(name).value
                for label, name in self._DURABILITY_COUNTERS.items()}
        # Tiered-ingest shape rides in the durability section: the
        # tiers are what the WAL's committed-but-uncompacted suffix
        # currently looks like (zero rows render nothing, so datasets
        # without an LSM attached are unaffected).
        lsm = getattr(dataset, "lsm", None)
        if lsm is not None:
            durability.update({
                f"lsm {key.replace('_', ' ')}": value
                for key, value in lsm.tier_shape().items()})
        return render_explain(plan_text, result.trace, result.final,
                              caches=caches, index=index, faults=faults,
                              durability=durability)

    #: Registry counters surfaced in the EXPLAIN "faults" section
    #: (label -> counter name); zero-valued rows are not rendered.
    _FAULT_COUNTERS = {
        "dfs failover attempts": "storm.dfs.failover.attempts",
        "dfs failover reads": "storm.dfs.failover.reads",
        "dfs replicas exhausted": "storm.dfs.failover.exhausted",
        "worker errors": "storm.cluster.fault.errors",
        "retries": "storm.cluster.fault.retries",
        "stream failovers": "storm.cluster.fault.failovers",
        "degraded workers": "storm.cluster.fault.degraded",
    }

    #: Registry counters surfaced in the EXPLAIN "durability" section
    #: (cumulative engine-lifetime values; zero rows not rendered).
    _DURABILITY_COUNTERS = {
        "wal appends": "storm.wal.appends",
        "wal bytes appended": "storm.wal.bytes_appended",
        "wal checkpoints": "storm.wal.checkpoints",
        "wal segments pruned": "storm.wal.segments_pruned",
        "recovery runs": "storm.recovery.runs",
        "recovery records replayed": "storm.recovery.records_replayed",
        "recovery ops replayed": "storm.recovery.ops_replayed",
        "recovery bytes discarded": "storm.recovery.bytes_discarded",
        "write crashes injected": "storm.dfs.write_crashes",
    }

    @staticmethod
    def _fixed_plan_text(dataset) -> str:
        """Plan line for datasets without an optimizer (the sampler
        was fixed at construction — e.g. distributed datasets)."""
        sampler = getattr(dataset, "sampler", None)
        name = getattr(sampler, "name", "fixed")
        return f"method fixed at build time: {name}"

    def session(self, query: "str | QuerySpec", *,
                rng: random.Random | None = None,
                obs: Observability | None = None,
                labels: dict[str, object] | None = None,
                report_every: int = 16,
                clock=None):
        """The interactive path: an OnlineQuerySession the caller drives
        (and may abandon at any time — the paper's exploration mode).

        The keyword hooks exist for re-entrant callers that multiplex
        many sessions over one executor — the query service hands every
        stream its own seeded ``rng`` (streams must not share draw
        state), tags sessions with tenant ``labels``, and sets
        ``report_every`` to its scheduling quantum.  ``clock``
        overrides the session's time source; durable detached streams
        pass a logical clock so every emitted frame is reproducible
        byte-for-byte across a restart.
        """
        spec = parse(query) if isinstance(query, str) else query
        if spec.explain:
            raise StormError("EXPLAIN queries have no session")
        dataset = self.engine.dataset(spec.dataset)
        st_range = spec.st_range()
        estimator = self._estimator(spec, st_range)
        return dataset.session(
            st_range, estimator, method=spec.method,
            rng=rng if rng is not None else self.rng,
            expected_k=spec.max_samples,
            report_every=report_every,
            with_replacement=spec.with_replacement,
            obs=obs, labels=labels, clock=clock), self._stop(spec)
