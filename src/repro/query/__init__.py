"""STORM's keyword query language and query interface.

The paper: "its query interface supports a keyword based query language
with a query parser, where predefined keywords are used to specify an
aggregation or an analytical task ... a temporal range and a spatial
region (on a map) are used to define a spatio-temporal query range."

Examples the parser accepts::

    ESTIMATE AVG(altitude) FROM osm
        WHERE REGION(-114, 37, -109, 42) AND TIME(0, 86400)
        WITHIN ERROR 2% CONFIDENCE 95%

    ESTIMATE KDE GRID 32x24 FROM tweets
        WHERE REGION(-112.3, 40.4, -111.5, 41.1)
        BUDGET 200 MS

    ESTIMATE TERMS OF text FROM tweets
        WHERE REGION(-84.55, 33.6, -84.25, 33.9)
          AND TIME('2014-02-10', '2014-02-13')
        SAMPLES 500

    EXPLAIN ESTIMATE COUNT FROM osm WHERE REGION(0, 0, 10, 10)

``parse`` produces a :class:`~repro.query.ast.QuerySpec`;
:class:`~repro.query.executor.QueryExecutor` runs it against a
:class:`~repro.core.engine.StormEngine`.
"""

from repro.query.ast import QuerySpec, TaskSpec
from repro.query.executor import QueryExecutor, QueryResult
from repro.query.language import parse, tokenize

__all__ = ["QueryExecutor", "QueryResult", "QuerySpec", "TaskSpec",
           "parse", "tokenize"]
