"""storm-query: a small REPL/one-shot CLI over the demo datasets.

The paper's demo runs queries interactively from a map UI; this is the
terminal equivalent.  It loads one or more synthetic workloads, then
either executes a single query (``--query``) or drops into a REPL::

    storm-query --dataset osm --n 20000
    storm> ESTIMATE AVG(altitude) FROM osm WHERE \
           REGION(-114, 37, -109, 42) WITHIN ERROR 2%
    storm> EXPLAIN ESTIMATE COUNT FROM osm WHERE REGION(-114,37,-109,42)
    storm> EXPLAIN ANALYZE ESTIMATE AVG(altitude) FROM osm \
           WHERE REGION(-114, 37, -109, 42)
    storm> stats

Observability hooks:

* ``--trace FILE`` appends one JSONL record per span (plus a final
  metrics snapshot) for every query executed;
* the ``stats`` subcommand (``storm-query stats --dataset osm ...``)
  loads the datasets with a live registry, optionally runs ``--query``,
  and prints the metrics dashboard;
* in the REPL, ``stats`` prints the dashboard of everything run so far
  and ``EXPLAIN ANALYZE <query>`` runs the query under a trace and
  prints the per-phase cost report.

Durability hooks:

* ``--store-root DIR`` loads datasets from a persisted document store
  (a DFS root directory) instead of generating synthetic ones; WAL
  recovery runs first unless ``--no-wal`` is given, and any replay is
  reported before the prompt appears;
* the ``recover`` subcommand (``storm-query recover --store-root DIR``)
  runs crash recovery on a persisted store — truncates torn WAL tails,
  replays committed-but-unflushed batches, prints the
  :class:`~repro.storage.recovery.RecoveryReport` — and exits.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.engine import StormEngine
from repro.distributed.dataset import DistributedDataset
from repro.errors import StormError
from repro.faults import FaultPlan
from repro.obs import (NULL_OBS, Observability, render_dashboard,
                       write_jsonl)
from repro.query.executor import QueryExecutor
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.persistence import load_engine
from repro.storage.recovery import recover_store
from repro.storage.wal import WriteAheadLog
from repro.workloads import (ElectricityWorkload, MesoWestWorkload,
                             OSMWorkload, TwitterWorkload)

__all__ = ["main", "build_engine"]

_WORKLOADS = {
    "osm": lambda n, seed: OSMWorkload(n=n, seed=seed).generate(),
    "tweets": lambda n, seed: TwitterWorkload(n=n, seed=seed).generate(),
    "mesowest": lambda n, seed: MesoWestWorkload(
        stations=max(1, n // 25), measurements_per_station=25,
        seed=seed).generate(),
    "electricity": lambda n, seed: ElectricityWorkload(
        units=max(1, n // 12), readings_per_unit=12,
        seed=seed).generate(),
}


def build_engine(datasets: list[str], n: int, seed: int,
                 obs: Observability | None = None,
                 workers: int = 0, replication: int = 1,
                 faults: "FaultPlan | None" = None) -> StormEngine:
    """Load the named synthetic datasets into a fresh engine.

    ``workers > 0`` shards each dataset across a simulated cluster of
    that many workers (``replication`` copies per shard) instead of
    building a local index; ``faults`` attaches a fault-injection plan
    to every cluster (see :mod:`repro.faults`).
    """
    engine = StormEngine(seed=seed, obs=obs)
    for name in datasets:
        maker = _WORKLOADS.get(name)
        if maker is None:
            raise StormError(
                f"unknown dataset {name!r}; pick from "
                f"{sorted(_WORKLOADS)}")
        records = maker(n, seed)
        if workers > 0:
            engine.register(DistributedDataset(
                name, records, n_workers=workers,
                replication=replication, faults=faults, seed=seed,
                obs=engine.obs))
        else:
            engine.create_dataset(name, records)
    return engine


def main(argv: list[str] | None = None) -> int:
    """storm-query entry point: one-shot --query, REPL, stats, or
    recover."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "recover":
        return _recover_main(argv[1:])
    stats_mode = bool(argv) and argv[0] == "stats"
    if stats_mode:
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="storm-query",
        description="Run STORM keyword queries on synthetic datasets. "
                    "Use the 'stats' subcommand to print the metrics "
                    "dashboard after loading (and optionally querying).")
    parser.add_argument("--dataset", action="append", default=[],
                        help="dataset(s) to load: osm, tweets, mesowest, "
                             "electricity (repeatable)")
    parser.add_argument("--n", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument("--trace", metavar="FILE",
                        help="append per-query span trees and a metrics "
                             "snapshot to FILE as JSONL")
    parser.add_argument("--workers", type=int, default=0,
                        help="shard each dataset across N simulated "
                             "workers (0 = local index, the default)")
    parser.add_argument("--replication", type=int, default=1,
                        help="copies of each shard when --workers is "
                             "set (failover targets; default 1)")
    parser.add_argument("--fault-plan", metavar="FILE",
                        help="JSON fault-injection plan applied to the "
                             "cluster (see docs/fault_tolerance.md); "
                             "needs --workers")
    parser.add_argument("--store-root", metavar="DIR",
                        help="load datasets from a persisted document "
                             "store at DIR (runs WAL recovery first) "
                             "instead of generating synthetic ones")
    parser.add_argument("--no-wal", dest="wal", action="store_false",
                        help="with --store-root: skip WAL recovery and "
                             "load the last checkpoint as-is")
    parser.add_argument("--wal-segment-bytes", type=int, default=65536,
                        help="WAL segment roll threshold in bytes "
                             "(default 65536)")
    args = parser.parse_args(argv)
    if args.store_root and args.dataset:
        print("error: --store-root and --dataset are exclusive",
              file=sys.stderr)
        return 1
    datasets = args.dataset or ["osm"]
    faults = None
    if args.fault_plan:
        if args.workers <= 0:
            print("error: --fault-plan needs --workers",
                  file=sys.stderr)
            return 1
        try:
            faults = FaultPlan.from_json(args.fault_plan)
        except StormError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    # Instrumentation is opt-in: only --trace / stats pay for it.
    obs = Observability() if (args.trace or stats_mode) else NULL_OBS
    try:
        if args.store_root:
            print(f"loading store at {args.store_root} ...",
                  file=sys.stderr)
            engine = _load_persisted(
                args.store_root, seed=args.seed, obs=obs,
                wal=args.wal,
                wal_segment_bytes=args.wal_segment_bytes)
        else:
            print(f"loading {datasets} with n={args.n} ...",
                  file=sys.stderr)
            engine = build_engine(datasets, args.n, args.seed, obs=obs,
                                  workers=args.workers,
                                  replication=args.replication,
                                  faults=faults)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    executor = QueryExecutor(engine, rng=random.Random(args.seed))
    trace_file = None
    if args.trace:
        try:
            trace_file = open(args.trace, "a")
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}",
                  file=sys.stderr)
            return 1
    try:
        if stats_mode:
            if args.query:
                rc = _run_one(executor, args.query, trace_file)
                if rc != 0:
                    return rc
            print(render_dashboard(obs.registry))
            return 0
        if args.query:
            return _run_one(executor, args.query, trace_file)
        print("storm> type a query, 'stats', or 'quit'",
              file=sys.stderr)
        while True:
            try:
                line = input("storm> ")
            except EOFError:
                return 0
            if line.strip().lower() in ("quit", "exit"):
                return 0
            if not line.strip():
                continue
            if line.strip().lower() == "stats":
                print(render_dashboard(executor.obs.registry))
                continue
            _run_one(executor, line, trace_file)
    finally:
        if trace_file is not None:
            # One closing metrics snapshot summarises the session.
            write_jsonl(trace_file, (), registry=obs.registry)
            trace_file.close()


def _load_persisted(store_root: str, seed: int, obs: Observability,
                    wal: bool, wal_segment_bytes: int):
    """Open a persisted store (with WAL recovery unless disabled) and
    rebuild the engine from it."""
    dfs = SimulatedDFS(root=store_root,
                       obs=obs if obs.enabled else None)
    store = DocumentStore(dfs)
    log = None
    if wal:
        log = WriteAheadLog(dfs, segment_bytes=wal_segment_bytes,
                            obs=obs if obs.enabled else None)
    engine = load_engine(store, seed=seed, wal=log, obs=obs)
    report = getattr(engine, "last_recovery", None)
    if report is not None and (report.batches_replayed
                               or report.bytes_discarded):
        print(report.render(), file=sys.stderr)
    return engine


def _recover_main(argv: list[str]) -> int:
    """``storm-query recover``: run crash recovery on a persisted
    store and print the recovery report."""
    parser = argparse.ArgumentParser(
        prog="storm-query recover",
        description="Recover a persisted STORM store: truncate torn "
                    "WAL tails, replay committed-but-unflushed "
                    "batches onto the last checkpoint, and print the "
                    "recovery report.")
    parser.add_argument("--store-root", metavar="DIR", required=True,
                        help="DFS root directory of the store")
    parser.add_argument("--wal-segment-bytes", type=int, default=65536,
                        help="WAL segment roll threshold in bytes "
                             "(default 65536)")
    parser.add_argument("--no-checkpoint", dest="checkpoint",
                        action="store_false",
                        help="inspect-only: replay in memory but do "
                             "not write the recovery checkpoint")
    args = parser.parse_args(argv)
    try:
        dfs = SimulatedDFS(root=args.store_root)
        store = DocumentStore(dfs)
        wal = WriteAheadLog(dfs,
                            segment_bytes=args.wal_segment_bytes)
        report = recover_store(store, wal,
                               checkpoint=args.checkpoint)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _run_one(executor: QueryExecutor, query: str,
             trace_file=None) -> int:
    try:
        stripped = query.strip()
        if stripped.upper().startswith("EXPLAIN ANALYZE"):
            rest = stripped[len("EXPLAIN ANALYZE"):].strip()
            report = executor.explain_report(
                rest, obs=executor.obs if executor.obs.enabled
                else None)
            print(report)
        else:
            result = executor.execute(query)
            print(result.summary())
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_file is not None:
            write_jsonl(trace_file, executor.obs.tracer.drain())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
