"""storm-query: a small REPL/one-shot CLI over the demo datasets.

The paper's demo runs queries interactively from a map UI; this is the
terminal equivalent.  It loads one or more synthetic workloads, then
either executes a single query (``--query``) or drops into a REPL::

    storm-query --dataset osm --n 20000
    storm> ESTIMATE AVG(altitude) FROM osm WHERE \
           REGION(-114, 37, -109, 42) WITHIN ERROR 2%
    storm> EXPLAIN ESTIMATE COUNT FROM osm WHERE REGION(-114,37,-109,42)
    storm> EXPLAIN ANALYZE ESTIMATE AVG(altitude) FROM osm \
           WHERE REGION(-114, 37, -109, 42)
    storm> stats

Observability hooks:

* ``--trace FILE`` appends one JSONL record per span (plus a final
  metrics snapshot) for every query executed;
* the ``stats`` subcommand (``storm-query stats --dataset osm ...``)
  loads the datasets with a live registry, optionally runs ``--query``,
  and prints the metrics dashboard;
* in the REPL, ``stats`` prints the dashboard of everything run so far
  and ``EXPLAIN ANALYZE <query>`` runs the query under a trace and
  prints the per-phase cost report.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.engine import StormEngine
from repro.distributed.dataset import DistributedDataset
from repro.errors import StormError
from repro.faults import FaultPlan
from repro.obs import (NULL_OBS, Observability, render_dashboard,
                       write_jsonl)
from repro.query.executor import QueryExecutor
from repro.workloads import (ElectricityWorkload, MesoWestWorkload,
                             OSMWorkload, TwitterWorkload)

__all__ = ["main", "build_engine"]

_WORKLOADS = {
    "osm": lambda n, seed: OSMWorkload(n=n, seed=seed).generate(),
    "tweets": lambda n, seed: TwitterWorkload(n=n, seed=seed).generate(),
    "mesowest": lambda n, seed: MesoWestWorkload(
        stations=max(1, n // 25), measurements_per_station=25,
        seed=seed).generate(),
    "electricity": lambda n, seed: ElectricityWorkload(
        units=max(1, n // 12), readings_per_unit=12,
        seed=seed).generate(),
}


def build_engine(datasets: list[str], n: int, seed: int,
                 obs: Observability | None = None,
                 workers: int = 0, replication: int = 1,
                 faults: "FaultPlan | None" = None) -> StormEngine:
    """Load the named synthetic datasets into a fresh engine.

    ``workers > 0`` shards each dataset across a simulated cluster of
    that many workers (``replication`` copies per shard) instead of
    building a local index; ``faults`` attaches a fault-injection plan
    to every cluster (see :mod:`repro.faults`).
    """
    engine = StormEngine(seed=seed, obs=obs)
    for name in datasets:
        maker = _WORKLOADS.get(name)
        if maker is None:
            raise StormError(
                f"unknown dataset {name!r}; pick from "
                f"{sorted(_WORKLOADS)}")
        records = maker(n, seed)
        if workers > 0:
            engine.register(DistributedDataset(
                name, records, n_workers=workers,
                replication=replication, faults=faults, seed=seed,
                obs=engine.obs))
        else:
            engine.create_dataset(name, records)
    return engine


def main(argv: list[str] | None = None) -> int:
    """storm-query entry point: one-shot --query, REPL, or stats."""
    if argv is None:
        argv = sys.argv[1:]
    stats_mode = bool(argv) and argv[0] == "stats"
    if stats_mode:
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="storm-query",
        description="Run STORM keyword queries on synthetic datasets. "
                    "Use the 'stats' subcommand to print the metrics "
                    "dashboard after loading (and optionally querying).")
    parser.add_argument("--dataset", action="append", default=[],
                        help="dataset(s) to load: osm, tweets, mesowest, "
                             "electricity (repeatable)")
    parser.add_argument("--n", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument("--trace", metavar="FILE",
                        help="append per-query span trees and a metrics "
                             "snapshot to FILE as JSONL")
    parser.add_argument("--workers", type=int, default=0,
                        help="shard each dataset across N simulated "
                             "workers (0 = local index, the default)")
    parser.add_argument("--replication", type=int, default=1,
                        help="copies of each shard when --workers is "
                             "set (failover targets; default 1)")
    parser.add_argument("--fault-plan", metavar="FILE",
                        help="JSON fault-injection plan applied to the "
                             "cluster (see docs/fault_tolerance.md); "
                             "needs --workers")
    args = parser.parse_args(argv)
    datasets = args.dataset or ["osm"]
    faults = None
    if args.fault_plan:
        if args.workers <= 0:
            print("error: --fault-plan needs --workers",
                  file=sys.stderr)
            return 1
        try:
            faults = FaultPlan.from_json(args.fault_plan)
        except StormError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    # Instrumentation is opt-in: only --trace / stats pay for it.
    obs = Observability() if (args.trace or stats_mode) else NULL_OBS
    print(f"loading {datasets} with n={args.n} ...", file=sys.stderr)
    try:
        engine = build_engine(datasets, args.n, args.seed, obs=obs,
                              workers=args.workers,
                              replication=args.replication,
                              faults=faults)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    executor = QueryExecutor(engine, rng=random.Random(args.seed))
    trace_file = None
    if args.trace:
        try:
            trace_file = open(args.trace, "a")
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}",
                  file=sys.stderr)
            return 1
    try:
        if stats_mode:
            if args.query:
                rc = _run_one(executor, args.query, trace_file)
                if rc != 0:
                    return rc
            print(render_dashboard(obs.registry))
            return 0
        if args.query:
            return _run_one(executor, args.query, trace_file)
        print("storm> type a query, 'stats', or 'quit'",
              file=sys.stderr)
        while True:
            try:
                line = input("storm> ")
            except EOFError:
                return 0
            if line.strip().lower() in ("quit", "exit"):
                return 0
            if not line.strip():
                continue
            if line.strip().lower() == "stats":
                print(render_dashboard(executor.obs.registry))
                continue
            _run_one(executor, line, trace_file)
    finally:
        if trace_file is not None:
            # One closing metrics snapshot summarises the session.
            write_jsonl(trace_file, (), registry=obs.registry)
            trace_file.close()


def _run_one(executor: QueryExecutor, query: str,
             trace_file=None) -> int:
    try:
        stripped = query.strip()
        if stripped.upper().startswith("EXPLAIN ANALYZE"):
            rest = stripped[len("EXPLAIN ANALYZE"):].strip()
            report = executor.explain_report(
                rest, obs=executor.obs if executor.obs.enabled
                else None)
            print(report)
        else:
            result = executor.execute(query)
            print(result.summary())
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_file is not None:
            write_jsonl(trace_file, executor.obs.tracer.drain())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
