"""storm-query: a small REPL/one-shot CLI over the demo datasets.

The paper's demo runs queries interactively from a map UI; this is the
terminal equivalent.  It loads one or more synthetic workloads, then
either executes a single query (``--query``) or drops into a REPL::

    storm-query --dataset osm --n 20000
    storm> ESTIMATE AVG(altitude) FROM osm WHERE \
           REGION(-114, 37, -109, 42) WITHIN ERROR 2%
    storm> EXPLAIN ESTIMATE COUNT FROM osm WHERE REGION(-114,37,-109,42)
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.engine import StormEngine
from repro.errors import StormError
from repro.query.executor import QueryExecutor
from repro.workloads import (ElectricityWorkload, MesoWestWorkload,
                             OSMWorkload, TwitterWorkload)

__all__ = ["main", "build_engine"]

_WORKLOADS = {
    "osm": lambda n, seed: OSMWorkload(n=n, seed=seed).generate(),
    "tweets": lambda n, seed: TwitterWorkload(n=n, seed=seed).generate(),
    "mesowest": lambda n, seed: MesoWestWorkload(
        stations=max(1, n // 25), measurements_per_station=25,
        seed=seed).generate(),
    "electricity": lambda n, seed: ElectricityWorkload(
        units=max(1, n // 12), readings_per_unit=12,
        seed=seed).generate(),
}


def build_engine(datasets: list[str], n: int, seed: int) -> StormEngine:
    """Load the named synthetic datasets into a fresh engine."""
    engine = StormEngine(seed=seed)
    for name in datasets:
        maker = _WORKLOADS.get(name)
        if maker is None:
            raise StormError(
                f"unknown dataset {name!r}; pick from "
                f"{sorted(_WORKLOADS)}")
        engine.create_dataset(name, maker(n, seed))
    return engine


def main(argv: list[str] | None = None) -> int:
    """storm-query entry point: one-shot --query or a REPL."""
    parser = argparse.ArgumentParser(
        prog="storm-query",
        description="Run STORM keyword queries on synthetic datasets.")
    parser.add_argument("--dataset", action="append", default=[],
                        help="dataset(s) to load: osm, tweets, mesowest, "
                             "electricity (repeatable)")
    parser.add_argument("--n", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--query", help="run one query and exit")
    args = parser.parse_args(argv)
    datasets = args.dataset or ["osm"]
    print(f"loading {datasets} with n={args.n} ...", file=sys.stderr)
    engine = build_engine(datasets, args.n, args.seed)
    executor = QueryExecutor(engine, rng=random.Random(args.seed))
    if args.query:
        return _run_one(executor, args.query)
    print("storm> type a query, or 'quit'", file=sys.stderr)
    while True:
        try:
            line = input("storm> ")
        except EOFError:
            return 0
        if line.strip().lower() in ("quit", "exit"):
            return 0
        if not line.strip():
            continue
        _run_one(executor, line)


def _run_one(executor: QueryExecutor, query: str) -> int:
    try:
        result = executor.execute(query)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
