"""storm-query: a small REPL/one-shot CLI over the demo datasets.

The paper's demo runs queries interactively from a map UI; this is the
terminal equivalent.  It loads one or more synthetic workloads, then
either executes a single query (``--query``) or drops into a REPL::

    storm-query --dataset osm --n 20000
    storm> ESTIMATE AVG(altitude) FROM osm WHERE \
           REGION(-114, 37, -109, 42) WITHIN ERROR 2%
    storm> EXPLAIN ESTIMATE COUNT FROM osm WHERE REGION(-114,37,-109,42)
    storm> EXPLAIN ANALYZE ESTIMATE AVG(altitude) FROM osm \
           WHERE REGION(-114, 37, -109, 42)
    storm> stats

Observability hooks:

* ``--trace FILE`` appends one JSONL record per span (plus a final
  metrics snapshot) for every query executed;
* the ``stats`` subcommand (``storm-query stats --dataset osm ...``)
  loads the datasets with a live registry, optionally runs ``--query``,
  and prints the metrics dashboard;
* in the REPL, ``stats`` prints the dashboard of everything run so far
  and ``EXPLAIN ANALYZE <query>`` runs the query under a trace and
  prints the per-phase cost report;
* ``stats --watch N`` re-renders the dashboard every N seconds;
* ``--metrics-port PORT`` serves ``/metrics`` (Prometheus text),
  ``/metrics.json`` and ``/health`` for the life of the process, and
  the ``serve-metrics`` subcommand does only that;
* the ``serve`` subcommand runs the full multi-tenant query service
  over HTTP — progressive NDJSON streams, named sessions, fair
  scheduling and admission control (see docs/service.md);
* ``--profile FILE`` runs the sampling profiler and writes collapsed
  stacks (flamegraph format) to FILE on exit.

Durability hooks:

* ``--store-root DIR`` loads datasets from a persisted document store
  (a DFS root directory) instead of generating synthetic ones; WAL
  recovery runs first unless ``--no-wal`` is given, and any replay is
  reported before the prompt appears;
* the ``recover`` subcommand (``storm-query recover --store-root DIR``)
  runs crash recovery on a persisted store — truncates torn WAL tails,
  replays committed-but-unflushed batches, prints the
  :class:`~repro.storage.recovery.RecoveryReport` — and exits.
"""

from __future__ import annotations

import argparse
import contextlib
import random
import sys
import time

from repro.core.engine import StormEngine
from repro.distributed.dataset import DistributedDataset
from repro.errors import StormError
from repro.faults import FaultPlan
from repro.obs import (NULL_OBS, MetricsEndpoint, Observability,
                       profiled, render_dashboard, write_jsonl)
from repro.query.executor import QueryExecutor
from repro.storage.dfs import SimulatedDFS
from repro.storage.document_store import DocumentStore
from repro.storage.persistence import load_engine
from repro.storage.recovery import recover_store
from repro.storage.wal import WriteAheadLog
from repro.workloads import (ElectricityWorkload, MesoWestWorkload,
                             OSMWorkload, TwitterWorkload)

__all__ = ["main", "build_engine"]

_WORKLOADS = {
    "osm": lambda n, seed: OSMWorkload(n=n, seed=seed).generate(),
    "tweets": lambda n, seed: TwitterWorkload(n=n, seed=seed).generate(),
    "mesowest": lambda n, seed: MesoWestWorkload(
        stations=max(1, n // 25), measurements_per_station=25,
        seed=seed).generate(),
    "electricity": lambda n, seed: ElectricityWorkload(
        units=max(1, n // 12), readings_per_unit=12,
        seed=seed).generate(),
}


def build_engine(datasets: list[str], n: int, seed: int,
                 obs: Observability | None = None,
                 workers: int = 0, replication: int = 1,
                 faults: "FaultPlan | None" = None) -> StormEngine:
    """Load the named synthetic datasets into a fresh engine.

    ``workers > 0`` shards each dataset across a simulated cluster of
    that many workers (``replication`` copies per shard) instead of
    building a local index; ``faults`` attaches a fault-injection plan
    to every cluster (see :mod:`repro.faults`).
    """
    engine = StormEngine(seed=seed, obs=obs)
    for name in datasets:
        maker = _WORKLOADS.get(name)
        if maker is None:
            raise StormError(
                f"unknown dataset {name!r}; pick from "
                f"{sorted(_WORKLOADS)}")
        records = maker(n, seed)
        if workers > 0:
            engine.register(DistributedDataset(
                name, records, n_workers=workers,
                replication=replication, faults=faults, seed=seed,
                obs=engine.obs))
        else:
            engine.create_dataset(name, records)
    return engine


def main(argv: list[str] | None = None) -> int:
    """storm-query entry point: one-shot --query, REPL, stats, or
    recover."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "recover":
        return _recover_main(argv[1:])
    if argv and argv[0] == "serve-metrics":
        return _serve_metrics_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    stats_mode = bool(argv) and argv[0] == "stats"
    if stats_mode:
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="storm-query",
        description="Run STORM keyword queries on synthetic datasets. "
                    "Use the 'stats' subcommand to print the metrics "
                    "dashboard after loading (and optionally querying).")
    parser.add_argument("--dataset", action="append", default=[],
                        help="dataset(s) to load: osm, tweets, mesowest, "
                             "electricity (repeatable)")
    parser.add_argument("--n", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument("--trace", metavar="FILE",
                        help="append per-query span trees and a metrics "
                             "snapshot to FILE as JSONL")
    parser.add_argument("--workers", type=int, default=0,
                        help="shard each dataset across N simulated "
                             "workers (0 = local index, the default)")
    parser.add_argument("--replication", type=int, default=1,
                        help="copies of each shard when --workers is "
                             "set (failover targets; default 1)")
    parser.add_argument("--fault-plan", metavar="FILE",
                        help="JSON fault-injection plan applied to the "
                             "cluster (see docs/fault_tolerance.md); "
                             "needs --workers")
    parser.add_argument("--store-root", metavar="DIR",
                        help="load datasets from a persisted document "
                             "store at DIR (runs WAL recovery first) "
                             "instead of generating synthetic ones")
    parser.add_argument("--no-wal", dest="wal", action="store_false",
                        help="with --store-root: skip WAL recovery and "
                             "load the last checkpoint as-is")
    parser.add_argument("--wal-segment-bytes", type=int, default=65536,
                        help="WAL segment roll threshold in bytes "
                             "(default 65536)")
    parser.add_argument("--metrics-port", type=int, metavar="PORT",
                        help="serve /metrics, /metrics.json and "
                             "/health on PORT for the life of the "
                             "process (0 = ephemeral port)")
    parser.add_argument("--profile", metavar="FILE",
                        help="run the sampling profiler and write "
                             "collapsed stacks (flamegraph format) "
                             "to FILE on exit")
    parser.add_argument("--profile-hz", type=float, default=97.0,
                        help="profiler sampling rate (default 97)")
    parser.add_argument("--watch", type=int, metavar="N",
                        help="stats mode: re-render the dashboard "
                             "every N seconds (live registry)")
    parser.add_argument("--watch-count", type=int, default=0,
                        help="stats --watch: stop after this many "
                             "renders (0 = until interrupted)")
    args = parser.parse_args(argv)
    if args.watch is not None and not stats_mode:
        print("error: --watch is only valid with the stats "
              "subcommand", file=sys.stderr)
        return 1
    if args.watch is not None and args.watch < 1:
        print("error: --watch must be >= 1 second", file=sys.stderr)
        return 1
    if args.store_root and args.dataset:
        print("error: --store-root and --dataset are exclusive",
              file=sys.stderr)
        return 1
    datasets = args.dataset or ["osm"]
    faults = None
    if args.fault_plan:
        if args.workers <= 0:
            print("error: --fault-plan needs --workers",
                  file=sys.stderr)
            return 1
        try:
            faults = FaultPlan.from_json(args.fault_plan)
        except StormError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    # Instrumentation is opt-in: only --trace / stats / the live
    # endpoint / the profiler pay for it.
    live = bool(args.trace or stats_mode
                or args.metrics_port is not None or args.profile)
    obs = Observability() if live else NULL_OBS
    try:
        if args.store_root:
            print(f"loading store at {args.store_root} ...",
                  file=sys.stderr)
            engine = _load_persisted(
                args.store_root, seed=args.seed, obs=obs,
                wal=args.wal,
                wal_segment_bytes=args.wal_segment_bytes)
        else:
            print(f"loading {datasets} with n={args.n} ...",
                  file=sys.stderr)
            engine = build_engine(datasets, args.n, args.seed, obs=obs,
                                  workers=args.workers,
                                  replication=args.replication,
                                  faults=faults)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    executor = QueryExecutor(engine, rng=random.Random(args.seed))
    trace_file = None
    if args.trace:
        try:
            trace_file = open(args.trace, "a")
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}",
                  file=sys.stderr)
            return 1
    try:
        with contextlib.ExitStack() as stack:
            if args.metrics_port is not None:
                try:
                    endpoint = MetricsEndpoint(
                        obs.registry, port=args.metrics_port,
                        health=_health_probe(obs.registry)).start()
                except OSError as exc:
                    print(f"error: cannot bind metrics port: {exc}",
                          file=sys.stderr)
                    return 1
                stack.callback(endpoint.stop)
                print(f"metrics: {endpoint.url}/metrics",
                      file=sys.stderr)
            if args.profile:
                stack.enter_context(profiled(
                    args.profile, hz=args.profile_hz,
                    registry=obs.registry))
            if stats_mode:
                if args.query:
                    rc = _run_one(executor, args.query, trace_file)
                    if rc != 0:
                        return rc
                if args.watch is not None:
                    return _watch_stats(obs.registry, args.watch,
                                        args.watch_count)
                print(render_dashboard(obs.registry))
                return 0
            if args.query:
                return _run_one(executor, args.query, trace_file)
            print("storm> type a query, 'stats', or 'quit'",
                  file=sys.stderr)
            while True:
                try:
                    line = input("storm> ")
                except EOFError:
                    return 0
                if line.strip().lower() in ("quit", "exit"):
                    return 0
                if not line.strip():
                    continue
                if line.strip().lower() == "stats":
                    print(render_dashboard(executor.obs.registry))
                    continue
                _run_one(executor, line, trace_file)
    finally:
        if trace_file is not None:
            # One closing metrics snapshot summarises the session.
            write_jsonl(trace_file, (), registry=obs.registry)
            trace_file.close()


def _health_probe(registry):
    """Build the /health document source: WAL, recovery and cluster
    coverage state read straight out of the live registry."""
    def probe() -> dict:
        snap = registry.snapshot()
        gauges = snap["gauges"]
        counters = snap["counters"]
        coverage = gauges.get("storm.cluster.coverage", 1.0)
        return {
            "status": "ok" if coverage >= 1.0 else "degraded",
            "cluster": {
                "workers": int(gauges.get("storm.cluster.workers", 0)),
                "coverage": coverage,
                "crashes": counters.get(
                    "storm.cluster.fault.crashes", 0),
            },
            "wal": {
                "appends": counters.get("storm.wal.appends", 0),
                "checkpoints": counters.get(
                    "storm.wal.checkpoints", 0),
            },
            "recovery": {
                "runs": counters.get("storm.recovery.runs", 0),
                "records_replayed": counters.get(
                    "storm.recovery.records_replayed", 0),
            },
        }
    return probe


def _watch_stats(registry, interval: int, count: int) -> int:
    """``stats --watch N``: re-render the dashboard every N seconds
    (``count`` bounds the renders; 0 means until interrupted)."""
    renders = 0
    try:
        while True:
            stamp = time.strftime("%H:%M:%S")
            print(render_dashboard(registry,
                                   title=f"storm metrics @ {stamp}"))
            sys.stdout.flush()
            renders += 1
            if count and renders >= count:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _load_persisted(store_root: str, seed: int, obs: Observability,
                    wal: bool, wal_segment_bytes: int):
    """Open a persisted store (with WAL recovery unless disabled) and
    rebuild the engine from it."""
    dfs = SimulatedDFS(root=store_root,
                       obs=obs if obs.enabled else None)
    store = DocumentStore(dfs)
    log = None
    if wal:
        log = WriteAheadLog(dfs, segment_bytes=wal_segment_bytes,
                            obs=obs if obs.enabled else None)
    engine = load_engine(store, seed=seed, wal=log, obs=obs)
    report = getattr(engine, "last_recovery", None)
    if report is not None and (report.batches_replayed
                               or report.bytes_discarded):
        print(report.render(), file=sys.stderr)
    return engine


def _serve_metrics_main(argv: list[str]) -> int:
    """``storm-query serve-metrics``: load datasets with a live
    registry, optionally run one query, then serve /metrics,
    /metrics.json and /health until interrupted (or --duration)."""
    parser = argparse.ArgumentParser(
        prog="storm-query serve-metrics",
        description="Serve the live metrics endpoint over loaded "
                    "datasets: /metrics (Prometheus text), "
                    "/metrics.json (registry snapshot + window), "
                    "/health (WAL/recovery/coverage status).")
    parser.add_argument("--dataset", action="append", default=[],
                        help="dataset(s) to load (repeatable; "
                             "default osm)")
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--replication", type=int, default=1)
    parser.add_argument("--port", type=int, default=9188,
                        help="port to bind (0 = ephemeral; "
                             "default 9188)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--query",
                        help="run this query once before serving, so "
                             "the scrape has data")
    parser.add_argument("--duration", type=float,
                        help="serve for this many seconds then exit "
                             "(default: until interrupted)")
    args = parser.parse_args(argv)
    obs = Observability()
    try:
        engine = build_engine(args.dataset or ["osm"], args.n,
                              args.seed, obs=obs,
                              workers=args.workers,
                              replication=args.replication)
        if args.query:
            executor = QueryExecutor(engine,
                                     rng=random.Random(args.seed))
            print(executor.execute(args.query).summary())
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        endpoint = MetricsEndpoint(
            obs.registry, host=args.host, port=args.port,
            health=_health_probe(obs.registry)).start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"serving {endpoint.url}/metrics (Ctrl-C to stop)",
          file=sys.stderr)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        endpoint.stop()
    return 0


def _parse_tokens(pairs: list[str]) -> dict[str, str]:
    """``--token TENANT=TOKEN`` pairs -> token -> tenant map."""
    tokens: dict[str, str] = {}
    for pair in pairs:
        tenant, sep, token = pair.partition("=")
        if not sep or not tenant or not token:
            raise StormError(
                f"--token wants TENANT=TOKEN, got {pair!r}")
        tokens[token] = tenant
    return tokens


def _parse_quotas(pairs: list[str]):
    """``--quota TENANT=STREAMS:SAMPLES:WEIGHT`` pairs (each field
    may be empty to keep the default)."""
    from repro.server import TenantQuota
    quotas = {}
    for pair in pairs:
        tenant, sep, spec = pair.partition("=")
        if not sep or not tenant:
            raise StormError(
                f"--quota wants TENANT=STREAMS:SAMPLES:WEIGHT, "
                f"got {pair!r}")
        parts = (spec.split(":") + ["", "", ""])[:3]
        try:
            quotas[tenant] = TenantQuota(
                max_concurrent_streams=int(parts[0])
                if parts[0] else None,
                max_samples=int(parts[1]) if parts[1] else None,
                weight=float(parts[2]) if parts[2] else 1.0)
        except ValueError as exc:
            raise StormError(f"bad --quota {pair!r}: {exc}")
    return quotas


def _serve_main(argv: list[str]) -> int:
    """``storm-query serve``: run the multi-tenant query service.

    Loads datasets with a live registry and serves the full HTTP API
    (see docs/service.md) until interrupted or ``--duration``.
    """
    from repro.server import QueryService, ServerConfig, StormServer
    parser = argparse.ArgumentParser(
        prog="storm-query serve",
        description="Serve the multi-tenant STORM query service: "
                    "progressive NDJSON query streams with fair "
                    "scheduling, admission control, sessions and "
                    "per-tenant metrics (docs/service.md).")
    parser.add_argument("--dataset", action="append", default=[],
                        help="dataset(s) to load (repeatable; "
                             "default osm)")
    parser.add_argument("--n", type=int, default=20_000,
                        help="records per dataset (default 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0,
                        help="shard datasets across N simulated "
                             "workers (0 = local index)")
    parser.add_argument("--replication", type=int, default=1)
    parser.add_argument("--port", type=int, default=9189,
                        help="port to bind (0 = ephemeral; "
                             "default 9189)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--max-streams", type=int, default=8,
                        help="streams scheduled concurrently "
                             "(default 8)")
    parser.add_argument("--queue-depth", type=int, default=16,
                        help="admitted-but-waiting streams beyond "
                             "--max-streams; past this the server "
                             "answers 429 (default 16)")
    parser.add_argument("--quantum", type=int, default=64,
                        help="samples per scheduling quantum "
                             "(default 64)")
    parser.add_argument("--stream-buffer", type=int, default=64,
                        help="frames buffered per attached stream "
                             "before backpressure parks it "
                             "(default 64)")
    parser.add_argument("--drain-seconds", type=float, default=10.0,
                        help="graceful-shutdown drain budget "
                             "(default 10)")
    parser.add_argument("--default-deadline", type=float,
                        help="deadline (seconds) applied to requests "
                             "without an X-Storm-Deadline header "
                             "(default: none)")
    parser.add_argument("--abandon-seconds", type=float, default=30.0,
                        help="reap a stream whose client read "
                             "nothing for this long (0 = never; "
                             "default 30)")
    parser.add_argument("--watchdog-seconds", type=float,
                        default=10.0,
                        help="fail a single scheduler quantum that "
                             "runs this long and recover the engine "
                             "(0 = no watchdog; default 10)")
    parser.add_argument("--journal", metavar="DIR",
                        help="journal detached streams under DIR and "
                             "resume them on restart (default: off)")
    parser.add_argument("--token", action="append", default=[],
                        metavar="TENANT=TOKEN",
                        help="auth token for TENANT (repeatable; "
                             "none = open access)")
    parser.add_argument("--quota", action="append", default=[],
                        metavar="TENANT=STREAMS:SAMPLES:WEIGHT",
                        help="per-tenant quota override; empty "
                             "fields keep defaults (repeatable)")
    parser.add_argument("--fault-plan", metavar="FILE",
                        help="JSON fault plan; rate for op "
                             "'server.quantum' fails scheduler "
                             "quanta (chaos testing)")
    parser.add_argument("--duration", type=float,
                        help="serve for this many seconds then "
                             "drain and exit (default: until "
                             "interrupted)")
    args = parser.parse_args(argv)
    faults = None
    if args.fault_plan:
        try:
            faults = FaultPlan.from_json(args.fault_plan)
        except StormError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    obs = Observability()
    try:
        config = ServerConfig(
            max_streams=args.max_streams,
            queue_depth=args.queue_depth,
            quantum=args.quantum,
            stream_buffer=args.stream_buffer,
            drain_seconds=args.drain_seconds,
            default_deadline=args.default_deadline,
            abandon_seconds=args.abandon_seconds or None,
            watchdog_seconds=args.watchdog_seconds or None,
            journal_dir=args.journal,
            tokens=_parse_tokens(args.token),
            quotas=_parse_quotas(args.quota))
        engine = build_engine(args.dataset or ["osm"], args.n,
                              args.seed, obs=obs,
                              workers=args.workers,
                              replication=args.replication)
        service = QueryService(engine, config, obs=obs,
                               faults=faults, seed=args.seed)
        resumed = service.recover_streams()
        if resumed:
            print(f"resumed {resumed} journaled detached "
                  f"stream(s)", file=sys.stderr)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server = StormServer(service, host=args.host, port=args.port)
    try:
        server.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    mode = "token auth" if config.tokens else "open access"
    print(f"serving {server.url} ({mode}; Ctrl-C drains and stops)",
          file=sys.stderr)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        drained = server.stop()
        print("drained cleanly" if drained
              else "drain budget exceeded; streams cancelled",
              file=sys.stderr)
    return 0


def _recover_main(argv: list[str]) -> int:
    """``storm-query recover``: run crash recovery on a persisted
    store and print the recovery report."""
    parser = argparse.ArgumentParser(
        prog="storm-query recover",
        description="Recover a persisted STORM store: truncate torn "
                    "WAL tails, replay committed-but-unflushed "
                    "batches onto the last checkpoint, and print the "
                    "recovery report.")
    parser.add_argument("--store-root", metavar="DIR", required=True,
                        help="DFS root directory of the store")
    parser.add_argument("--wal-segment-bytes", type=int, default=65536,
                        help="WAL segment roll threshold in bytes "
                             "(default 65536)")
    parser.add_argument("--no-checkpoint", dest="checkpoint",
                        action="store_false",
                        help="inspect-only: replay in memory but do "
                             "not write the recovery checkpoint")
    args = parser.parse_args(argv)
    try:
        dfs = SimulatedDFS(root=args.store_root)
        store = DocumentStore(dfs)
        wal = WriteAheadLog(dfs,
                            segment_bytes=args.wal_segment_bytes)
        report = recover_store(store, wal,
                               checkpoint=args.checkpoint)
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _run_one(executor: QueryExecutor, query: str,
             trace_file=None) -> int:
    try:
        stripped = query.strip()
        if stripped.upper().startswith("EXPLAIN ANALYZE"):
            rest = stripped[len("EXPLAIN ANALYZE"):].strip()
            report = executor.explain_report(
                rest, obs=executor.obs if executor.obs.enabled
                else None)
            print(report)
        else:
            result = executor.execute(query)
            print(result.summary())
    except StormError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_file is not None:
            write_jsonl(trace_file, executor.obs.tracer.drain())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
