"""Exception hierarchy for the STORM reproduction.

Every error raised by the library derives from :class:`StormError`, so
applications can catch one base class.  Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class StormError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(StormError):
    """Invalid geometric arguments (mismatched dimensions, inverted boxes)."""


class IndexError_(StormError):
    """Structural problem in a spatial index (named with a trailing
    underscore to avoid shadowing the builtin :class:`IndexError`)."""


class EmptyRangeError(StormError):
    """A sampler was asked to sample from a range containing no points."""


class SamplerExhaustedError(StormError):
    """All points in the query range have already been emitted."""


class QueryParseError(StormError):
    """The keyword query language parser rejected the input text."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class SchemaError(StormError):
    """Schema discovery or field mapping failed for a data source."""


class ConnectorError(StormError):
    """A data connector could not read from its backing storage engine."""


class StorageError(StormError):
    """The document store / simulated DFS hit an invalid operation."""


class FaultError(StormError):
    """Base class for injected-fault failures (see :mod:`repro.faults`).

    Subclasses double-inherit from the owning subsystem's error so that
    existing ``except StorageError`` / ``except ClusterError`` handlers
    keep working when faults are switched on.
    """


class WalError(StorageError):
    """The write-ahead log was used incorrectly (e.g. appending to a
    log whose tail is torn/corrupt before running recovery)."""


class UpdateError(StormError):
    """The update manager could not apply an insert/delete batch."""


class EstimatorError(StormError):
    """An online estimator was used incorrectly (e.g. no samples yet)."""


class OptimizerError(StormError):
    """The query optimizer could not pick a sampling strategy."""


class ClusterError(StormError):
    """The simulated cluster was configured or used incorrectly."""


class BlockReadError(FaultError, StorageError):
    """Every replica of a DFS block failed to serve a read."""


class WriteCrashError(FaultError, StorageError):
    """An injected crash killed the simulated process mid-write: the
    target file holds either its old contents (crash before any byte
    landed) or a *torn* prefix of the new contents.  Recovery — WAL
    tail truncation plus replay — must repair the damage."""


class WorkerUnavailableError(FaultError, ClusterError):
    """A cluster worker is crashed (or an injected fault dropped the
    request); the operation may succeed on a retry or on a replica."""


class StreamLostError(FaultError, ClusterError):
    """A worker no longer holds the requested sample-stream handle
    (typically because a crash wiped its in-memory state); the caller
    must re-open the stream rather than retry the fetch."""


class NetworkTimeoutError(FaultError, ClusterError):
    """A simulated message exchange exceeded the network model's
    timeout (e.g. a slow-node latency multiplier pushed it over)."""
