"""STORM reproduction: spatio-temporal online reasoning and management.

A from-scratch Python implementation of the STORM system (Christensen et
al., SIGMOD 2015): spatial online sampling over R-tree indexes (the
LS-tree and RS-tree, with QueryFirst/SampleFirst/RandomPath baselines)
plus online spatio-temporal estimators with confidence guarantees, a
keyword query language, a data connector, an update manager, and a
simulated distributed substrate.

Quickstart::

    from repro import StormEngine, STRange, StopCondition
    from repro.workloads import OSMWorkload

    engine = StormEngine()
    engine.create_dataset("osm", OSMWorkload(n=50_000).generate())
    window = STRange(-114, 37, -109, 42)
    point = engine.avg("osm", "altitude", window,
                       stop=StopCondition(target_relative_error=0.02))
    print(point.estimate)          # value ± CI, improving over time

See README.md and DESIGN.md for the architecture, and EXPERIMENTS.md for
the reproduced figures.
"""

from repro.core.engine import Dataset, StormEngine
from repro.core.estimators import (AvgEstimator, CountEstimator, Estimate,
                                   GridSpec, OnlineEstimator, OnlineKDE,
                                   OnlineKMeans, ProportionEstimator,
                                   QuantileEstimator, ShortTextEstimator,
                                   SumEstimator, TrajectoryEstimator,
                                   VarianceEstimator)
from repro.core.geometry import Rect
from repro.core.records import Record, STRange, attribute_getter
from repro.core.sampling import (LSTree, LSTreeSampler, QueryFirstSampler,
                                 RandomPathSampler, RSTreeSampler,
                                 SampleFirstSampler, SpatialSampler)
from repro.core.session import (OnlineQuerySession, ProgressPoint,
                                StopCondition)
from repro.errors import StormError
from repro.index import HilbertRTree, RTree
from repro.query import QueryExecutor, parse

__version__ = "1.0.0"

__all__ = [
    "AvgEstimator",
    "CountEstimator",
    "Dataset",
    "Estimate",
    "GridSpec",
    "HilbertRTree",
    "LSTree",
    "LSTreeSampler",
    "OnlineEstimator",
    "OnlineKDE",
    "OnlineKMeans",
    "OnlineQuerySession",
    "ProgressPoint",
    "ProportionEstimator",
    "QuantileEstimator",
    "QueryExecutor",
    "QueryFirstSampler",
    "RSTreeSampler",
    "RTree",
    "RandomPathSampler",
    "Record",
    "Rect",
    "STRange",
    "SampleFirstSampler",
    "ShortTextEstimator",
    "SpatialSampler",
    "StopCondition",
    "StormEngine",
    "StormError",
    "SumEstimator",
    "TrajectoryEstimator",
    "VarianceEstimator",
    "attribute_getter",
    "parse",
]
