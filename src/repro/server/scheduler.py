"""Fair time-slicing of many live sample streams over one engine.

One engine thread, many tenants: every admitted query becomes a
:class:`StreamTask` whose generator yields
:class:`~repro.core.session.ProgressPoint` snapshots, and the
:class:`FairScheduler` drives them all with **deficit round-robin**.
The scheduling quantum is one ``next()`` on the session generator,
i.e. one :meth:`~repro.core.sampling.base.SpatialSampler.draw_batch`
pull of ``report_every`` samples (PR 3/8's batched pipeline) — small
enough that a dozen interleaved streams all tighten their intervals
visibly, large enough that the vectorised batch path stays hot.

Why a single engine thread
--------------------------
Samplers, canonical-set caches and estimator state are not designed
for concurrent mutation, and they do not need to be: one quantum is
microseconds of work, so a single thread time-slices dozens of
streams at interactive latency while HTTP handler threads only parse
requests and drain frame buffers.  Concurrent *ingest* is safe
because streams draw from snapshots pinned at ``range_count`` time
(PR 7's :class:`~repro.core.sampling.tiered.LSMSnapshot`); the
session generator is created lazily **on the scheduler thread**, so
even snapshot pinning never races a handler thread.

Fairness and uniformity
-----------------------
Each task holds a ``weight`` (per-tenant quota hook); a task earns
``weight`` credits per round and runs one quantum per unit credit, so
long streams cannot starve short ones and a weight-2 tenant gets
twice the quanta of a weight-1 tenant under contention.  Scheduling
only changes *when* a stream draws, never *what*: every stream owns
its rng and its pinned snapshot, so a stream scheduled in quanta is
sample-identical in distribution to the same stream run alone
(chi-square checked in ``tests/test_server.py``).

Backpressure and reaping
------------------------
Frames land in a per-task buffer; a streaming consumer pops them in
order.  When a slow client lets the buffer fill, the task reports
itself *blocked* and the scheduler simply skips it — no samples are
drawn that nobody is reading — until the consumer drains a frame.  A
task that stays blocked past ``abandon_seconds`` is presumed
abandoned (the client went away without closing the socket cleanly)
and is cancelled, reclaiming its engine quanta and its tenant's
quota slot.  Detached tasks (server-side sessions a client polls
later) never block; their retention is bounded by the query's own
sample budget.

Deadlines and the watchdog
--------------------------
A task may carry a deadline (``X-Storm-Deadline`` header /
``--default-deadline``): counted from admission, a stream past its
deadline — queued or active — fails with a clean terminal ``error``
frame (code ``deadline_exceeded``) instead of occupying a slot
forever.  Orthogonally, a **quantum watchdog** thread guards the
engine thread itself: when one ``_run_quantum`` call exceeds
``watchdog_seconds`` (a wedged estimator, an injected
``FaultPlan.delay`` stall), the watchdog fails *that* stream with a
terminal ``error`` frame (code ``watchdog_timeout``) and hands the
engine to a fresh thread so every other tenant keeps drawing.  The
superseded thread discards its result when (if) it returns; its
generator is closed then — a truly never-returning quantum leaks
that one generator, which is the best a cooperative runtime can do.

Fault injection: a :class:`~repro.faults.FaultPlan` gates each
quantum as op ``server.quantum`` on the plan's logical clock
(error coins fail a quantum, one-shot ``delay`` specs wedge it), so
chaos tests can fail or stall streams mid-flight deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterator

from repro.core.session import ProgressPoint
from repro.errors import StormError
from repro.server.protocol import (error_frame, progress_frame,
                                   terminal_frame)

__all__ = ["StreamTask", "FairScheduler"]

#: Task lifecycle: queued -> active -> one of the terminal states.
QUEUED = "queued"
ACTIVE = "active"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"
#: Terminal for the scheduler, but *not* a protocol ending: a durable
#: detached stream parked by graceful drain keeps its frames (no
#: terminal frame is appended) so clients can still poll them and a
#: journal-backed restart can resume the stream.
SUSPENDED = "suspended"

_TERMINAL = (DONE, ERROR, CANCELLED, SUSPENDED)


class StreamTask:
    """One admitted query stream: generator, frame buffer, accounting.

    ``make_gen`` is a zero-argument callable building the ProgressPoint
    generator; it runs on the scheduler thread at the first quantum so
    every engine interaction (including snapshot pinning in
    ``range_count``) stays single-threaded.
    """

    _next_id = 1
    _ids_lock = threading.Lock()

    def __init__(self, tenant: str,
                 make_gen: Callable[[], Iterator[ProgressPoint]], *,
                 weight: float = 1.0, buffer_frames: int = 64,
                 detached: bool = False, label: str = "",
                 deadline_seconds: float | None = None,
                 durable: bool = False,
                 task_id: str | None = None,
                 meta: dict | None = None):
        if weight <= 0:
            raise StormError(f"stream weight must be > 0, got {weight}")
        if buffer_frames < 1:
            raise StormError("buffer_frames must be >= 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise StormError(
                f"deadline must be > 0 seconds, got {deadline_seconds}")
        with StreamTask._ids_lock:
            if task_id is None:
                task_id = f"q-{StreamTask._next_id}"
                StreamTask._next_id += 1
        self.task_id = task_id
        self.tenant = tenant
        self.label = label
        self.weight = weight
        self.buffer_frames = buffer_frames
        self.detached = detached
        self.durable = durable
        #: Journal payload (query text, seed, ...) for durable streams.
        self.meta = dict(meta) if meta else {}
        self.state = QUEUED
        self.frames: list[dict] = []
        self.consumed = 0
        self.quanta = 0
        self.samples = 0
        self.created_at = time.monotonic()
        self.deadline_seconds = deadline_seconds
        #: Absolute monotonic deadline (covers queue wait too).
        self.deadline_at = None if deadline_seconds is None \
            else self.created_at + deadline_seconds
        #: When backpressure first parked this task (None = not parked).
        self.blocked_since: float | None = None
        self.finished_at: float | None = None
        self.credits = 0.0
        self.cancel_reason = ""
        self._make_gen = make_gen
        self._gen: Iterator[ProgressPoint] | None = None
        #: Set by the scheduler at adoption; consumers wait on it.
        self._cond: threading.Condition | None = None

    @classmethod
    def advance_ids(cls, past: int) -> None:
        """Ensure auto-assigned ids start after ``past``.

        Journal recovery re-creates streams under their original ids;
        advancing the counter keeps fresh streams from colliding.
        """
        with cls._ids_lock:
            cls._next_id = max(cls._next_id, past + 1)

    # -- state -----------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def pending(self) -> int:
        """Frames produced but not yet consumed."""
        return len(self.frames) - self.consumed

    def blocked(self) -> bool:
        """Whether backpressure parks this task (buffer full)."""
        return (not self.detached
                and self.pending() >= self.buffer_frames)

    def result(self) -> dict | None:
        """The terminal frame, once there is one."""
        if self.frames and self.frames[-1].get("frame") in ("end",
                                                            "error"):
            return self.frames[-1]
        return None

    # -- consumer API ----------------------------------------------------

    def pop(self, timeout: float | None = 5.0) -> dict | None:
        """Next frame in order (blocking); None on timeout.

        Popping advances the consumed watermark, which is what
        releases a backpressure-parked task.
        """
        cond = self._cond
        assert cond is not None, "task not yet submitted"
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with cond:
            while self.consumed >= len(self.frames):
                if self.terminal:
                    return None
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                cond.wait(0.05 if remaining is None
                          else min(0.05, remaining))
            frame = self.frames[self.consumed]
            self.consumed += 1
            cond.notify_all()
        return frame

    def drain_frames(self, timeout: float | None = 5.0) -> list[dict]:
        """Pop frames until the terminal one (inclusive) or timeout."""
        out: list[dict] = []
        while True:
            frame = self.pop(timeout)
            if frame is None:
                return out
            out.append(frame)
            if frame.get("frame") in ("end", "error"):
                return out

    def frames_since(self, index: int) -> tuple[list[dict], int, str]:
        """Detached polling: frames from ``index`` on, next index,
        state (frames are retained, so polling never consumes)."""
        cond = self._cond
        if cond is None:
            return [], index, self.state
        with cond:
            if index < 0:
                index = 0
            frames = list(self.frames[index:])
            return frames, index + len(frames), self.state

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Ask the scheduler to stop this stream (idempotent)."""
        cond = self._cond
        if cond is None:  # never submitted: terminate in place
            self.state = CANCELLED
            self.frames.append(terminal_frame(None, reason=reason))
            return
        with cond:
            if self.terminal:
                return
            self.cancel_reason = reason
            cond.notify_all()

    def wait_terminal(self, timeout: float = 5.0) -> bool:
        """Block until the task reaches a terminal state (used by the
        one-shot timeout path to *verify* the slot was released)."""
        cond = self._cond
        if cond is None:
            return self.terminal
        deadline = time.monotonic() + timeout
        with cond:
            while not self.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                cond.wait(min(0.05, remaining))
        return True

    # -- scheduler-side helpers (always under the scheduler lock) --------

    def _append_frame(self, frame: dict) -> None:
        self.frames.append(frame)

    def _finish(self, state: str, frame: dict | None) -> None:
        self.state = state
        if frame is not None:
            self.frames.append(frame)
        self.finished_at = time.monotonic()

    def __repr__(self) -> str:
        return (f"<StreamTask {self.task_id} tenant={self.tenant!r} "
                f"{self.state} k={self.samples}>")


class FairScheduler:
    """Deficit-round-robin quantum scheduler on one engine thread.

    ``max_concurrent`` bounds how many streams are *live* (pinning
    snapshots and holding sampler streams open) at once; admitted
    tasks beyond it wait in a FIFO queue.  The admission-control bound
    on that queue belongs to the service layer
    (:class:`~repro.server.service.QueryService`), which rejects with
    429 before ``submit`` is ever called.

    ``watchdog_seconds`` arms the quantum watchdog (None = off);
    ``abandon_seconds`` reaps non-detached streams blocked on a dead
    consumer past that long (None = never).  ``on_task_event`` is an
    optional callback invoked off-lock with a task after it produced
    a frame or reached a terminal state — the service layer journals
    durable streams through it; exceptions are swallowed so
    journaling can never take the engine down.
    """

    def __init__(self, *, max_concurrent: int = 8,
                 registry=None, faults=None,
                 watchdog_seconds: float | None = None,
                 abandon_seconds: float | None = None,
                 on_task_event=None):
        if max_concurrent < 1:
            raise StormError("max_concurrent must be >= 1")
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise StormError("watchdog_seconds must be > 0")
        if abandon_seconds is not None and abandon_seconds <= 0:
            raise StormError("abandon_seconds must be > 0")
        self.max_concurrent = max_concurrent
        self.registry = registry
        self.faults = faults
        self.watchdog_seconds = watchdog_seconds
        self.abandon_seconds = abandon_seconds
        self.on_task_event = on_task_event
        self._cond = threading.Condition()
        self._queue: deque[StreamTask] = deque()
        self._active: list[StreamTask] = []
        self._rr = 0
        self._started = False
        self._stopping = False
        self._draining = False
        self._thread: threading.Thread | None = None
        self._watchdog_thread: threading.Thread | None = None
        #: (task, started_at) while a quantum runs on the engine thread.
        self._running: tuple[StreamTask, float] | None = None
        #: Bumped by the watchdog on takeover; a stale engine thread
        #: notices and exits without touching shared state again.
        self._generation = 0
        self._events: deque[StreamTask] = deque()
        self.total_quanta = 0
        self.total_streams = 0
        self.watchdog_kills = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FairScheduler":
        if self._started:
            raise StormError("scheduler already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._loop, args=(self._generation,),
            name="storm-scheduler", daemon=True)
        self._thread.start()
        if self.watchdog_seconds is not None:
            self._watchdog_thread = threading.Thread(
                target=self._watch, name="storm-watchdog",
                daemon=True)
            self._watchdog_thread.start()
        return self

    def submit(self, task: StreamTask) -> None:
        """Adopt a task into the run queue (service pre-admits)."""
        with self._cond:
            if self._stopping or self._draining:
                raise StormError("scheduler is shutting down")
            task._cond = self._cond
            self._queue.append(task)
            self.total_streams += 1
            # Promote synchronously so admission control sees a stream
            # occupy an active slot the moment submit returns, instead
            # of racing the engine thread's own promotion pass.
            self._promote_locked()
            self._cond.notify_all()
        self._publish_depth()

    def drain(self, timeout: float) -> bool:
        """Stop accepting work; wait for live streams to finish.

        Returns True when everything finished inside the timeout;
        leftovers are then cancelled (or, for detached streams,
        suspended with frames retained) either way by :meth:`stop`.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._active or self._queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(0.05, remaining))
        return True

    def stop(self) -> None:
        """End every live stream and join the engine thread.

        Non-detached streams are cancelled with a shutdown terminal
        frame; detached streams are *suspended* — frames retained,
        no terminal frame — so they stay poll-able and (when
        journaled) resumable after restart.
        """
        with self._cond:
            self._stopping = True
            for task in list(self._queue) + list(self._active):
                if (not task.terminal and not task.cancel_reason
                        and not task.detached):
                    task.cancel_reason = "server shutdown"
            self._cond.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        watchdog, self._watchdog_thread = self._watchdog_thread, None
        if watchdog is not None:
            watchdog.join(timeout=5.0)
        # The engine thread normally runs shutdown; if it was wedged
        # (join timed out) or already gone, finish the job here.
        with self._cond:
            if self._active or self._queue:
                self._shutdown_locked()
        self._flush_events()

    # -- introspection ---------------------------------------------------

    @property
    def active_count(self) -> int:
        with self._cond:
            return len(self._active)

    @property
    def queued_count(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def live_count(self) -> int:
        with self._cond:
            return len(self._active) + len(self._queue)

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no stream is live (tests and the bench)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._active or self._queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(0.05, remaining))
        return True

    # -- load shedding ---------------------------------------------------

    def shed_lowest(self, min_weight: float) -> StreamTask | None:
        """Shed the lightest queued stream to make room for a heavier
        one: cancels (with an ``error`` frame, code ``shed``) the
        queued task with the lowest weight *strictly below*
        ``min_weight`` and returns it, or None when every queued task
        is at least that heavy.  Only queued tasks are candidates —
        they have drawn nothing, so shedding wastes no engine work.
        """
        shed = None
        with self._cond:
            victim = None
            for task in self._queue:
                if task.terminal or task.cancel_reason:
                    continue
                if victim is None or task.weight < victim.weight:
                    victim = task
            if victim is not None and victim.weight < min_weight:
                self._queue.remove(victim)
                victim._finish(ERROR, error_frame(
                    StormError("shed: queue full and heavier work "
                               "arrived; retry later"), code="shed"))
                self._count_finish(victim)
                self._emit_locked(victim)
                self._cond.notify_all()
                self._publish_depth_locked()
                shed = victim
        if shed is not None:
            registry = self.registry
            if registry is not None and registry.enabled:
                registry.counter("storm.server.shed_streams",
                                 tenant=shed.tenant).inc()
            self._flush_events()
        return shed

    # -- the engine thread -----------------------------------------------

    def _loop(self, generation: int) -> None:
        while True:
            task = None
            stopping = False
            with self._cond:
                if self._generation != generation:
                    return  # superseded by a watchdog takeover
                if self._stopping:
                    self._shutdown_locked()
                    stopping = True
                else:
                    self._reap_locked()
                    self._promote_locked()
                    task = self._pick_locked()
                    if task is None:
                        # Everything blocked (or nothing live): sleep
                        # on the condition until a consumer pops a
                        # frame, a submit arrives, or stop() fires.
                        self._cond.wait(0.05)
            self._flush_events()
            if stopping:
                return
            if task is not None:
                self._run_quantum(task, generation)

    def _shutdown_locked(self) -> None:
        for task in list(self._queue) + list(self._active):
            if task.terminal:
                continue
            if task.detached and not task.cancel_reason:
                # Drain straggler, but poll-able/resumable: keep the
                # frames, append no terminal frame.
                task._finish(SUSPENDED, None)
            else:
                reason = task.cancel_reason or "server shutdown"
                task._finish(CANCELLED,
                             terminal_frame(None, reason=reason))
            self._close_gen(task)
            self._emit_locked(task)
        self._queue.clear()
        self._active.clear()
        self._cond.notify_all()
        self._publish_depth_locked()

    def _reap_locked(self) -> None:
        """Finalise cancelled/expired/abandoned tasks, drop terminal
        ones from the run sets."""
        now = time.monotonic()
        kept: list[StreamTask] = []
        for task in self._active:
            if not task.terminal:
                reaped = self._reap_one_locked(task, now)
                if reaped:
                    self._close_gen(task)
                    self._count_finish(task)
                    self._emit_locked(task)
            if not task.terminal:
                kept.append(task)
        if len(kept) != len(self._active):
            self._active = kept
            self._rr = 0
            self._cond.notify_all()
            self._publish_depth_locked()
        if self._queue and any(
                t.terminal or t.cancel_reason
                or (t.deadline_at is not None and now >= t.deadline_at)
                for t in self._queue):
            still: deque[StreamTask] = deque()
            for task in self._queue:
                if task.terminal:
                    continue
                if self._reap_one_locked(task, now):
                    self._count_finish(task)
                    self._emit_locked(task)
                else:
                    still.append(task)
            self._queue = still
            self._cond.notify_all()
            self._publish_depth_locked()

    def _reap_one_locked(self, task: StreamTask, now: float) -> bool:
        """Apply cancel/deadline/abandon policy to one live task;
        True when it was finished here."""
        if task.cancel_reason:
            task._finish(CANCELLED, terminal_frame(
                None, reason=task.cancel_reason))
            return True
        if task.deadline_at is not None and now >= task.deadline_at:
            task._finish(ERROR, error_frame(
                StormError(f"deadline of {task.deadline_seconds:g}s "
                           f"exceeded"), code="deadline_exceeded"))
            self._count("storm.server.deadline_exceeded", task)
            return True
        if task.detached or self.abandon_seconds is None:
            return False
        if not task.blocked():
            task.blocked_since = None
            return False
        if task.blocked_since is None:
            task.blocked_since = now
            return False
        if now - task.blocked_since >= self.abandon_seconds:
            task._finish(CANCELLED, terminal_frame(
                None, reason=(f"abandoned: consumer read nothing for "
                              f"{self.abandon_seconds:g}s")))
            self._count("storm.server.abandoned_reaped", task)
            return True
        return False

    def _promote_locked(self) -> None:
        moved = False
        while self._queue and len(self._active) < self.max_concurrent:
            task = self._queue.popleft()
            task.state = ACTIVE
            task.credits = max(1.0, task.weight)
            self._active.append(task)
            moved = True
        if moved:
            self._publish_depth_locked()

    def _pick_locked(self) -> StreamTask | None:
        """Next runnable task under deficit round-robin, or None."""
        n = len(self._active)
        # Worst case: scan the tail, wrap (topping up credits), then
        # scan the whole ring again before concluding nothing runs.
        for _ in range(2 * n + 2):
            if self._rr >= len(self._active):
                self._rr = 0
                # Round boundary: top up credits (capped so an idle
                # blocked task cannot hoard a burst).
                for t in self._active:
                    t.credits = min(t.credits + t.weight,
                                    max(1.0, 2.0 * t.weight))
            if not self._active:
                return None
            task = self._active[self._rr]
            if (not task.terminal and not task.blocked()
                    and task.credits >= 1.0):
                # Stay on this task until its deficit is spent: a
                # weight-2 stream runs two quanta per round, not one.
                task.credits -= 1.0
                return task
            self._rr += 1
        return None

    def _run_quantum(self, task: StreamTask, generation: int) -> None:
        """One scheduling quantum: one ProgressPoint off the stream.

        Runs outside the lock — this is the only live engine thread —
        then publishes the frame under the lock.  If the watchdog
        declared this quantum wedged while it ran (task already
        terminal, generation bumped), the result is discarded.
        """
        with self._cond:
            self._running = (task, time.monotonic())
        frame: dict | None = None
        final: tuple[str, dict] | None = None
        try:
            if self.faults is not None:
                self.faults.tick()
                stall = self.faults.take_delay("server.quantum")
                if stall > 0:
                    time.sleep(stall)  # injected wedge
                if self.faults.should_fail("server.quantum"):
                    raise StormError(
                        "injected server fault (server.quantum)")
            if task._gen is None:
                task._gen = task._make_gen()
            point = next(task._gen)
            task.quanta += 1
            task.samples = point.k
            frame = progress_frame(point)
            if point.done:
                final = (DONE, terminal_frame(point))
        except StopIteration:
            final = (DONE, terminal_frame(None, reason="stream ended"))
        except Exception as exc:  # noqa: BLE001 — becomes error frame
            final = (ERROR, error_frame(exc))
        discarded = False
        with self._cond:
            self._running = None
            self.total_quanta += 1
            if self._generation != generation or task.terminal:
                # The watchdog (or a deadline reap) already ended this
                # stream: its terminal frame is published, the result
                # of this late quantum must not follow it.
                discarded = True
                self._close_gen(task)
            else:
                if frame is not None:
                    task._append_frame(frame)
                if final is not None:
                    task._finish(final[0], final[1])
                    self._close_gen(task)
                    self._count_finish(task)
                self._emit_locked(task)
            self._cond.notify_all()
        self._flush_events()
        registry = self.registry
        if registry is not None and registry.enabled and not discarded:
            registry.counter("storm.server.quanta",
                             tenant=task.tenant).inc()
            if final is not None and final[0] == ERROR:
                registry.counter("storm.server.stream_errors",
                                 tenant=task.tenant).inc()

    # -- the watchdog thread ---------------------------------------------

    def _watch(self) -> None:
        budget = self.watchdog_seconds
        assert budget is not None
        poll = max(0.005, min(0.05, budget / 4.0))
        while True:
            takeover = None
            with self._cond:
                if self._stopping:
                    return
                if self._running is not None:
                    task, started = self._running
                    if (time.monotonic() - started >= budget
                            and not task.terminal):
                        takeover = task
                        self._watchdog_takeover_locked(task, budget)
            if takeover is not None:
                registry = self.registry
                if registry is not None and registry.enabled:
                    registry.counter("storm.server.watchdog_kills",
                                     tenant=takeover.tenant).inc()
                self._flush_events()
            time.sleep(poll)

    def _watchdog_takeover_locked(self, task: StreamTask,
                                  budget: float) -> None:
        """Fail the wedged stream and hand the engine to a fresh
        thread.  The superseded thread sees the generation bump and
        exits after discarding its late result; the wedged task's
        generator is closed there (it cannot be closed while
        executing)."""
        task._finish(ERROR, error_frame(
            StormError(f"quantum exceeded the {budget:g}s watchdog "
                       f"budget; stream failed, engine recovered"),
            code="watchdog_timeout"))
        self._count_finish(task)
        self._emit_locked(task)
        if task in self._active:
            self._active.remove(task)
            self._rr = 0
        self._running = None
        self.watchdog_kills += 1
        self._generation += 1
        self._thread = threading.Thread(
            target=self._loop, args=(self._generation,),
            name=f"storm-scheduler-g{self._generation}", daemon=True)
        self._thread.start()
        self._cond.notify_all()
        self._publish_depth_locked()

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _close_gen(task: StreamTask) -> None:
        gen, task._gen = task._gen, None
        if gen is not None:
            try:
                gen.close()
            except Exception:  # noqa: BLE001 — teardown is best effort
                pass

    def _emit_locked(self, task: StreamTask) -> None:
        if self.on_task_event is not None:
            self._events.append(task)

    def _flush_events(self) -> None:
        """Deliver queued task events outside the lock; the callback
        (journaling) must never take the engine down."""
        callback = self.on_task_event
        if callback is None:
            return
        while True:
            with self._cond:
                if not self._events:
                    return
                task = self._events.popleft()
            try:
                callback(task)
            except Exception:  # noqa: BLE001 — journaling best effort
                pass

    def _count(self, name: str, task: StreamTask) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter(name, tenant=task.tenant).inc()

    def _count_finish(self, task: StreamTask) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter("storm.server.streams_finished",
                             tenant=task.tenant,
                             state=task.state).inc()

    def _publish_depth(self) -> None:
        with self._cond:
            self._publish_depth_locked()

    def _publish_depth_locked(self) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.gauge("storm.server.active_streams").set(
                len(self._active))
            registry.gauge("storm.server.queued_streams").set(
                len(self._queue))
