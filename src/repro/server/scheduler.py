"""Fair time-slicing of many live sample streams over one engine.

One engine thread, many tenants: every admitted query becomes a
:class:`StreamTask` whose generator yields
:class:`~repro.core.session.ProgressPoint` snapshots, and the
:class:`FairScheduler` drives them all with **deficit round-robin**.
The scheduling quantum is one ``next()`` on the session generator,
i.e. one :meth:`~repro.core.sampling.base.SpatialSampler.draw_batch`
pull of ``report_every`` samples (PR 3/8's batched pipeline) — small
enough that a dozen interleaved streams all tighten their intervals
visibly, large enough that the vectorised batch path stays hot.

Why a single engine thread
--------------------------
Samplers, canonical-set caches and estimator state are not designed
for concurrent mutation, and they do not need to be: one quantum is
microseconds of work, so a single thread time-slices dozens of
streams at interactive latency while HTTP handler threads only parse
requests and drain frame buffers.  Concurrent *ingest* is safe
because streams draw from snapshots pinned at ``range_count`` time
(PR 7's :class:`~repro.core.sampling.tiered.LSMSnapshot`); the
session generator is created lazily **on the scheduler thread**, so
even snapshot pinning never races a handler thread.

Fairness and uniformity
-----------------------
Each task holds a ``weight`` (per-tenant quota hook); a task earns
``weight`` credits per round and runs one quantum per unit credit, so
long streams cannot starve short ones and a weight-2 tenant gets
twice the quanta of a weight-1 tenant under contention.  Scheduling
only changes *when* a stream draws, never *what*: every stream owns
its rng and its pinned snapshot, so a stream scheduled in quanta is
sample-identical in distribution to the same stream run alone
(chi-square checked in ``tests/test_server.py``).

Backpressure
------------
Frames land in a per-task buffer; a streaming consumer pops them in
order.  When a slow client lets the buffer fill, the task reports
itself *blocked* and the scheduler simply skips it — no samples are
drawn that nobody is reading — until the consumer drains a frame.
Detached tasks (server-side sessions a client polls later) never
block; their retention is bounded by the query's own sample budget.

Fault injection: a :class:`~repro.faults.FaultPlan` gates each
quantum as op ``server.quantum`` on the plan's logical clock, so
chaos tests can fail streams mid-flight deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterator

from repro.core.session import ProgressPoint
from repro.errors import StormError
from repro.server.protocol import (error_frame, progress_frame,
                                   terminal_frame)

__all__ = ["StreamTask", "FairScheduler"]

#: Task lifecycle: queued -> active -> one of the terminal states.
QUEUED = "queued"
ACTIVE = "active"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

_TERMINAL = (DONE, ERROR, CANCELLED)


class StreamTask:
    """One admitted query stream: generator, frame buffer, accounting.

    ``make_gen`` is a zero-argument callable building the ProgressPoint
    generator; it runs on the scheduler thread at the first quantum so
    every engine interaction (including snapshot pinning in
    ``range_count``) stays single-threaded.
    """

    _ids = iter(range(1, 1 << 62))
    _ids_lock = threading.Lock()

    def __init__(self, tenant: str,
                 make_gen: Callable[[], Iterator[ProgressPoint]], *,
                 weight: float = 1.0, buffer_frames: int = 64,
                 detached: bool = False, label: str = ""):
        if weight <= 0:
            raise StormError(f"stream weight must be > 0, got {weight}")
        if buffer_frames < 1:
            raise StormError("buffer_frames must be >= 1")
        with StreamTask._ids_lock:
            self.task_id = f"q-{next(StreamTask._ids)}"
        self.tenant = tenant
        self.label = label
        self.weight = weight
        self.buffer_frames = buffer_frames
        self.detached = detached
        self.state = QUEUED
        self.frames: list[dict] = []
        self.consumed = 0
        self.quanta = 0
        self.samples = 0
        self.created_at = time.monotonic()
        self.finished_at: float | None = None
        self.credits = 0.0
        self.cancel_reason = ""
        self._make_gen = make_gen
        self._gen: Iterator[ProgressPoint] | None = None
        #: Set by the scheduler at adoption; consumers wait on it.
        self._cond: threading.Condition | None = None

    # -- state -----------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def pending(self) -> int:
        """Frames produced but not yet consumed."""
        return len(self.frames) - self.consumed

    def blocked(self) -> bool:
        """Whether backpressure parks this task (buffer full)."""
        return (not self.detached
                and self.pending() >= self.buffer_frames)

    def result(self) -> dict | None:
        """The terminal frame, once there is one."""
        if self.frames and self.frames[-1].get("frame") in ("end",
                                                            "error"):
            return self.frames[-1]
        return None

    # -- consumer API ----------------------------------------------------

    def pop(self, timeout: float | None = 5.0) -> dict | None:
        """Next frame in order (blocking); None on timeout.

        Popping advances the consumed watermark, which is what
        releases a backpressure-parked task.
        """
        cond = self._cond
        assert cond is not None, "task not yet submitted"
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with cond:
            while self.consumed >= len(self.frames):
                if self.terminal:
                    return None
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                cond.wait(0.05 if remaining is None
                          else min(0.05, remaining))
            frame = self.frames[self.consumed]
            self.consumed += 1
            cond.notify_all()
        return frame

    def drain_frames(self, timeout: float | None = 5.0) -> list[dict]:
        """Pop frames until the terminal one (inclusive) or timeout."""
        out: list[dict] = []
        while True:
            frame = self.pop(timeout)
            if frame is None:
                return out
            out.append(frame)
            if frame.get("frame") in ("end", "error"):
                return out

    def frames_since(self, index: int) -> tuple[list[dict], int, str]:
        """Detached polling: frames from ``index`` on, next index,
        state (frames are retained, so polling never consumes)."""
        cond = self._cond
        if cond is None:
            return [], index, self.state
        with cond:
            if index < 0:
                index = 0
            frames = list(self.frames[index:])
            return frames, index + len(frames), self.state

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Ask the scheduler to stop this stream (idempotent)."""
        cond = self._cond
        if cond is None:  # never submitted: terminate in place
            self.state = CANCELLED
            self.frames.append(terminal_frame(None, reason=reason))
            return
        with cond:
            if self.terminal:
                return
            self.cancel_reason = reason
            cond.notify_all()

    # -- scheduler-side helpers (always under the scheduler lock) --------

    def _append_frame(self, frame: dict) -> None:
        self.frames.append(frame)

    def _finish(self, state: str, frame: dict | None) -> None:
        self.state = state
        if frame is not None:
            self.frames.append(frame)
        self.finished_at = time.monotonic()

    def __repr__(self) -> str:
        return (f"<StreamTask {self.task_id} tenant={self.tenant!r} "
                f"{self.state} k={self.samples}>")


class FairScheduler:
    """Deficit-round-robin quantum scheduler on one engine thread.

    ``max_concurrent`` bounds how many streams are *live* (pinning
    snapshots and holding sampler streams open) at once; admitted
    tasks beyond it wait in a FIFO queue.  The admission-control bound
    on that queue belongs to the service layer
    (:class:`~repro.server.service.QueryService`), which rejects with
    429 before ``submit`` is ever called.
    """

    def __init__(self, *, max_concurrent: int = 8,
                 registry=None, faults=None):
        if max_concurrent < 1:
            raise StormError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.registry = registry
        self.faults = faults
        self._cond = threading.Condition()
        self._queue: deque[StreamTask] = deque()
        self._active: list[StreamTask] = []
        self._rr = 0
        self._started = False
        self._stopping = False
        self._draining = False
        self._thread: threading.Thread | None = None
        self.total_quanta = 0
        self.total_streams = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FairScheduler":
        if self._started:
            raise StormError("scheduler already started")
        self._started = True
        self._thread = threading.Thread(target=self._loop,
                                        name="storm-scheduler",
                                        daemon=True)
        self._thread.start()
        return self

    def submit(self, task: StreamTask) -> None:
        """Adopt a task into the run queue (service pre-admits)."""
        with self._cond:
            if self._stopping or self._draining:
                raise StormError("scheduler is shutting down")
            task._cond = self._cond
            self._queue.append(task)
            self.total_streams += 1
            # Promote synchronously so admission control sees a stream
            # occupy an active slot the moment submit returns, instead
            # of racing the engine thread's own promotion pass.
            self._promote_locked()
            self._cond.notify_all()
        self._publish_depth()

    def drain(self, timeout: float) -> bool:
        """Stop accepting work; wait for live streams to finish.

        Returns True when everything finished inside the timeout;
        leftovers are then cancelled with a shutdown terminal frame
        either way by :meth:`stop`.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._active or self._queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(0.05, remaining))
        return True

    def stop(self) -> None:
        """Cancel every live stream and join the engine thread."""
        with self._cond:
            self._stopping = True
            for task in list(self._queue) + list(self._active):
                if not task.terminal and not task.cancel_reason:
                    task.cancel_reason = "server shutdown"
            self._cond.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)

    # -- introspection ---------------------------------------------------

    @property
    def active_count(self) -> int:
        with self._cond:
            return len(self._active)

    @property
    def queued_count(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def live_count(self) -> int:
        with self._cond:
            return len(self._active) + len(self._queue)

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no stream is live (tests and the bench)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._active or self._queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(0.05, remaining))
        return True

    # -- the engine thread -----------------------------------------------

    def _loop(self) -> None:
        while True:
            task = None
            with self._cond:
                if self._stopping:
                    self._shutdown_locked()
                    return
                self._reap_locked()
                self._promote_locked()
                task = self._pick_locked()
                if task is None:
                    # Everything blocked (or nothing live): sleep on
                    # the condition until a consumer pops a frame, a
                    # submit arrives, or stop() fires.
                    self._cond.wait(0.05)
                    continue
            self._run_quantum(task)

    def _shutdown_locked(self) -> None:
        for task in list(self._queue) + list(self._active):
            if task.terminal:
                continue
            reason = task.cancel_reason or "server shutdown"
            task._finish(CANCELLED, terminal_frame(None, reason=reason))
            self._close_gen(task)
        self._queue.clear()
        self._active.clear()
        self._cond.notify_all()
        self._publish_depth_locked()

    def _reap_locked(self) -> None:
        """Finalise cancelled tasks and drop terminal ones."""
        kept: list[StreamTask] = []
        for task in self._active:
            if not task.terminal and task.cancel_reason:
                task._finish(CANCELLED, terminal_frame(
                    None, reason=task.cancel_reason))
                self._close_gen(task)
                self._count_finish(task)
            if not task.terminal:
                kept.append(task)
        if len(kept) != len(self._active):
            self._active = kept
            self._rr = 0
            self._cond.notify_all()
        if self._queue and any(t.cancel_reason or t.terminal
                               for t in self._queue):
            still: deque[StreamTask] = deque()
            for task in self._queue:
                if task.terminal:
                    continue
                if task.cancel_reason:
                    task._finish(CANCELLED, terminal_frame(
                        None, reason=task.cancel_reason))
                    self._count_finish(task)
                else:
                    still.append(task)
            self._queue = still
            self._cond.notify_all()

    def _promote_locked(self) -> None:
        moved = False
        while self._queue and len(self._active) < self.max_concurrent:
            task = self._queue.popleft()
            task.state = ACTIVE
            task.credits = max(1.0, task.weight)
            self._active.append(task)
            moved = True
        if moved:
            self._publish_depth_locked()

    def _pick_locked(self) -> StreamTask | None:
        """Next runnable task under deficit round-robin, or None."""
        n = len(self._active)
        # Worst case: scan the tail, wrap (topping up credits), then
        # scan the whole ring again before concluding nothing runs.
        for _ in range(2 * n + 2):
            if self._rr >= len(self._active):
                self._rr = 0
                # Round boundary: top up credits (capped so an idle
                # blocked task cannot hoard a burst).
                for t in self._active:
                    t.credits = min(t.credits + t.weight,
                                    max(1.0, 2.0 * t.weight))
            if not self._active:
                return None
            task = self._active[self._rr]
            if (not task.terminal and not task.blocked()
                    and task.credits >= 1.0):
                # Stay on this task until its deficit is spent: a
                # weight-2 stream runs two quanta per round, not one.
                task.credits -= 1.0
                return task
            self._rr += 1
        return None

    def _run_quantum(self, task: StreamTask) -> None:
        """One scheduling quantum: one ProgressPoint off the stream.

        Runs outside the lock — this is the only thread that touches
        the engine — then publishes the frame under the lock.
        """
        frame: dict | None = None
        final: tuple[str, dict] | None = None
        try:
            if self.faults is not None:
                self.faults.tick()
                if self.faults.should_fail("server.quantum"):
                    raise StormError(
                        "injected server fault (server.quantum)")
            if task._gen is None:
                task._gen = task._make_gen()
            point = next(task._gen)
            task.quanta += 1
            task.samples = point.k
            frame = progress_frame(point)
            if point.done:
                final = (DONE, terminal_frame(point))
        except StopIteration:
            final = (DONE, terminal_frame(None, reason="stream ended"))
        except Exception as exc:  # noqa: BLE001 — becomes error frame
            final = (ERROR, error_frame(exc))
        with self._cond:
            self.total_quanta += 1
            if frame is not None:
                task._append_frame(frame)
            if final is not None:
                task._finish(final[0], final[1])
                self._close_gen(task)
                self._count_finish(task)
            self._cond.notify_all()
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter("storm.server.quanta",
                             tenant=task.tenant).inc()
            if final is not None and final[0] == ERROR:
                registry.counter("storm.server.stream_errors",
                                 tenant=task.tenant).inc()

    @staticmethod
    def _close_gen(task: StreamTask) -> None:
        gen, task._gen = task._gen, None
        if gen is not None:
            try:
                gen.close()
            except Exception:  # noqa: BLE001 — teardown is best effort
                pass

    def _count_finish(self, task: StreamTask) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter("storm.server.streams_finished",
                             tenant=task.tenant,
                             state=task.state).inc()

    def _publish_depth(self) -> None:
        with self._cond:
            self._publish_depth_locked()

    def _publish_depth_locked(self) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.gauge("storm.server.active_streams").set(
                len(self._active))
            registry.gauge("storm.server.queued_streams").set(
                len(self._queue))
