"""Durable detached streams: a WAL-backed journal of live streams.

A detached stream is server-side state a client paid to set up and
plans to come back for — losing it to a process restart breaks the
"disconnect now, poll later" contract that makes detached sessions
useful.  The :class:`StreamJournal` extends PR 5's durability story
to that state: every durable stream's *definition* is logged through
the same CRC-framed, segment-rolling
:class:`~repro.storage.wal.WriteAheadLog` (on its own single-machine
:class:`~repro.storage.dfs.SimulatedDFS` rooted in a real directory),
and ``storm-query serve --journal DIR`` re-admits the open streams on
restart.

Resume is **replay, not suspend/restore**: the journal records the
query text, the seed, the tenant/session coordinates and the pinned
dataset version — not sampler state.  A re-admitted stream re-runs
from scratch with the same seed under a logical clock, and because
scheduling never changes *what* a stream draws (PR 9's determinism
invariant), every replayed frame is byte-identical to the original.
A client's ``?from=N`` cursor therefore stays valid across the
restart: frames ``0..N`` regenerate identically and the continuation
matches an uninterrupted run exactly (the acceptance test diffs the
bytes).  The ``frames`` watermark journaled by throttled progress
records is observability, not a resume cursor.

Record types (all framed and checksummed by the WAL):

``stream_open``
    One durable stream admitted: ``task_id``, ``tenant``,
    ``session_id``/``session_name``, ``query``, ``seed``, ``weight``,
    ``label``, ``dataset_version``.
``stream_progress``
    Throttled watermark (every ``progress_every`` frames): the journal
    rides :meth:`SimulatedDFS.append_file`, which rewrites the whole
    backing file on real disk, so per-frame records would turn one
    journal into O(frames²) disk traffic.
``stream_close``
    The stream reached DONE/ERROR/CANCELLED.  *Suspended* streams
    (graceful drain parking a detached stream) are deliberately never
    closed — an open record with no close is exactly what
    :meth:`StreamJournal.pending` resumes.

Crash safety: a crash mid-append (``FaultPlan.crash_write`` on the
``journal/`` prefix, or a real kill) leaves a torn tail; construction
truncates it and adopts every record before the tear, so a stream
whose *close* record tore is resumed (at-least-once — replay is
idempotent) and a stream whose *open* record tore was never
acknowledged as durable in the first place.
"""

from __future__ import annotations

import threading

from repro.errors import WalError, WriteCrashError
from repro.obs import NULL_OBS, Observability
from repro.storage.dfs import SimulatedDFS
from repro.storage.wal import WriteAheadLog

__all__ = ["StreamJournal", "JOURNAL_PREFIX"]

JOURNAL_PREFIX = "journal/"


class StreamJournal:
    """Append-only journal of durable detached streams.

    ``root`` is a real directory (survives the process); ``faults``
    gates journal writes for chaos tests.  All methods are safe to
    call from the scheduler's event callback: a journal that loses
    its backing store (injected crash) goes *dead* — it stops
    appending and counts ``storm.server.journal_errors`` — rather
    than ever taking the engine down.
    """

    def __init__(self, root: str, *,
                 obs: Observability | None = None,
                 faults=None, segment_bytes: int = 32768,
                 progress_every: int = 16):
        if progress_every < 1:
            raise WalError("progress_every must be >= 1")
        self.root = root
        self.obs = obs if obs is not None else NULL_OBS
        self.progress_every = progress_every
        self.dfs = SimulatedDFS(machines=1, block_size=4096,
                                replication=1, root=root,
                                obs=obs, faults=faults)
        self.wal = WriteAheadLog(self.dfs,
                                 segment_bytes=segment_bytes,
                                 prefix=JOURNAL_PREFIX, obs=obs)
        if self.wal.torn is not None:
            # Crash-mid-append on the previous run: cut the tear and
            # adopt everything committed before it.
            self.wal.truncate_torn()
        self._lock = threading.Lock()
        #: task_id -> frame count last journaled (throttling state).
        self._marks: dict[str, int] = {}
        self.dead = False

    # -- recording -------------------------------------------------------

    def record_open(self, task, *, query: str, seed: int,
                    session_id: str, session_name: str,
                    dataset_version=None) -> bool:
        """Journal one durable stream's definition; False if the
        journal is dead (the stream then runs non-durably)."""
        return self._append("stream_open", {
            "task_id": task.task_id,
            "tenant": task.tenant,
            "session_id": session_id,
            "session_name": session_name,
            "query": query,
            "seed": int(seed),
            "weight": task.weight,
            "label": task.label,
            "dataset_version": dataset_version,
        })

    def record_progress(self, task) -> bool:
        """Journal the frame watermark, throttled to every
        ``progress_every`` frames (observability only — resume
        replays from frame zero regardless)."""
        frames = len(task.frames)
        with self._lock:
            mark = self._marks.get(task.task_id, 0)
            if frames - mark < self.progress_every:
                return True
            self._marks[task.task_id] = frames
        return self._append("stream_progress", {
            "task_id": task.task_id, "frames": frames})

    def record_close(self, task) -> bool:
        """Journal the terminal state; the stream will not resume."""
        with self._lock:
            self._marks.pop(task.task_id, None)
        return self._append("stream_close", {
            "task_id": task.task_id, "state": task.state,
            "frames": len(task.frames)})

    def _append(self, record_type: str, fields: dict) -> bool:
        with self._lock:
            if self.dead:
                return False
            try:
                self.wal.append(record_type, fields)
            except (WriteCrashError, WalError):
                # The simulated process died mid-append (chaos) or the
                # tail is torn: stop journaling, keep serving.  The
                # on-disk prefix up to the tear still resumes.
                self.dead = True
                registry = self.obs.registry
                if registry.enabled:
                    registry.counter(
                        "storm.server.journal_errors").inc()
                return False
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.server.journal_records",
                             type=record_type).inc()
        return True

    # -- recovery --------------------------------------------------------

    def pending(self) -> dict[str, dict]:
        """Open streams on disk: task_id → its ``stream_open`` payload
        plus the last journaled ``frames`` watermark.

        A stream is pending when its open record committed but no
        close record did — exactly the set a restart must re-admit.
        """
        records, _ = self.wal.scan()
        open_streams: dict[str, dict] = {}
        for rec in records:
            payload = rec.payload
            task_id = payload.get("task_id")
            if task_id is None:
                continue
            if rec.type == "stream_open":
                entry = {k: v for k, v in payload.items()
                         if k not in ("lsn", "type")}
                entry["frames"] = 0
                open_streams[task_id] = entry
            elif rec.type == "stream_progress":
                entry = open_streams.get(task_id)
                if entry is not None:
                    entry["frames"] = int(payload.get("frames", 0))
            elif rec.type == "stream_close":
                open_streams.pop(task_id, None)
        return open_streams

    def __repr__(self) -> str:
        return (f"<StreamJournal root={self.root!r} "
                f"last_lsn={self.wal.last_lsn}"
                f"{' DEAD' if self.dead else ''}>")
