"""repro.server — the multi-tenant STORM query service.

STORM's premise is *online* reasoning: an analyst issues a query and
watches the confidence interval tighten while samples accumulate.
This package is the service layer that delivers that interaction to
remote clients — many of them at once, against one engine:

* :mod:`repro.server.protocol` — the wire contract: JSON request
  bodies, NDJSON progressive-result frames (progress / end / error),
  and :class:`~repro.server.protocol.ApiError` status mapping;
* :mod:`repro.server.scheduler` — a deficit-round-robin scheduler
  that time-slices every live sample stream against the engine, one
  ``draw_batch`` quantum at a time, on a single engine thread;
* :mod:`repro.server.service` — the HTTP-agnostic core: tenant
  authentication, named sessions, quota + admission control with
  backpressure, load shedding, deadlines, graceful drain;
* :mod:`repro.server.journal` — WAL-backed durability for detached
  streams: journaled definitions, deterministic resume on restart;
* :mod:`repro.server.http` — the stdlib ``ThreadingHTTPServer``
  front end: JSON endpoints, the chunked NDJSON streaming endpoint,
  and the ``/metrics`` + ``/health`` operational routes.

``docs/service.md`` is the full API reference; ``storm-query serve``
is the CLI entry point.
"""

from repro.server.http import StormServer
from repro.server.journal import StreamJournal
from repro.server.protocol import ApiError
from repro.server.scheduler import FairScheduler, StreamTask
from repro.server.service import (QueryService, ServerConfig,
                                  TenantQuota)

__all__ = ["ApiError", "FairScheduler", "StreamTask", "QueryService",
           "ServerConfig", "TenantQuota", "StormServer",
           "StreamJournal"]
