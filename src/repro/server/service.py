"""The HTTP-agnostic core of the multi-tenant query service.

:class:`QueryService` owns everything between a parsed HTTP request
and the :class:`~repro.server.scheduler.FairScheduler`:

* **authentication** — a token → tenant map (401 without a valid
  token when tokens are configured; open mode maps every caller to a
  self-declared tenant name);
* **named sessions** — server-side per-tenant containers a client
  creates once and then attaches streams to.  Streams launched inside
  a session are *detachable*: the client may disconnect and later
  poll accumulated frames by index (resume), because frames are
  retained on the task, not the socket;
* **quota hooks** — per-tenant :class:`TenantQuota` caps concurrent
  streams, caps the per-query sample budget, and sets the scheduler
  weight (deficit round-robin share under contention);
* **admission control** — the scheduler runs at most
  ``max_streams`` live streams; beyond that, admitted work queues up
  to ``queue_depth`` deep, and past *that* the service rejects with
  429 + ``Retry-After`` (computed from observed stream durations).
  One-shot ``/v1/query`` calls go through the same gate — there is no
  way to sneak unscheduled work onto the engine;
* **graceful shutdown** — draining rejects new work with 503 while
  in-flight streams run to completion (bounded by
  ``drain_seconds``); non-detached stragglers get a terminal shutdown
  frame, detached stragglers are *suspended* with frames retained so
  they stay poll-able (and, when journaled, resume after restart);
* **resilience** — per-stream deadlines (``X-Storm-Deadline`` /
  ``default_deadline``) propagate into the scheduler, a quantum
  watchdog fails wedged streams without stalling other tenants,
  abandoned streams are reaped, and under saturation the service
  sheds the lightest queued stream to admit a heavier tenant before
  falling back to 429 + ``Retry-After`` (clamped to ≥ 1s);
* **durable detached streams** — with a
  :class:`~repro.server.journal.StreamJournal` attached, every
  detached stream's definition is journaled and
  :meth:`QueryService.recover_streams` re-admits open streams on
  restart, replaying them deterministically (byte-identical frames)
  under a logical clock.

Everything here raises :class:`~repro.server.protocol.ApiError`; the
HTTP layer (:mod:`repro.server.http`) translates to status codes.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro.core.engine import StormEngine
from repro.errors import StormError
from repro.obs import NULL_OBS, Observability
from repro.query.ast import QuerySpec
from repro.query.executor import QueryExecutor
from repro.query.language import parse
from repro.server.journal import StreamJournal
from repro.server.protocol import ApiError
from repro.server.scheduler import (SUSPENDED, FairScheduler,
                                    StreamTask)

__all__ = ["TenantQuota", "ServerConfig", "ServerSession",
           "QueryService"]


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Per-tenant limits and scheduling share.

    ``max_concurrent_streams`` — live streams (active or queued) this
    tenant may hold at once (None = bounded only by global admission).
    ``max_samples`` — hard cap applied to every query's sample budget
    (un-bounded queries get exactly this cap).
    ``weight`` — deficit-round-robin share under contention.
    """

    max_concurrent_streams: int | None = None
    max_samples: int | None = None
    weight: float = 1.0


@dataclass(slots=True)
class ServerConfig:
    """Service deployment knobs (see docs/operations.md)."""

    #: Streams scheduled concurrently (snapshots pinned at once).
    max_streams: int = 8
    #: Admitted-but-waiting streams beyond that; the 429 line.
    queue_depth: int = 16
    #: Samples per scheduling quantum (the session's report_every).
    quantum: int = 64
    #: Progress frames buffered per attached stream before the
    #: scheduler parks it (slow-client backpressure).
    stream_buffer: int = 64
    #: Seconds graceful shutdown waits for in-flight streams.
    drain_seconds: float = 10.0
    #: Deadline applied to requests that carry none (None = no limit).
    default_deadline: float | None = None
    #: Reap a non-detached stream blocked on an unread buffer this
    #: long (presumed-dead client; None = never).
    abandon_seconds: float | None = 30.0
    #: Fail a single scheduler quantum that runs this long and hand
    #: the engine to a fresh thread (None = no watchdog).
    watchdog_seconds: float | None = 10.0
    #: Directory for the durable-detached-stream journal (None = off).
    journal_dir: str | None = None
    #: auth token -> tenant name; empty means open access.
    tokens: dict[str, str] = field(default_factory=dict)
    #: tenant name -> quota overrides.
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: Quota applied to tenants without an override.
    default_quota: TenantQuota = TenantQuota(
        max_concurrent_streams=4, max_samples=100_000)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)


class ServerSession:
    """One named per-tenant session holding detachable streams."""

    def __init__(self, session_id: str, tenant: str, name: str):
        self.session_id = session_id
        self.tenant = tenant
        self.name = name
        self.created_at = time.time()
        self.streams: dict[str, StreamTask] = {}

    def to_doc(self) -> dict:
        return {
            "session": self.session_id,
            "tenant": self.tenant,
            "name": self.name,
            "created_at": self.created_at,
            "streams": {
                task_id: {"state": task.state, "k": task.samples,
                          "frames": len(task.frames),
                          "label": task.label}
                for task_id, task in sorted(self.streams.items())},
        }


class QueryService:
    """Sessions + quotas + admission in front of one FairScheduler."""

    def __init__(self, engine: StormEngine,
                 config: ServerConfig | None = None, *,
                 obs: Observability | None = None,
                 faults=None, seed: int = 0):
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        if obs is not None:
            self.obs = obs
        elif getattr(engine, "obs", NULL_OBS).enabled:
            self.obs = engine.obs
        else:
            # The service always runs live: per-tenant counters and
            # latency histograms are part of its contract.
            self.obs = Observability()
        self.executor = QueryExecutor(engine, obs=self.obs)
        self.journal: StreamJournal | None = None
        if self.config.journal_dir is not None:
            self.journal = StreamJournal(self.config.journal_dir,
                                         obs=self.obs, faults=faults)
        self.scheduler = FairScheduler(
            max_concurrent=self.config.max_streams,
            registry=self.obs.registry, faults=faults,
            watchdog_seconds=self.config.watchdog_seconds,
            abandon_seconds=self.config.abandon_seconds,
            on_task_event=self._on_task_event)
        self.scheduler.start()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sessions: dict[str, ServerSession] = {}
        self._tasks: dict[str, StreamTask] = {}
        self._next_session_id = 1
        self._durations: deque[float] = deque(maxlen=32)
        self.draining = False
        self.started_at = time.time()

    # -- auth ------------------------------------------------------------

    def authenticate(self, token: str | None,
                     tenant_hint: str | None = None) -> str:
        """Resolve the caller's tenant.

        With tokens configured the token is mandatory and names the
        tenant; in open mode the caller self-declares via
        ``tenant_hint`` (default ``"public"``).
        """
        if self.config.tokens:
            if not token:
                raise ApiError(401, "unauthorized",
                               "missing auth token (Authorization: "
                               "Bearer <token>)")
            tenant = self.config.tokens.get(token)
            if tenant is None:
                raise ApiError(401, "unauthorized",
                               "unknown auth token")
            return tenant
        return tenant_hint or "public"

    # -- sessions --------------------------------------------------------

    def create_session(self, tenant: str, name: str = "") -> dict:
        with self._lock:
            session_id = f"s-{self._next_session_id}"
            self._next_session_id += 1
            session = ServerSession(session_id, tenant,
                                    name or session_id)
            self._sessions[session_id] = session
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.server.sessions_created",
                             tenant=tenant).inc()
            registry.gauge("storm.server.sessions").set(
                len(self._sessions))
        return session.to_doc()

    def _session(self, tenant: str, session_id: str) -> ServerSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.tenant != tenant:
            # A foreign session id is indistinguishable from a missing
            # one on purpose: ids must not leak across tenants.
            raise ApiError(404, "not_found",
                           f"no session {session_id!r}")
        return session

    def session_doc(self, tenant: str, session_id: str) -> dict:
        return self._session(tenant, session_id).to_doc()

    def list_sessions(self, tenant: str) -> dict:
        with self._lock:
            docs = [s.to_doc() for s in self._sessions.values()
                    if s.tenant == tenant]
        return {"sessions": sorted(docs,
                                   key=lambda d: d["session"])}

    def close_session(self, tenant: str, session_id: str) -> dict:
        session = self._session(tenant, session_id)
        for task in session.streams.values():
            task.cancel("session closed")
        with self._lock:
            self._sessions.pop(session_id, None)
        registry = self.obs.registry
        if registry.enabled:
            registry.gauge("storm.server.sessions").set(
                len(self._sessions))
        return {"closed": session_id}

    # -- streams ---------------------------------------------------------

    def _parse_spec(self, body: dict, tenant: str) -> QuerySpec:
        query = body.get("query")
        if not query or not isinstance(query, str):
            raise ApiError(400, "bad_request",
                           'body needs a "query" string')
        try:
            spec = parse(query)
        except StormError as exc:
            raise ApiError(400, "bad_request", f"bad query: {exc}")
        if spec.dataset not in self.engine.datasets:
            raise ApiError(404, "not_found",
                           f"no dataset {spec.dataset!r}; available: "
                           f"{sorted(self.engine.datasets)}")
        quota = self.config.quota_for(tenant)
        if quota.max_samples is not None:
            cap = quota.max_samples
            if spec.max_samples is None or spec.max_samples > cap:
                spec = replace(spec, max_samples=cap)
        return spec

    def _tenant_live(self, tenant: str) -> int:
        with self._lock:
            return sum(1 for t in self._tasks.values()
                       if t.tenant == tenant and not t.terminal)

    def retry_after(self) -> int:
        """Seconds a 429'd client should wait: the observed mean
        stream duration scaled by how deep the queue is, clamped to
        [1, 30] — the ≥ 1s floor keeps a momentarily-idle saturated
        server from advertising ``Retry-After: 0`` retry storms."""
        durations = list(self._durations)
        mean = (sum(durations) / len(durations)) if durations else 0.5
        depth = self.scheduler.live_count
        per_slot = max(1, depth // max(1, self.config.max_streams))
        return max(1, min(30, round(mean * per_slot + 0.5)))

    def _admit(self, tenant: str) -> None:
        """Admission control; raises 429/503 instead of queueing
        unboundedly."""
        registry = self.obs.registry
        if self.draining:
            if registry.enabled:
                registry.counter("storm.server.rejected",
                                 reason="shutting_down",
                                 tenant=tenant).inc()
            raise ApiError(503, "shutting_down",
                           "server is draining; no new queries",
                           retry_after=self.config.drain_seconds)
        quota = self.config.quota_for(tenant)
        if quota.max_concurrent_streams is not None and \
                self._tenant_live(tenant) >= \
                quota.max_concurrent_streams:
            if registry.enabled:
                registry.counter("storm.server.rejected",
                                 reason="over_quota",
                                 tenant=tenant).inc()
            raise ApiError(
                429, "over_quota",
                f"tenant {tenant!r} already holds "
                f"{quota.max_concurrent_streams} live stream(s)",
                retry_after=self.retry_after())
        if self.scheduler.live_count >= \
                self.config.max_streams + self.config.queue_depth:
            # Saturated: shed the lightest queued stream if this
            # tenant outweighs it (lowest-weight-first load shedding);
            # otherwise reject with a measured, floor-clamped
            # Retry-After.
            if self.scheduler.shed_lowest(quota.weight) is not None:
                return
            if registry.enabled:
                registry.counter("storm.server.rejected",
                                 reason="saturated",
                                 tenant=tenant).inc()
            raise ApiError(
                429, "saturated",
                f"admission queue full "
                f"({self.config.queue_depth} waiting)",
                retry_after=self.retry_after())

    def submit_stream(self, tenant: str, body: dict, *,
                      detached: bool = False,
                      session_id: str | None = None,
                      deadline: float | None = None) -> StreamTask:
        """Admit one progressive query stream onto the scheduler.

        ``deadline`` (seconds, from the ``X-Storm-Deadline`` header)
        bounds the stream's whole life including queue wait; absent,
        ``config.default_deadline`` applies.  Detached streams are
        journaled (durable) when a journal is attached.
        """
        spec = self._parse_spec(body, tenant)
        if spec.explain:
            raise ApiError(400, "bad_request",
                           "EXPLAIN queries do not stream; POST "
                           "/v1/query instead")
        if deadline is not None and deadline <= 0:
            raise ApiError(400, "bad_request",
                           f"deadline must be > 0 seconds, "
                           f"got {deadline}")
        session = self._session(tenant, session_id) \
            if session_id is not None else None
        self._admit(tenant)
        quota = self.config.quota_for(tenant)
        seed = body.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ApiError(400, "bad_request",
                           '"seed" must be an integer')
        with self._lock:
            if seed is None:
                seed = self._rng.getrandbits(48)
        if deadline is None:
            deadline = self.config.default_deadline
        journal = self.journal
        durable = (detached and session is not None
                   and journal is not None and not journal.dead)
        task = StreamTask(
            tenant, self._make_gen(spec, tenant, seed,
                                   durable=durable),
            weight=quota.weight,
            buffer_frames=self.config.stream_buffer,
            detached=detached, label=spec.task.kind,
            deadline_seconds=deadline, durable=durable,
            meta={"query": body.get("query"), "seed": seed})
        if durable:
            dataset = self.engine.datasets.get(spec.dataset)
            opened = journal.record_open(
                task, query=body["query"], seed=seed,
                session_id=session.session_id,
                session_name=session.name,
                dataset_version=getattr(dataset, "version", None))
            if not opened:
                # Journal is dead: the stream still runs, it just
                # won't survive a restart.
                task.durable = False
        with self._lock:
            self._tasks[task.task_id] = task
            if session is not None:
                session.streams[task.task_id] = task
        try:
            self.scheduler.submit(task)
        except StormError:
            with self._lock:
                self._tasks.pop(task.task_id, None)
                if session is not None:
                    session.streams.pop(task.task_id, None)
            if task.durable and journal is not None:
                task.state = "cancelled"
                journal.record_close(task)
            raise ApiError(503, "shutting_down",
                           "server is draining; no new queries",
                           retry_after=self.config.drain_seconds)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.server.admitted",
                             tenant=tenant).inc()
        return task

    def _make_gen(self, spec: QuerySpec, tenant: str, seed: int, *,
                  durable: bool = False):
        """Build the lazy session generator for one stream.

        The closure body runs on the scheduler thread at the first
        quantum, so session construction — including snapshot pinning
        inside ``range_count`` — never races another stream.  Durable
        streams run under a logical clock (``elapsed`` is always 0.0)
        so a journal replay after restart regenerates every frame
        byte-identically; the trade-off is that wall-clock stop
        budgets (``WITHIN ... SECONDS``) do not advance for them.
        """
        def gen():
            session, stop = self.executor.session(
                spec, rng=random.Random(seed), obs=self.obs,
                report_every=self.config.quantum,
                labels={"tenant": tenant},
                clock=(lambda: 0.0) if durable else None)
            started = time.perf_counter()
            try:
                yield from session.run(stop)
            finally:
                self._durations.append(time.perf_counter() - started)
                registry = self.obs.registry
                if registry.enabled:
                    registry.histogram(
                        "storm.server.stream_seconds",
                        tenant=tenant).observe(
                            time.perf_counter() - started)
        return gen

    # -- scheduler events / journaling -----------------------------------

    def _on_task_event(self, task: StreamTask) -> None:
        """Scheduler callback (off-lock) after a task produced a frame
        or reached a terminal state: journal durable streams, drop
        terminal tasks from the quota-accounting map."""
        journal = self.journal
        if journal is not None and task.durable:
            if not task.terminal:
                journal.record_progress(task)
            elif task.state != SUSPENDED:
                # SUSPENDED is resume-on-restart by definition: the
                # journal entry must stay open.
                journal.record_close(task)
        if task.terminal:
            # The task stays reachable through its session (detached
            # polling); this map only backs _tenant_live accounting,
            # so terminal tasks must leave it.
            with self._lock:
                self._tasks.pop(task.task_id, None)

    def recover_streams(self) -> int:
        """Re-admit journaled detached streams after a restart.

        Sessions are re-created under their original ids, streams
        under their original task ids, and each stream replays from
        scratch with its journaled seed — deterministically, so every
        frame a client saw before the restart regenerates
        byte-identically and ``?from=N`` cursors stay valid.  Returns
        how many streams were resumed.
        """
        journal = self.journal
        if journal is None:
            return 0
        pending = journal.pending()
        if not pending:
            return 0

        def numeric(prefixed: str) -> int:
            try:
                return int(prefixed.split("-", 1)[1])
            except (IndexError, ValueError):
                return 0

        StreamTask.advance_ids(max(numeric(t) for t in pending))
        registry = self.obs.registry
        resumed = 0
        for task_id in sorted(pending, key=numeric):
            entry = pending[task_id]
            tenant = entry.get("tenant", "public")
            session_id = entry.get("session_id", "")
            try:
                spec = self._parse_spec(
                    {"query": entry.get("query")}, tenant)
            except ApiError:
                # Dataset gone or query no longer parses: close the
                # entry so it does not haunt every future restart.
                ghost = StreamTask(tenant, lambda: iter(()),
                                   task_id=task_id, durable=True)
                ghost.state = "error"
                journal.record_close(ghost)
                continue
            with self._lock:
                session = self._sessions.get(session_id)
                if session is None:
                    session = ServerSession(
                        session_id, tenant,
                        entry.get("session_name") or session_id)
                    self._sessions[session_id] = session
                    self._next_session_id = max(
                        self._next_session_id,
                        numeric(session_id) + 1)
            quota = self.config.quota_for(tenant)
            seed = int(entry.get("seed", 0))
            task = StreamTask(
                tenant, self._make_gen(spec, tenant, seed,
                                       durable=True),
                weight=quota.weight,
                buffer_frames=self.config.stream_buffer,
                detached=True, label=spec.task.kind,
                durable=True, task_id=task_id,
                meta={"query": entry.get("query"), "seed": seed,
                      "resumed": True})
            with self._lock:
                self._tasks[task.task_id] = task
                session.streams[task.task_id] = task
            try:
                self.scheduler.submit(task)
            except StormError:
                break
            resumed += 1
            if registry.enabled:
                registry.counter("storm.server.resume_streams",
                                 tenant=tenant).inc()
                registry.counter("storm.server.resume_frames",
                                 tenant=tenant).inc(
                                     int(entry.get("frames", 0)))
        if registry.enabled:
            registry.gauge("storm.server.sessions").set(
                len(self._sessions))
        return resumed

    def get_task(self, tenant: str, session_id: str,
                 task_id: str) -> StreamTask:
        session = self._session(tenant, session_id)
        task = session.streams.get(task_id)
        if task is None:
            raise ApiError(404, "not_found",
                           f"no stream {task_id!r} in session "
                           f"{session_id!r}")
        return task

    def cancel_task(self, tenant: str, session_id: str,
                    task_id: str) -> dict:
        task = self.get_task(tenant, session_id, task_id)
        task.cancel()
        return {"cancelled": task_id}

    # -- one-shot queries ------------------------------------------------

    def run_query(self, tenant: str, body: dict,
                  timeout: float = 120.0,
                  deadline: float | None = None) -> dict:
        """Admit, schedule and fully drain one query; the final doc.

        EXPLAIN (plan-only) queries short-circuit: they draw nothing,
        so they bypass the scheduler and run inline.
        """
        spec = self._parse_spec(body, tenant)
        if spec.explain:
            try:
                result = self.executor.execute(spec)
            except StormError as exc:
                raise ApiError(400, "bad_request", str(exc))
            return {"explain": result.explanation}
        task = self.submit_stream(tenant, body, deadline=deadline)
        frames = task.drain_frames(timeout=timeout)
        final = frames[-1] if frames else None
        if final is None or final.get("frame") not in ("end", "error"):
            # 504: don't just ask for cancellation — wait until the
            # scheduler reaped it (generator closed, engine slot
            # free), then drop it from the quota map, so the tenant's
            # stream-quota slot is verifiably released before the
            # error response goes out.
            task.cancel("client timeout")
            task.wait_terminal(timeout=5.0)
            with self._lock:
                self._tasks.pop(task.task_id, None)
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.server.query_timeouts",
                                 tenant=tenant).inc()
            raise ApiError(504, "timeout",
                           f"query did not finish in {timeout:.0f}s")
        return {"stream": task.task_id,
                "progress_frames": len(frames) - 1,
                "result": final}

    # -- introspection / ops ---------------------------------------------

    def datasets_doc(self) -> dict:
        out = {}
        for name, dataset in sorted(self.engine.datasets.items()):
            out[name] = {
                "records": len(dataset),
                "dims": getattr(dataset, "dims", None),
                "kind": type(dataset).__name__,
                "tiered_ingest": getattr(dataset, "lsm", None)
                is not None,
                "samplers": sorted(getattr(dataset, "samplers", {})),
            }
        return {"datasets": out}

    def health_doc(self) -> dict:
        status = "draining" if self.draining else "ok"
        with self._lock:
            sessions = len(self._sessions)
        return {
            "status": status,
            "uptime_seconds": time.time() - self.started_at,
            "sessions": sessions,
            "streams": {
                "active": self.scheduler.active_count,
                "queued": self.scheduler.queued_count,
                "max_streams": self.config.max_streams,
                "queue_depth": self.config.queue_depth,
            },
            "datasets": sorted(self.engine.datasets),
        }

    # -- shutdown --------------------------------------------------------

    def shutdown(self, drain: bool = True) -> bool:
        """Stop the service: optionally drain, then cancel and join.

        Returns True when every in-flight stream finished inside the
        drain budget (False means stragglers were cancelled with a
        shutdown terminal frame).
        """
        self.draining = True
        drained = True
        if drain:
            drained = self.scheduler.drain(self.config.drain_seconds)
        self.scheduler.stop()
        return drained
