"""The query service's wire contract.

Everything a remote client sends or receives is defined here, away
from sockets and scheduling, so the service core and the tests speak
the same vocabulary:

* :class:`ApiError` — the one exception HTTP handlers translate into
  a status code + JSON error document (401 auth, 404 unknown
  resource, 400 bad request, 429 backpressure with ``Retry-After``,
  503 while draining);
* **NDJSON frames** — a streaming query response is a sequence of
  newline-delimited JSON objects: zero or more ``progress`` frames
  (one per scheduler quantum that produced a reportable estimate),
  then exactly one terminal frame — ``end`` on success, ``error``
  when the stream failed.  Clients treat the terminal frame as the
  close signal; anything after it is a protocol violation;
* helpers turning engine objects (:class:`~repro.core.session.
  ProgressPoint`, :class:`~repro.core.estimators.base.Estimate`)
  into JSON-ready dicts.

The frame schema is documented for clients in ``docs/service.md``;
``tests/test_server.py`` holds the docs↔code consistency checks.
"""

from __future__ import annotations

import json

from repro.core.session import ProgressPoint

__all__ = ["ApiError", "estimate_doc", "progress_frame",
           "terminal_frame", "error_frame", "encode_frame",
           "parse_body"]


class ApiError(Exception):
    """A client-visible failure with an HTTP status.

    ``code`` is a stable machine-readable slug (``"unauthorized"``,
    ``"not_found"``, ``"bad_request"``, ``"over_quota"``,
    ``"saturated"``, ``"shutting_down"``); ``retry_after`` rides into
    the ``Retry-After`` header on 429/503 responses.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        # Floor at 1s: `Retry-After: 0` from a momentarily-idle
        # saturated server invites synchronized retry storms.
        self.retry_after = None if retry_after is None \
            else max(1, retry_after)

    def to_doc(self) -> dict:
        doc = {"error": {"code": self.code, "message": self.message}}
        if self.retry_after is not None:
            doc["error"]["retry_after"] = self.retry_after
        return doc


def estimate_doc(estimate) -> dict:
    """JSON-ready view of one Estimate (interval flattened)."""
    doc = {
        "value": _jsonable(estimate.value),
        "std_error": estimate.std_error,
        "k": estimate.k,
        "q": estimate.q,
        "exact": estimate.exact,
    }
    interval = estimate.interval
    if interval is not None:
        doc["interval"] = {"lo": interval.lo, "hi": interval.hi,
                           "level": interval.level}
    return doc


def _jsonable(value):
    """Estimator values that are not JSON scalars (grids, per-group
    maps, trajectories) are rendered through their dict/list shape;
    anything else falls back to ``str``."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return _jsonable(as_dict())
    return str(value)


def progress_frame(point: ProgressPoint) -> dict:
    """One progressive-result frame (``"frame": "progress"``)."""
    return {
        "frame": "progress",
        "k": point.k,
        "elapsed": point.elapsed,
        "coverage": point.coverage,
        "estimate": estimate_doc(point.estimate),
    }


def terminal_frame(point: ProgressPoint | None,
                   reason: str = "") -> dict:
    """The success terminal frame (``"frame": "end"``).

    ``point`` is the last progress snapshot; ``reason`` overrides the
    stop reason (the scheduler uses this for drain-time termination).
    """
    doc = {"frame": "end",
           "reason": reason or (point.reason if point else "")}
    if point is not None:
        doc["k"] = point.k
        doc["elapsed"] = point.elapsed
        doc["coverage"] = point.coverage
        doc["estimate"] = estimate_doc(point.estimate)
    return doc


def error_frame(exc: BaseException, code: str = "stream_error") -> dict:
    """The failure terminal frame (``"frame": "error"``)."""
    return {"frame": "error", "code": code,
            "message": f"{type(exc).__name__}: {exc}"}


def encode_frame(doc: dict) -> bytes:
    """One NDJSON line: compact JSON + newline."""
    return (json.dumps(doc, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def parse_body(raw: bytes) -> dict:
    """Decode a JSON request body (ApiError 400 on garbage)."""
    if not raw:
        return {}
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        raise ApiError(400, "bad_request",
                       f"request body is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ApiError(400, "bad_request",
                       "request body must be a JSON object")
    return doc
